#!/usr/bin/env python3
"""A biologist's workbench session: self-generated data meets public data.

Requirement C13 in action: import your own sequences (FASTA), match them
against the Unifying Database with the similarity machinery (the BLAST
role), run restriction digests and protein analytics, and export the
findings as GenAlgXML.

Run:  python examples/sequence_workbench.py
"""

from repro import BiqlSession, UnifyingDatabase, genomics_algebra
from repro.core import ops
from repro.core.types import DnaSequence
from repro.etl.wrappers import FastaWrapper, write_fasta
from repro.lang import genalgxml
from repro.sources import EmblRepository, SwissProtRepository, Universe

# The "sequencer output" a biologist brings to the tool: two reads that
# are fragments of public genes (we fabricate them below), one random.
def make_lab_fasta(warehouse) -> str:
    rows = warehouse.query(
        "SELECT accession, seq_text(sequence) FROM public_genes "
        "WHERE length > 80 LIMIT 2"
    )
    reads = []
    for index, (accession, text) in enumerate(rows, start=1):
        fragment = text[10:70]  # a 60 bp read from inside the gene
        reads.append((f"read_{index}", f"unknown fragment {index}",
                      fragment))
    reads.append(("read_3", "probably junk", "ACGT" * 15))
    return write_fasta(reads)


def main() -> None:
    universe = Universe(seed=404, size=80)
    warehouse = UnifyingDatabase([
        EmblRepository(universe, coverage=0.9),
        SwissProtRepository(universe, coverage=0.9),
    ])
    warehouse.initial_load()
    session = BiqlSession(warehouse)

    print("=" * 70)
    print("1. Import self-generated data (C13)")
    print("=" * 70)
    fasta = make_lab_fasta(warehouse)
    reads = FastaWrapper().parse_snapshot(fasta)
    for record in reads:
        warehouse.add_user_sequence("you", record.accession, record.dna)
        print(f"  imported {record.accession}: {len(record.dna)} bp, "
              f"GC {ops.gc_content(record.dna):.2f}")

    print()
    print("=" * 70)
    print("2. Which public genes do my reads come from? (seed-and-extend)")
    print("=" * 70)
    index = ops.WordIndex(word_size=8)
    for accession, text in warehouse.query(
        "SELECT accession, seq_text(sequence) FROM public_genes"
    ):
        index.add(accession, text)
    for record in reads:
        hit = ops.best_hit(str(record.dna), index, min_score=30)
        if hit is None:
            print(f"  {record.accession}: no confident hit")
        else:
            print(f"  {record.accession}: {hit.subject_id} "
                  f"(identity {hit.identity:.0%}, score {hit.score:.0f}, "
                  f"subject {hit.subject_start}..{hit.subject_end})")

    print()
    print("=" * 70)
    print("3. Wet-lab planning: restriction digest of the best match")
    print("=" * 70)
    best_accession = ops.best_hit(str(reads[0].dna), index).subject_id
    gene = warehouse.gene(best_accession)
    for enzyme in (ops.enzyme_by_name("EcoRI"), ops.enzyme_by_name("HaeIII")):
        lengths = ops.fragment_lengths(gene.sequence, enzyme)
        print(f"  {enzyme.name} ({enzyme.site}): "
              f"{len(lengths)} fragment(s) {lengths}")

    print()
    print("=" * 70)
    print("3b. PCR primers to amplify the matched region (C14)")
    print("=" * 70)
    from repro.core.types import Interval

    # Amplify the central stretch of the gene, leaving primer room.
    length = len(gene.sequence)
    target = Interval(max(16, length // 3),
                      max(max(16, length // 3) + 4, 2 * length // 3))
    try:
        pair = ops.design_primers(
            gene.sequence, target, primer_length=14,
            tm_window=(34.0, 70.0),
        )
        print(f"  forward  5'-{pair.forward}-3'  "
              f"(Tm {pair.forward_tm:.1f} C, pos {pair.forward_position})")
        print(f"  reverse  5'-{pair.reverse}-3'  "
              f"(Tm {pair.reverse_tm:.1f} C)")
        print(f"  amplicon: {pair.product_length} bp")
    except Exception as error:
        print(f"  no primer pair possible here ({error})")

    print()
    print("=" * 70)
    print("4. Protein analytics on the expressed product")
    print("=" * 70)
    algebra = genomics_algebra()
    protein = algebra.evaluate(
        algebra.parse("express(g)", variables={"g": "gene"}), {"g": gene}
    )
    print(f"  {best_accession} -> {len(protein.sequence)} aa")
    print(f"  molecular weight: "
          f"{ops.molecular_weight(protein.sequence) / 1000:.1f} kDa")
    print(f"  isoelectric point: "
          f"{ops.isoelectric_point(protein.sequence):.2f}")
    print(f"  GRAVY (hydropathy): "
          f"{ops.hydropathy(protein.sequence):+.2f}")

    print()
    print("=" * 70)
    print("5. Ask follow-up questions in BiQL, not SQL")
    print("=" * 70)
    biql = (f"FIND genes WHERE sequence RESEMBLES "
            f"'{reads[0].dna}' WITHIN 0.3 "
            f"SHOW accession, name, organism LIMIT 5")
    print(f"BiQL> {biql}")
    print(session.render(biql))

    print()
    print("=" * 70)
    print("6. Export the findings as GenAlgXML (section 6.4)")
    print("=" * 70)
    document = genalgxml.dumps([gene, protein, reads[0].dna])
    print(document[:400] + "...\n")
    restored = genalgxml.loads(document)
    print(f"round-trip check: {len(restored)} values restored, "
          f"gene intact: {restored[0].sequence == gene.sequence}")


if __name__ == "__main__":
    main()
