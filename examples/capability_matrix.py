#!/usr/bin/env python3
"""Reproduce Table 1: the capability matrix, with the GenAlg column probed.

The six literature columns are the paper's own (graded) claims; the
GenAlg+UDB column is **derived by running this implementation** — each
cell is an executable probe (see ``repro/evaluation/capability.py``).

Run:  python examples/capability_matrix.py
"""

from repro.evaluation import CapabilityMatrix


def main() -> None:
    print("Building the live system and running the 15 probes "
          "(C1-C15)...\n")
    matrix = CapabilityMatrix.build()
    print(matrix.to_text())
    print()
    print(f"GenAlg+UDB achieves the paper's all-YES claim: "
          f"{matrix.genalg_matches_claim()}")
    print(f"Literature columns match the published Table 1: "
          f"{matrix.literature_matches_paper()}")


if __name__ == "__main__":
    main()
