#!/usr/bin/env python3
"""Query-driven mediation (Figure 1) vs. the Unifying Database (Figure 3).

The paper's architectural argument, run live: the same biological
question answered by (a) a mediator that extracts from every source at
query time and (b) the warehouse that integrated the sources up front.
The mediator is always fresh but pays per query; the warehouse answers
instantly (and reconciled) but lags until refreshed.

Run:  python examples/mediator_vs_warehouse.py
"""

import time

from repro import Mediator, UnifyingDatabase
from repro.sources import (
    AceRepository,
    EmblRepository,
    GenBankRepository,
    Universe,
)

MOTIF = "ATGGC"


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"  {label:<42} {elapsed:8.2f} ms")
    return result, elapsed


def main() -> None:
    universe = Universe(seed=77, size=150)
    sources = [
        GenBankRepository(universe),
        EmblRepository(universe),
        AceRepository(universe),
    ]

    print("Setting up both architectures over the same three sources...")
    mediator = Mediator(sources)
    warehouse = UnifyingDatabase(sources)
    warehouse.initial_load()
    sql = ("SELECT accession FROM public_genes "
           f"WHERE contains(sequence, '{MOTIF}')")

    print()
    print(f"Question: which genes contain the motif {MOTIF!r}?")
    print()
    print("one-off query:")
    mediated, t_mediator = timed(
        "mediator (extract+ship+filter per query)",
        lambda: mediator.find_genes(contains_motif=MOTIF),
    )
    integrated, t_warehouse = timed(
        "warehouse (pre-integrated, k-mer index)",
        lambda: warehouse.query(sql),
    )
    print(f"  mediator rows: {len(mediated)} (per-source views, "
          f"duplicates included)")
    print(f"  warehouse rows: {len(integrated)} (reconciled, one per gene)")
    print(f"  bytes shipped by the mediator: "
          f"{mediator.cost.bytes_shipped:,}")

    print()
    print("ten repeated queries (the workload a project database sees):")
    mediator.cost.reset()
    __, t_mediator10 = timed(
        "mediator x10",
        lambda: [mediator.find_genes(contains_motif=MOTIF)
                 for _ in range(10)],
    )
    __, t_warehouse10 = timed(
        "warehouse x10",
        lambda: [warehouse.query(sql) for _ in range(10)],
    )
    print(f"  mediator re-shipped {mediator.cost.bytes_shipped:,} bytes "
          f"for identical answers")
    if t_warehouse10 > 0:
        print(f"  warehouse speedup: ~{t_mediator10 / t_warehouse10:.0f}x")

    print()
    print("freshness — the mediator's one advantage:")
    for source in sources:
        source.advance(10)
    fresh = mediator.find_genes(contains_motif=MOTIF)
    lagging = warehouse.query(sql)
    print(f"  after 30 source updates: mediator sees {len(fresh)} rows, "
          f"warehouse still {len(lagging)} (stale)")
    report = warehouse.refresh()
    refreshed = warehouse.query(sql)
    print(f"  one incremental refresh ({report.deltas_processed} deltas) "
          f"-> warehouse sees {len(refreshed)} rows")

    print()
    print("what only the warehouse can do:")
    accession = next(
        (row.accession for row in fresh), None
    )
    if accession is not None:
        disagreements = mediator.disagreements(accession)
        conflicts = warehouse.conflict_report(accession)
        print(f"  {accession}: mediator returns "
              f"{len(mediator.gene(accession))} conflicting views "
              f"({', '.join(disagreements) or 'no visible conflict'}) "
              f"and leaves the choice to you;")
        print(f"  the warehouse reconciled them and recorded "
              f"{len(conflicts)} conflict set(s) with confidences (C8/C9).")


if __name__ == "__main__":
    main()
