#!/usr/bin/env python3
"""Build the Unifying Database from five heterogeneous repositories.

The full section-5 story: simulated GenBank / EMBL / SwissProt / AceDB /
relational sources (overlapping coverage, 30-60 % noisy records, live
update streams) are integrated through the ETL pipeline — monitors,
wrappers, reconciliation — into one warehouse, then queried in BiQL.

Run:  python examples/build_unifying_database.py
"""

from repro import BiqlSession, UnifyingDatabase
from repro.sources import (
    AceRepository,
    EmblRepository,
    GenBankRepository,
    RelationalRepository,
    SwissProtRepository,
    Universe,
)


def main() -> None:
    universe = Universe(seed=2003, size=120)
    sources = [
        GenBankRepository(universe),      # flat files, snapshot-only
        EmblRepository(universe),         # flat files, queryable
        SwissProtRepository(universe),    # curated proteins, push
        AceRepository(universe),          # hierarchical dumps
        RelationalRepository(universe),   # DBMS-backed, logged+triggers
    ]

    print("=" * 70)
    print("Initial load (snapshots -> wrappers -> integrator -> loader)")
    print("=" * 70)
    warehouse = UnifyingDatabase(sources)
    report = warehouse.initial_load()
    print(f"records processed: {report.deltas_processed}")
    print(f"genes reconciled:  {report.genes_upserted}")
    print(f"proteins loaded:   {report.proteins_upserted}")
    print(f"conflicts kept:    {report.conflicts_recorded}  "
          f"(requirement C9: both alternatives retained)")

    session = BiqlSession(warehouse)

    print()
    print("=" * 70)
    print("BiQL: biological questions, no SQL (section 6.4)")
    print("=" * 70)
    for biql in (
        "COUNT genes",
        "FIND genes WHERE sequence CONTAINS 'TATAAT' "
        "SHOW accession, name, organism LIMIT 5",
        "FIND genes WHERE organism IS 'Escherichia coli' AND gc > 0.45 "
        "SHOW accession, name, gc SORT BY gc DESC LIMIT 5",
        "FIND proteins WHERE pi > 9 SHOW accession, name, pi LIMIT 5",
    ):
        print(f"\nBiQL> {biql}")
        print(session.render(biql))
        print(f"(compiled to: {session.last_sql})")

    print()
    print("=" * 70)
    print("Cross-source conflicts surfaced, not hidden (C8/C9)")
    print("=" * 70)
    conflicts = warehouse.conflict_report()
    print(f"{len(conflicts)} conflicting fields recorded; examples:")
    for accession, field, readings in conflicts.rows[:3]:
        best = readings.best()
        print(f"  {accession}.{field}: {len(readings)} readings, "
              f"best from {best.source} "
              f"(confidence {best.confidence:.2f})")

    print()
    print("=" * 70)
    print("The sources move on; the warehouse refreshes incrementally")
    print("=" * 70)
    accession = warehouse.query(
        "SELECT accession FROM public_genes LIMIT 1"
    ).scalar()
    warehouse.annotate("you", accession, "candidate for knockout study")
    for source in sources:
        source.advance(15)
    refresh = warehouse.refresh()
    print(f"deltas detected:   {refresh.deltas_processed} "
          f"(monitor cost {refresh.monitor_cost_units} units)")
    print(f"genes re-merged:   {refresh.genes_upserted}, "
          f"deleted: {refresh.genes_deleted}")
    print(f"stale annotations: {refresh.annotations_marked_stale} "
          f"(flagged, never silently dropped)")
    print(f"history preserved: "
          f"{warehouse.query('SELECT count(*) FROM archive').scalar()} "
          f"archived record images (C15)")

    print()
    print("=" * 70)
    print("Measuring B10 instead of assuming it")
    print("=" * 70)
    from repro.warehouse import source_quality_report

    for entry in source_quality_report(warehouse):
        print(f"  {entry}")

    print()
    print("Gene length distribution after refresh:")
    print(session.render("FIND genes SHOW accession, length "
                         "AS HISTOGRAM OF length"))


if __name__ == "__main__":
    main()
