#!/usr/bin/env python3
"""Quickstart: the Genomics Algebra in five minutes.

Runs the paper's two signature moves end to end:

1. the mini algebra of section 4.2 —
   ``translate(splice(transcribe(g)))`` as a parsed, sort-checked,
   evaluated term;
2. the extended-SQL example of section 6.3 —
   ``SELECT id FROM dna_fragments WHERE contains(fragment, 'ATTGCCATA')``
   against a database with the algebra plugged in as UDTs/UDFs.

Run:  python examples/quickstart.py
"""

from repro import Database, genomics_algebra, install_genomics
from repro.core import ops
from repro.core.types import DnaSequence, Gene, Interval


def demo_algebra() -> None:
    print("=" * 70)
    print("1. The Genomics Algebra (section 4.2)")
    print("=" * 70)

    # A small two-exon gene (the intron is positions 12..18).
    gene = Gene(
        name="demo",
        sequence=DnaSequence("ATGGCCATTGTAATGGGCCGCTGAAAGGGTGCCCGATAG"),
        exons=(Interval(0, 12), Interval(18, 39)),
        organism="Synthetica exempli",
    )
    print(f"gene {gene.name}: {len(gene)} bp, "
          f"{len(gene.exons)} exons, {len(gene.introns)} intron(s)")

    algebra = genomics_algebra()
    term = algebra.parse("translate(splice(transcribe(g)))",
                         variables={"g": "gene"})
    print(f"term: {term}  (sort: {term.sort})")

    protein = algebra.evaluate(term, {"g": gene})
    print(f"protein: {protein.sequence}")

    # The same pipeline step by step, with plain function calls.
    transcript = ops.transcribe(gene)
    mrna = ops.splice(transcript)
    print(f"primary transcript: {len(transcript)} nt "
          f"-> spliced mRNA: {len(mrna)} nt "
          f"-> protein: {len(protein.sequence)} aa")

    # A few more operations from the library.
    print(f"GC content:       {ops.gc_content(gene.sequence):.3f}")
    print(f"melting temp:     {ops.melting_temperature(gene.sequence):.1f} C")
    print(f"reverse strand:   {ops.reverse_complement(gene.sequence)}")
    orfs = ops.find_orfs(gene.sequence, min_protein_length=3)
    print(f"ORFs (both strands, >=3 aa): {len(orfs)}")


def demo_extended_sql() -> None:
    print()
    print("=" * 70)
    print("2. The algebra inside SQL (sections 6.2-6.3)")
    print("=" * 70)

    database = Database()
    install_genomics(database)  # the DBMS-specific adapter of Figure 3

    database.execute(
        "CREATE TABLE dna_fragments (id INTEGER PRIMARY KEY, fragment DNA)"
    )
    database.execute(
        "INSERT INTO dna_fragments VALUES "
        "(1, dna('ATGATTGCCATAGGGTT')), "
        "(2, dna('CCCCGGGGCCCCGGGG')), "
        "(3, dna('TTATTGCCATATT'))"
    )

    # The paper's example query, verbatim semantics.
    sql = ("SELECT id FROM dna_fragments "
           "WHERE contains(fragment, 'ATTGCCATA')")
    print(f"SQL> {sql}")
    result = database.query(sql)
    print(f"matching ids: {[row[0] for row in result]}")

    # UDFs anywhere an expression may occur: SELECT, WHERE, ORDER BY.
    report = database.query(
        "SELECT id, seq_text(fragment) AS fragment, "
        "gc_content(fragment) AS gc, "
        "melting_temperature(fragment) AS tm "
        "FROM dna_fragments ORDER BY gc_content(fragment) DESC"
    )
    print()
    print(report.pretty())

    # A genomic index turns contains() into a candidate fetch + re-check.
    database.execute(
        "CREATE INDEX idx_frag ON dna_fragments (fragment) "
        "USING kmer WITH (k = 4)"
    )
    print()
    print("plan with a k-mer index:")
    print(database.explain(sql))


if __name__ == "__main__":
    demo_algebra()
    demo_extended_sql()
