"""Genomics Algebra + Unifying Database.

A from-scratch reproduction of Hammer & Schneider, *Genomics Algebra: A
New, Integrating Data Model, Language, and Tool for Processing and
Querying Genomic Information* (CIDR 2003).

The two pillars:

- :mod:`repro.core` — the **Genomics Algebra**: genomic data types
  (packed sequences, genes, transcripts, proteins, uncertainty), a
  comprehensive operation library (central dogma, search, alignment,
  similarity, statistics), a formal many-sorted algebra kernel, and the
  ontology the algebra is derived from.
- :mod:`repro.warehouse` — the **Unifying Database**: an integrated
  warehouse over simulated public repositories, with full ETL (change
  detection, wrappers, reconciliation), archiving, and user space.

Everything between them:

- :mod:`repro.db` — a from-scratch extensible relational engine (SQL
  subset, opaque UDTs, UDFs, genomic indexes, optimizer, WAL).
- :mod:`repro.adapter` — plugs the algebra into the engine (Figure 3).
- :mod:`repro.sources` / :mod:`repro.etl` — repository simulators and
  the change-detection machinery of Figure 2.
- :mod:`repro.mediator` — the query-driven baseline of Figure 1.
- :mod:`repro.lang` — BiQL (the biological query language), GenAlgXML,
  output renderers.
- :mod:`repro.evaluation` — Table 1 as executable capability probes.

Quickstart::

    from repro import genomics_algebra, UnifyingDatabase, BiqlSession
    from repro.sources import Universe, GenBankRepository, EmblRepository

    universe = Universe(seed=42)
    warehouse = UnifyingDatabase([GenBankRepository(universe),
                                  EmblRepository(universe)])
    warehouse.initial_load()
    session = BiqlSession(warehouse)
    print(session.render(
        "FIND genes WHERE sequence CONTAINS 'TATAAT' "
        "SHOW accession, name, gc SORT BY gc DESC LIMIT 10"
    ))
"""

from repro.adapter import GenomicsAdapter, install_genomics
from repro.core import genomics_algebra
from repro.db import Database, ResultSet
from repro.lang import BiqlSession
from repro.mediator import Mediator
from repro.warehouse import UnifyingDatabase

__version__ = "1.0.0"

__all__ = [
    "genomics_algebra",
    "UnifyingDatabase",
    "BiqlSession",
    "Mediator",
    "Database",
    "ResultSet",
    "GenomicsAdapter",
    "install_genomics",
    "__version__",
]
