"""Bounded worker pools for concurrent mediator fan-out.

The mediator fans one job per source out over a pool.  Three pools
share the interface:

- :class:`SequentialPool` — the legacy baseline: jobs run inline, in
  order, on the caller's thread, advancing the shared virtual clock
  directly (summed per-source time);
- :class:`ThreadedPool` — a bounded ``ThreadPoolExecutor``; each job
  runs on its own :class:`~repro.sources.faults.ClockTrack`, and the
  mediator joins the tracks back into the shared clock with
  :func:`bounded_makespan`, so modelled latency reflects wall-clock
  under ``max_workers``-way parallelism;
- ``DeterministicPool`` (in ``tests/concurrency``) — runs jobs serially
  in a *seeded permutation* of submission order while still reporting
  ``parallel = True``, which makes every interleaving-sensitive code
  path replayable without threads.

A pool's :meth:`~WorkerPool.run` returns results **in submission
order** regardless of completion order — answer fusion stays
deterministic by construction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.errors import MediatorError
from repro.obs.trace import capture_context, use_context

_T = TypeVar("_T")


def bounded_makespan(durations: Sequence[float], workers: int) -> float:
    """Virtual wall-clock of running *durations* on *workers* lanes.

    Greedy list scheduling in submission order — each job starts on the
    lane that frees up first, which is exactly how a bounded thread pool
    drains its queue.  With one lane this degenerates to ``sum()``; with
    ``workers >= len(durations)`` to ``max()``.
    """
    if not durations:
        return 0.0
    lanes = [0.0] * max(1, min(workers, len(durations)))
    for duration in durations:
        index = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[index] += duration
    return max(lanes)


class WorkerPool:
    """Interface: run a batch of thunks, return results in order."""

    #: Whether jobs may observe each other mid-flight (drives the
    #: mediator's decision to isolate each job on a clock track).
    parallel: bool = False
    #: Lane count used for the makespan join.
    max_workers: int = 1

    def run(self, tasks: Sequence[Callable[[], _T]]) -> list[_T]:
        raise NotImplementedError


class SequentialPool(WorkerPool):
    """Jobs run inline on the caller's thread, in submission order."""

    parallel = False
    max_workers = 1

    def run(self, tasks: Sequence[Callable[[], _T]]) -> list[_T]:
        return [task() for task in tasks]


class ThreadedPool(WorkerPool):
    """A bounded thread pool; one short-lived executor per batch.

    The executor is created and torn down inside :meth:`run` so that
    the many mediators a test suite builds never leak idle worker
    threads past their last query.
    """

    parallel = True

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise MediatorError("a worker pool needs at least one worker")
        self.max_workers = max_workers

    def run(self, tasks: Sequence[Callable[[], _T]]) -> list[_T]:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        # Freeze the submitting thread's tracing context so spans opened
        # inside a worker parent under the caller's current span instead
        # of starting orphan traces of their own.
        context = capture_context()

        def contextual(task: Callable[[], _T]) -> Callable[[], _T]:
            def run_with_context() -> _T:
                with use_context(context):
                    return task()
            return run_with_context

        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            futures = [executor.submit(contextual(task)) for task in tasks]
            return [future.result() for future in futures]

    def __repr__(self) -> str:
        return f"ThreadedPool(max_workers={self.max_workers})"
