"""Delta-invalidated answer caching for the mediator.

The ROADMAP's north star — mediation under heavy traffic — needs the
second classic fix next to concurrent fan-out: stop re-asking the
sources questions whose answers cannot have changed.  The ETL layer
already knows *exactly* what changed (monitors emit
:class:`~repro.etl.delta.Delta` records per source accession), so the
cache can be precise instead of timer-based:

- every cached answer carries its **provenance**: the set of
  ``("record", source, accession)`` keys it read plus, for extent
  queries (``find_genes``), ``("extent", source)`` keys — a full scan
  depends on every record a source holds, including records that do
  not exist yet;
- a delta for accession X at source S evicts exactly the entries whose
  provenance intersects ``{("extent", S), ("record", S, X)}``; unrelated
  entries survive — there is no blanket flush anywhere;
- a monitor poll that *fails* makes its source **suspect**: entries
  depending on it are bypassed (answered live) but not evicted, so one
  flaky poll doesn't destroy the rest of the working set; a later clean
  poll lifts the suspicion;
- :meth:`CachedMediator.staleness_bound` reports the only staleness a
  served answer can have: the virtual time since the last clean
  monitor sweep.

Only *complete* answers are cached — a degraded answer is a fact about
source availability, not about the data — and only predicate-free
queries (an opaque callable cannot be a cache key).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.errors import MediatorError
from repro.etl.delta import Delta
from repro.etl.monitors import SourceMonitor, choose_monitor
from repro.mediator.mediator import (
    MediatedAnswer,
    MediatedBatch,
    MediationCost,
    Mediator,
)
from repro.obs.metrics import count as _metric, gauge as _gauge
from repro.obs.trace import annotate as _annotate, span as _span

#: Provenance key kinds.
EXTENT = "extent"    # depends on everything a source holds (full scans)
RECORD = "record"    # depends on one record's state at one source


def extent_key(source: str) -> tuple:
    return (EXTENT, source)


def record_key(source: str, accession: str) -> tuple:
    return (RECORD, source, accession)


@dataclass
class CacheStats:
    """Hit/miss/eviction/invalidation counters (lifetime of one cache)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)
        _metric("cache", counter, amount)


class CacheEntry:
    """One cached answer plus the provenance that can invalidate it."""

    __slots__ = ("key", "answer", "provenance", "cached_at")

    def __init__(self, key: Hashable, answer, provenance: frozenset,
                 cached_at: float) -> None:
        self.key = key
        self.answer = answer
        self.provenance = provenance
        self.cached_at = cached_at

    def touched_by(self, delta: Delta) -> bool:
        return bool(self.provenance & {extent_key(delta.source),
                                       record_key(delta.source,
                                                  delta.accession)})

    def depends_on(self, source: str) -> bool:
        return any(piece[1] == source for piece in self.provenance)


class QueryCache:
    """A size-bounded LRU of mediated answers, invalidated by deltas.

    Thread-safe: lookups, inserts, and invalidations all hold one lock,
    so a reader racing an invalidation either sees the entry before the
    delta (and the delta evicts it for the *next* reader) or not at all
    — never a torn entry.  Counters are mirrored into an optional
    :class:`~repro.mediator.mediator.MediationCost` so mediation work
    accounting and cache behaviour read from one place.
    """

    def __init__(self, max_entries: int = 128,
                 cost: MediationCost | None = None) -> None:
        if max_entries < 1:
            raise MediatorError("a query cache needs room for one entry")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._cost = cost
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> tuple:
        with self._lock:
            return tuple(self._entries)

    def _count(self, counter: str, amount: int = 1) -> None:
        self.stats.bump(counter, amount)
        if self._cost is not None:
            self._cost.bump(f"cache_{counter}", amount)

    def get(self, key: Hashable) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._count("misses")
                return None
            self._entries.move_to_end(key)
            self._count("hits")
            return entry

    def put(self, key: Hashable, answer, provenance,
            cached_at: float = 0.0) -> CacheEntry:
        entry = CacheEntry(key, answer, frozenset(provenance), cached_at)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._count("evictions")
        return entry

    def invalidate(self, delta: Delta) -> int:
        """Evict exactly the entries whose provenance *delta* touches."""
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if entry.touched_by(delta)]
            for key in stale:
                del self._entries[key]
            if stale:
                self._count("invalidations", len(stale))
            return len(stale)

    def invalidate_source(self, source: str) -> int:
        """Evict every entry depending on *source* (monitor resync)."""
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if entry.depends_on(source)]
            for key in stale:
                del self._entries[key]
            if stale:
                self._count("invalidations", len(stale))
            return len(stale)


def normalize_query(kind: str, **params) -> tuple:
    """Canonical hashable key for one mediator query.

    ``None`` parameters are dropped and the rest sorted by name, so
    ``find_genes(organism=None, name_prefix="p")`` and
    ``find_genes(name_prefix="p")`` share an entry.
    """
    pieces = tuple(sorted(
        (name, tuple(value) if isinstance(value, (list, tuple)) else value)
        for name, value in params.items() if value is not None
    ))
    return (kind,) + pieces


class CachedMediator:
    """A :class:`Mediator` fronted by a delta-invalidated answer cache.

    One ETL monitor per source (the cheapest strategy Figure 2 allows,
    via :func:`~repro.etl.monitors.choose_monitor`) supplies the delta
    stream; :meth:`sync` drains it into precise invalidations.  Serving
    stays mediator-shaped: answers carry their ``health``, and a
    ``from_cache`` attribute says whether the sources were consulted.
    """

    def __init__(
        self,
        sources: Sequence,
        *,
        max_entries: int = 128,
        monitors: dict[str, SourceMonitor] | None = None,
        **mediator_options,
    ) -> None:
        self.mediator = Mediator(sources, **mediator_options)
        self.cache = QueryCache(max_entries, cost=self.mediator.cost)
        if monitors is None:
            monitors = {repository.name: choose_monitor(repository)
                        for repository in sources}
        self.monitors = monitors
        self.suspect_sources: set[str] = set()
        self.last_sync = self.timeline.now()

    # -- plumbing ---------------------------------------------------------------

    @property
    def timeline(self):
        return self.mediator.timeline

    @property
    def cost(self) -> MediationCost:
        return self.mediator.cost

    @property
    def last_health(self):
        return self.mediator.last_health

    @property
    def source_names(self) -> tuple[str, ...]:
        return self.mediator.source_names

    def install_overload_controls(self, retry_budgets=None,
                                  hedgers=None) -> None:
        self.mediator.install_overload_controls(retry_budgets, hedgers)

    def staleness_bound(self) -> float:
        """Virtual time since the last clean monitor sweep — the maximum
        age a served cached answer's provenance can have."""
        return self.timeline.now() - self.last_sync

    # -- the delta stream -------------------------------------------------------

    def sync(self) -> list[Delta]:
        """Poll every monitor; apply the deltas as precise invalidations.

        A failed poll leaves its source *suspect* (bypassed, not
        flushed) until a later poll succeeds; the staleness bound only
        resets once every monitor answered cleanly.
        """
        with _span("cache.sync", monitors=len(self.monitors)) as spn:
            deltas: list[Delta] = []
            suspect: set[str] = set()
            for name in sorted(self.monitors):
                monitor = self.monitors[name]
                failed_before = monitor.health.failed_polls
                try:
                    batch = monitor.poll()
                except Exception:
                    # A poll that *raises* (rather than counting a
                    # failed poll) must not abort the sweep: later
                    # monitors' deltas still invalidate precisely, and
                    # the broken source is merely suspect until a
                    # clean poll lifts the suspicion.
                    suspect.add(name)
                    _metric("cache", "sync_poll_errors")
                    continue
                if monitor.health.failed_polls > failed_before:
                    suspect.add(name)
                deltas.extend(batch)
            for delta in deltas:
                self.cache.invalidate(delta)
            self.suspect_sources = suspect
            if not suspect:
                self.last_sync = self.timeline.now()
            spn.annotate(deltas=len(deltas),
                         suspect=",".join(sorted(suspect)) or None)
            _gauge("cache", "entries", len(self.cache))
            _gauge("cache", "staleness_bound", self.staleness_bound())
            return deltas

    def _serviceable(self, entry) -> bool:
        return not any(entry.depends_on(source)
                       for source in self.suspect_sources)

    # -- cached query API -------------------------------------------------------

    def _lookup(self, key):
        entry = self.cache.get(key)
        if entry is not None and self._serviceable(entry):
            return entry
        return None

    @staticmethod
    def _materialize(entry):
        """A served copy of a cached answer (mutations can't poison it)."""
        answer = entry.answer
        if isinstance(answer, MediatedBatch):
            copy = MediatedBatch(
                {accession: list(views)
                 for accession, views in answer.items()},
                health=answer.health)
        else:
            copy = MediatedAnswer(list(answer), health=answer.health)
        copy.from_cache = True
        return copy

    def peek(self, kind: str, **params):
        """A cached answer for one query, or ``None`` — never goes live.

        The brownout ladder's cache-only rung: under sustained overload
        non-interactive queries may still be answered from here, but a
        miss is a shed, not a source fan-out.  *kind* and *params* must
        match the corresponding query method's cache key (``gene``,
        ``genes``, ``find_genes``).
        """
        entry = self._lookup(normalize_query(kind, **params))
        return self._materialize(entry) if entry is not None else None

    def find_genes(
        self,
        organism: str | None = None,
        name_prefix: str | None = None,
        contains_motif: str | None = None,
        min_length: int | None = None,
        predicate: Callable | None = None,
        strict: bool = False,
        *,
        deadline_at: float | None = None,
        exclude: Sequence[str] = (),
    ) -> MediatedAnswer:
        if predicate is not None:
            # An opaque callable cannot key a cache entry; go live.
            _annotate(cache="bypass")
            return self.mediator.find_genes(
                organism, name_prefix, contains_motif, min_length,
                predicate, strict, deadline_at=deadline_at, exclude=exclude)
        key = normalize_query("find_genes", organism=organism,
                              name_prefix=name_prefix,
                              contains_motif=contains_motif,
                              min_length=min_length)
        with _span("cache.find_genes") as spn:
            entry = self._lookup(key)
            if entry is not None:
                spn.annotate(cache="hit")
                return self._materialize(entry)
            spn.annotate(cache="miss")
            answer = self.mediator.find_genes(
                organism, name_prefix, contains_motif, min_length,
                None, strict, deadline_at=deadline_at, exclude=exclude)
            if answer.health.complete:
                provenance = {extent_key(name)
                              for name in self.source_names}
                self.cache.put(key, answer, provenance,
                               self.timeline.now())
            answer.from_cache = False
            return answer

    def gene(self, accession: str, strict: bool = False, *,
             deadline_at: float | None = None,
             exclude: Sequence[str] = ()) -> MediatedAnswer:
        key = normalize_query("gene", accession=accession)
        with _span("cache.gene", accession=accession) as spn:
            entry = self._lookup(key)
            if entry is not None:
                spn.annotate(cache="hit")
                return self._materialize(entry)
            spn.annotate(cache="miss")
            answer = self.mediator.gene(accession, strict,
                                        deadline_at=deadline_at,
                                        exclude=exclude)
            if answer.health.complete:
                provenance = {record_key(name, accession)
                              for name in self.source_names}
                self.cache.put(key, answer, provenance,
                               self.timeline.now())
            answer.from_cache = False
            return answer

    def genes(
        self, accessions: Sequence[str], strict: bool = False, *,
        deadline_at: float | None = None,
        exclude: Sequence[str] = (),
    ) -> MediatedBatch:
        key = normalize_query("genes", accessions=tuple(accessions))
        with _span("cache.genes", accessions=len(accessions)) as spn:
            entry = self._lookup(key)
            if entry is not None:
                spn.annotate(cache="hit")
                return self._materialize(entry)
            spn.annotate(cache="miss")
            batch = self.mediator.genes(accessions, strict,
                                        deadline_at=deadline_at,
                                        exclude=exclude)
            if batch.health.complete:
                provenance = {record_key(name, accession)
                              for name in self.source_names
                              for accession in accessions}
                self.cache.put(key, batch, provenance,
                               self.timeline.now())
            batch.from_cache = False
            return batch

    def count_genes(self, **filters) -> int:
        return len(self.find_genes(**filters))
