"""The query-driven integration baseline (Figure 1).

"Middleware systems, in which the bulk of the query and result
processing takes place in a different location from where the data is
stored" — wrappers extract data from the sources *at query time*, ship
it to the integration system, and the mediator processes it there.

This is the architecture the paper argues against for close-control
workloads, implemented honestly so the Figure 1 benchmark can measure
the trade-off it embodies:

- **freshness**: every query sees the current source state (staleness 0);
- **cost**: every query pays wrapper extraction + shipping + middleware
  processing, multiplied by the number of sources;
- **no reconciliation**: conflicting source answers are returned side by
  side (Table 1, row C8, for the query-driven systems).

Per-request latency is modelled virtually (a counter, not a sleep), so
benchmarks can report both measured compute time and modelled network
round-trips.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.ops import contains as motif_contains
from repro.errors import MediatorError
from repro.etl.wrappers import ParsedRecord, Wrapper, wrapper_for
from repro.sources.base import Repository


@dataclass
class MediationCost:
    """Work accounting across one mediator's lifetime."""

    source_requests: int = 0
    bytes_shipped: int = 0
    records_wrapped: int = 0
    queries_answered: int = 0

    def reset(self) -> "MediationCost":
        snapshot = MediationCost(**vars(self))
        self.source_requests = 0
        self.bytes_shipped = 0
        self.records_wrapped = 0
        self.queries_answered = 0
        return snapshot


class LiveSourceWrapper:
    """Query-time access to one repository through its native interface.

    Queryable sources are asked record by record; non-queryable sources
    can only ship their full dump per request — exactly the asymmetry
    that makes query-driven integration expensive over flat-file
    archives.
    """

    def __init__(self, repository: Repository, cost: MediationCost) -> None:
        self.repository = repository
        self.wrapper: Wrapper = wrapper_for(repository.name)
        self._cost = cost
        self._memo: list[ParsedRecord] | None = None
        self._memo_active = False

    def begin_query(self) -> None:
        """Open a per-query memo scope: repeated extractions within one
        mediator query reuse the first dump, so a non-queryable source
        is shipped and parsed at most once per query.  Freshness is
        untouched — the memo dies with the query."""
        self._memo_active = True
        self._memo = None

    def end_query(self) -> None:
        self._memo_active = False
        self._memo = None

    def fetch_all(self) -> list[ParsedRecord]:
        """Extract every record, at query time."""
        if self._memo is not None:
            return self._memo
        records = self._extract_all()
        if self._memo_active:
            self._memo = records
        return records

    def _extract_all(self) -> list[ParsedRecord]:
        if self.repository.capabilities.queryable:
            records = []
            for accession in self.repository.query_accessions():
                self._cost.source_requests += 1
                text = self.repository.query(accession)
                if text is None:
                    continue
                self._cost.bytes_shipped += len(text)
                records.append(self.wrapper.parse_record(text))
            self._cost.records_wrapped += len(records)
            return records
        self._cost.source_requests += 1
        dump = self.repository.snapshot()
        self._cost.bytes_shipped += len(dump)
        records = self.wrapper.parse_snapshot(dump)
        self._cost.records_wrapped += len(records)
        return records

    def fetch(self, accession: str) -> ParsedRecord | None:
        """Extract one record (cheap only for queryable sources)."""
        if self.repository.capabilities.queryable:
            self._cost.source_requests += 1
            text = self.repository.query(accession)
            if text is None:
                return None
            self._cost.bytes_shipped += len(text)
            self._cost.records_wrapped += 1
            return self.wrapper.parse_record(text)
        for record in self.fetch_all():
            if record.accession == accession:
                return record
        return None


@dataclass
class MediatedGene:
    """A gene answer in the mediator's global schema (one per source!).

    The mediator does not reconcile: the same accession seen in three
    sources yields three rows, possibly disagreeing.
    """

    accession: str
    source: str
    name: str | None
    organism: str | None
    description: str | None
    sequence_text: str
    length: int = field(init=False)

    def __post_init__(self) -> None:
        self.length = len(self.sequence_text)


class Mediator:
    """The integration system of Figure 1: decompose, ship, fuse."""

    def __init__(self, sources: Sequence[Repository]) -> None:
        if not sources:
            raise MediatorError("a mediator needs at least one source")
        self.cost = MediationCost()
        self.wrappers = [LiveSourceWrapper(repository, self.cost)
                         for repository in sources]

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(w.repository.name for w in self.wrappers)

    @contextmanager
    def _query_scope(self) -> Iterator[None]:
        """One mediator query = one extraction per source, at most."""
        for wrapper in self.wrappers:
            wrapper.begin_query()
        try:
            yield
        finally:
            for wrapper in self.wrappers:
                wrapper.end_query()

    # -- the global-schema query API ----------------------------------------------

    def _gene_rows(self) -> Iterable[MediatedGene]:
        for wrapper in self.wrappers:
            for record in wrapper.fetch_all():
                if record.dna is None:
                    continue  # protein databanks don't serve the gene view
                yield MediatedGene(
                    accession=record.accession,
                    source=wrapper.repository.name,
                    name=record.name,
                    organism=record.organism,
                    description=record.description,
                    sequence_text=str(record.dna),
                )

    def find_genes(
        self,
        organism: str | None = None,
        name_prefix: str | None = None,
        contains_motif: str | None = None,
        min_length: int | None = None,
        predicate: Callable[[MediatedGene], bool] | None = None,
    ) -> list[MediatedGene]:
        """Answer a selection over the virtual ``genes`` view.

        All filtering happens in the middleware, after extraction — the
        defining property of the architecture.
        """
        self.cost.queries_answered += 1
        answers: list[MediatedGene] = []
        with self._query_scope():
            for row in self._gene_rows():
                if organism is not None and row.organism != organism:
                    continue
                if name_prefix is not None and not (
                    row.name or ""
                ).startswith(name_prefix):
                    continue
                if min_length is not None and row.length < min_length:
                    continue
                if contains_motif is not None:
                    from repro.core.types import DnaSequence

                    if not motif_contains(DnaSequence(row.sequence_text),
                                          contains_motif):
                        continue
                if predicate is not None and not predicate(row):
                    continue
                answers.append(row)
        return answers

    def _gene_views(self, accession: str) -> list[MediatedGene]:
        answers = []
        for wrapper in self.wrappers:
            record = wrapper.fetch(accession)
            if record is not None and record.dna is not None:
                answers.append(MediatedGene(
                    accession=record.accession,
                    source=wrapper.repository.name,
                    name=record.name,
                    organism=record.organism,
                    description=record.description,
                    sequence_text=str(record.dna),
                ))
        return answers

    def gene(self, accession: str) -> list[MediatedGene]:
        """All source views of one accession (unreconciled, C8)."""
        self.cost.queries_answered += 1
        with self._query_scope():
            return self._gene_views(accession)

    def genes(self, accessions: Sequence[str]) -> dict[str,
                                                       list[MediatedGene]]:
        """Batch lookup: many accessions, ONE query.

        Inside the shared query scope a non-queryable source ships its
        dump once for the whole batch, not once per accession — the
        per-query memo is what keeps :class:`MediationCost` honest here.
        """
        self.cost.queries_answered += 1
        with self._query_scope():
            return {accession: self._gene_views(accession)
                    for accession in accessions}

    def count_genes(self, **filters) -> int:
        return len(self.find_genes(**filters))

    def disagreements(self, accession: str) -> dict[str, set[str]]:
        """Field → distinct values across sources (what C8 looks like)."""
        views = self.gene(accession)
        result: dict[str, set[str]] = {}
        for field_name in ("name", "organism", "description",
                           "sequence_text"):
            values = {getattr(view, field_name) or "" for view in views}
            if len(values) > 1:
                result[field_name] = values
        return result
