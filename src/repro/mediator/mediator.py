"""The query-driven integration baseline (Figure 1), fault-tolerant.

"Middleware systems, in which the bulk of the query and result
processing takes place in a different location from where the data is
stored" — wrappers extract data from the sources *at query time*, ship
it to the integration system, and the mediator processes it there.

This is the architecture the paper argues against for close-control
workloads, implemented honestly so the Figure 1 benchmark can measure
the trade-off it embodies:

- **freshness**: every query sees the current source state (staleness 0);
- **cost**: every query pays wrapper extraction + shipping + middleware
  processing, multiplied by the number of sources;
- **no reconciliation**: conflicting source answers are returned side by
  side (Table 1, row C8, for the query-driven systems).

Because the underlying repositories are autonomous and unreliable
("simply collections of flat files" that change, disappear, and answer
inconsistently), the mediator treats partial source failure as the
normal case:

- every source call runs under a :class:`RetryPolicy` (exponential
  backoff, deterministic jitter, per-call attempt cap, optional
  per-query deadline budget on the shared virtual clock);
- each source sits behind a :class:`CircuitBreaker`
  (closed → open → half-open) so a dead source stops being hammered;
- queries return **partial answers** plus a :class:`QueryHealth`
  provenance report naming which sources answered, retried, were
  skipped (breaker open), or failed — ``strict=True`` turns a degraded
  answer into a :class:`~repro.errors.MediatorError` instead.

Per-request latency is modelled virtually (a counter, not a sleep), so
benchmarks can report both measured compute time and modelled network
round-trips + backoff delay.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core.ops import contains as motif_contains
from repro.errors import MediatorError, SourceError, WrapperError
from repro.etl.wrappers import ParsedRecord, Wrapper, wrapper_for
from repro.mediator.pool import (
    SequentialPool,
    ThreadedPool,
    WorkerPool,
    bounded_makespan,
)
from repro.obs.metrics import count as _metric
from repro.obs.trace import (
    annotate as _annotate,
    current_trace_id as _current_trace_id,
    span as _span,
)
from repro.sources.base import Repository
from repro.sources.faults import VirtualClock

_T = TypeVar("_T")

#: Per-source outcome states in a :class:`QueryHealth` report.
OK = "ok"                 # answered on the first attempt
RETRIED = "retried"       # answered, but only after at least one retry
SKIPPED = "skipped"       # not asked: its circuit breaker was open
FAILED = "failed"         # asked, retried, and still failed

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class MediationCost:
    """Work accounting across one mediator's lifetime.

    Updates go through :meth:`bump`, which holds a lock so concurrent
    fan-out never loses an increment.  The lock is a plain attribute
    rather than a dataclass field, keeping ``fields()``-based iteration
    (and :meth:`reset`) exactly as cheap as before.
    """

    source_requests: int = 0
    bytes_shipped: int = 0
    records_wrapped: int = 0
    queries_answered: int = 0
    retries: int = 0
    source_failures: int = 0
    breaker_rejections: int = 0
    backoff_delay: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    retry_budget_denials: int = 0
    source_exclusions: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: float = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)
        _metric("mediation", counter, amount)

    def reset(self) -> "MediationCost":
        with self._lock:
            snapshot = MediationCost(
                **{spec.name: getattr(self, spec.name)
                   for spec in fields(self)}
            )
            for spec in fields(self):
                setattr(self, spec.name, spec.default)
        return snapshot


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try a flaky source before giving up on it.

    Delays are virtual-clock units, jitter is deterministic (seeded from
    source, operation, and attempt number), and ``deadline`` caps the
    *whole query's* backoff budget — once spent, remaining sources fail
    fast instead of stretching the answer forever.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise MediatorError("a retry policy needs at least one attempt")

    def delay_before(self, attempt: int, source: str = "",
                     operation: str = "") -> float:
        """Backoff before *attempt* (attempt 2 waits ``base_delay``…)."""
        exponent = max(0, attempt - 2)
        raw = min(self.max_delay, self.base_delay * self.multiplier ** exponent)
        if not self.jitter:
            return raw
        rng = random.Random((source, operation, attempt).__repr__())
        return raw * (1.0 - self.jitter * rng.random())

    @classmethod
    def no_retries(cls) -> "RetryPolicy":
        """The ablation baseline: one attempt, fail immediately."""
        return cls(max_attempts=1)


@dataclass(frozen=True)
class BreakerPolicy:
    """When a source's circuit opens and how long it stays open."""

    failure_threshold: int = 3
    reset_timeout: float = 30.0


class CircuitBreaker:
    """Per-source closed → open → half-open breaker on the virtual clock.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, calls are rejected without touching the source.  After
    ``reset_timeout`` virtual seconds **exactly one** probe call is let
    through (half-open): success recloses the circuit, failure reopens
    it.  All state transitions happen under a lock, and the half-open
    probe slot is leased — concurrent callers racing :meth:`allow` see
    one winner, and a probe that never reports back frees the slot
    after another ``reset_timeout``, so a crashed probe cannot strand
    queued callers forever.
    """

    def __init__(self, policy: BreakerPolicy, timeline: VirtualClock) -> None:
        self.policy = policy
        self.timeline = timeline
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.times_opened = 0
        self._probe_started: float | None = None
        self._lock = threading.RLock()

    def allow(self) -> bool:
        with self._lock:
            now = self.timeline.now()
            if self.state == OPEN:
                if now - self.opened_at >= self.policy.reset_timeout:
                    self.state = HALF_OPEN
                    self._probe_started = now
                    return True
                return False
            if self.state == HALF_OPEN:
                if (self._probe_started is not None
                        and now - self._probe_started
                        < self.policy.reset_timeout):
                    return False  # another caller holds the probe slot
                self._probe_started = now  # lease expired: new probe
                return True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.state = CLOSED
            self.consecutive_failures = 0
            self.opened_at = None
            self._probe_started = None

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if (self.state == HALF_OPEN
                    or self.consecutive_failures
                    >= self.policy.failure_threshold):
                if self.state != OPEN:
                    self.times_opened += 1
                self.state = OPEN
                self.opened_at = self.timeline.now()
                self._probe_started = None

    def retry_at(self) -> float:
        """Virtual instant at which the next half-open probe is allowed."""
        with self._lock:
            return (self.opened_at or 0.0) + self.policy.reset_timeout

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.state}, "
                f"failures={self.consecutive_failures})")


@dataclass
class SourceOutcome:
    """How one source behaved during one mediator query.

    ``attempts`` numbers attempts *per query*, not per call: a batch
    lookup that asks the same source four times reports attempts 1–4,
    and a fresh query starts again at 1.  ``backoff`` accumulates this
    source's virtual backoff delay; the mediator folds the per-source
    sums into :class:`MediationCost` in sorted source order at query
    end, so the float total is bit-identical no matter how concurrent
    fan-out interleaved the additions.
    """

    source: str
    status: str = OK
    attempts: int = 0
    retries: int = 0
    backoff: float = 0.0
    error: str | None = None
    #: Virtual time this source's calls cost the query (backoff included).
    latency: float = 0.0
    #: Whether any call to this source issued a hedge, and whether the
    #: hedge's answer is the one the query used.
    hedged: bool = False
    hedge_won: bool = False


@dataclass
class QueryHealth:
    """Provenance of a (possibly degraded) mediated answer.

    Failure states are sticky: a source that failed terminally for any
    part of a query stays ``failed`` even if later calls in the same
    query succeeded, so ``complete`` never overstates the answer.

    When the query ran inside a trace, ``trace_id`` names it, so a
    degraded answer's health report correlates with the spans in the
    JSONL sink telling the same story.
    """

    outcomes: dict[str, SourceOutcome] = field(default_factory=dict)
    deadline_hit: bool = False
    elapsed: float = 0.0
    trace_id: str | None = None
    #: Set by the serving layer when admission control rejected the
    #: query before any source work (reason: queue_full / deadline /
    #: brownout); ``queue_wait`` is virtual time spent queued, charged
    #: against the same deadline budget backoff draws from.
    shed: bool = False
    shed_reason: str | None = None
    queue_wait: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def outcome(self, source: str) -> SourceOutcome:
        with self._lock:
            if source not in self.outcomes:
                self.outcomes[source] = SourceOutcome(source=source)
            return self.outcomes[source]

    def _with_status(self, *statuses: str) -> tuple[str, ...]:
        return tuple(sorted(name for name, outcome in self.outcomes.items()
                            if outcome.status in statuses))

    @property
    def sources_ok(self) -> tuple[str, ...]:
        return self._with_status(OK, RETRIED)

    @property
    def sources_retried(self) -> tuple[str, ...]:
        return self._with_status(RETRIED)

    @property
    def sources_skipped(self) -> tuple[str, ...]:
        return self._with_status(SKIPPED)

    @property
    def sources_failed(self) -> tuple[str, ...]:
        return self._with_status(FAILED)

    @property
    def complete(self) -> bool:
        """True when every source contributed to the answer."""
        return (not self.shed and not self.sources_failed
                and not self.sources_skipped)

    @property
    def sources_hedged(self) -> tuple[str, ...]:
        return tuple(sorted(name for name, outcome in self.outcomes.items()
                            if outcome.hedged))

    @property
    def degraded(self) -> bool:
        return not self.complete

    @property
    def total_retries(self) -> int:
        return sum(outcome.retries for outcome in self.outcomes.values())

    def summary(self) -> str:
        if self.shed:
            pieces = [f"shed={self.shed_reason or 'overload'}"]
            if self.queue_wait:
                pieces.append(f"queued {self.queue_wait:.1f}")
            if self.deadline_hit:
                pieces.append("deadline hit")
            return " ".join(pieces)
        pieces = [f"ok={','.join(self.sources_ok) or '-'}"]
        if self.sources_skipped:
            pieces.append(f"skipped={','.join(self.sources_skipped)}")
        if self.sources_failed:
            pieces.append(f"failed={','.join(self.sources_failed)}")
        if self.sources_hedged:
            pieces.append(f"hedged={','.join(self.sources_hedged)}")
        if self.total_retries:
            pieces.append(f"retries={self.total_retries}")
        if self.deadline_hit:
            pieces.append("deadline hit")
        if self.queue_wait:
            pieces.append(f"queued {self.queue_wait:.1f}")
        pieces.append(f"t+{self.elapsed:.1f}")
        return " ".join(pieces)


class MediatedAnswer(list):
    """A list of answers that also carries its :class:`QueryHealth`."""

    health: QueryHealth

    def __init__(self, rows=(), health: QueryHealth | None = None) -> None:
        super().__init__(rows)
        self.health = health or QueryHealth()


class MediatedBatch(dict):
    """A batch-lookup result that also carries its :class:`QueryHealth`."""

    health: QueryHealth

    def __init__(self, items=(), health: QueryHealth | None = None) -> None:
        super().__init__(items)
        self.health = health or QueryHealth()


@dataclass
class MediatedGene:
    """A gene answer in the mediator's global schema (one per source!).

    The mediator does not reconcile: the same accession seen in three
    sources yields three rows, possibly disagreeing.
    """

    accession: str
    source: str
    name: str | None
    organism: str | None
    description: str | None
    sequence_text: str

    @property
    def length(self) -> int:
        """Sequence length, always in step with ``sequence_text``."""
        return len(self.sequence_text)


class LiveSourceWrapper:
    """Query-time access to one repository through its native interface.

    Queryable sources are asked record by record; non-queryable sources
    can only ship their full dump per request — exactly the asymmetry
    that makes query-driven integration expensive over flat-file
    archives.  Every outward call runs through :meth:`resilient`, which
    owns the retry loop and the circuit breaker.
    """

    def __init__(
        self,
        repository: Repository,
        cost: MediationCost,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        timeline: VirtualClock | None = None,
    ) -> None:
        self.repository = repository
        self.wrapper: Wrapper = wrapper_for(repository.name)
        self.timeline = timeline if timeline is not None else VirtualClock()
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = CircuitBreaker(breaker_policy or BreakerPolicy(),
                                      self.timeline)
        self._cost = cost
        self._memo: list[ParsedRecord] | None = None
        self._memo_active = False
        #: Overload controls, installed by
        #: :meth:`Mediator.install_overload_controls` (None = off).
        self.retry_budget = None   # repro.serving.budget.RetryBudget
        self.hedger = None         # repro.serving.hedge.Hedger

    def begin_query(self) -> None:
        """Open a per-query memo scope: repeated extractions within one
        mediator query reuse the first dump, so a non-queryable source
        is shipped and parsed at most once per query.  Freshness is
        untouched — the memo dies with the query."""
        self._memo_active = True
        self._memo = None
        replica = self.hedger.replica if self.hedger is not None else None
        if replica is not None:
            replica._memo_active = True
            replica._memo = None

    def end_query(self) -> None:
        self._memo_active = False
        self._memo = None
        replica = self.hedger.replica if self.hedger is not None else None
        if replica is not None:
            replica._memo_active = False
            replica._memo = None

    def _timed_call(self, call: Callable[[], _T], origin: float):
        """Run *call* on a private clock track branched at *origin*.

        Returns ``(result, error, duration)``: the virtual time the
        call cost is measured but NOT charged to the outer clock — the
        caller decides how much of it the query actually pays, because
        a hedged call overlaps its backup instead of adding to it.
        """
        result, error = None, None
        track = self.timeline.open_track(origin)
        try:
            result = call()
        except (SourceError, WrapperError) as caught:
            error = caught
        finally:
            duration = self.timeline.close_track(track)
        return result, error, duration

    def _hedged_attempt(
        self,
        call: Callable[[], _T],
        hedge_call: Callable[[], _T] | None,
        outcome: SourceOutcome,
    ):
        """One attempt, possibly raced against a backup call.

        The primary runs on a measurement track; if it took longer than
        the hedger's live p95 delay (and a hedge token is available),
        the backup runs on a second track branched at the instant the
        hedge would have been issued, and the attempt's answer and
        elapsed time are first-response-wins arithmetic over the two —
        the primary wins ties.  The outer clock is then charged the
        attempt's *effective* elapsed time exactly once.
        """
        started_at = self.timeline.now()
        hedger = self.hedger
        # The hedge timer is armed when the call *starts*: the delay
        # comes from the histogram as of now, never from the in-flight
        # call's own duration.
        delay = hedger.hedge_delay() if hedger is not None else None
        result, error, duration = self._timed_call(call, started_at)
        if hedger is not None:
            hedger.observe(duration)
        elapsed = duration
        if (hedger is not None and hedge_call is not None
                and hedger.replica is not None):
            if (delay is not None and duration > delay
                    and hedger.try_issue()):
                outcome.hedged = True
                self._cost.bump("hedges_issued")
                backup, backup_error, backup_duration = self._timed_call(
                    hedge_call, started_at + delay)
                backup_done = delay + backup_duration
                if backup_error is None and (error is not None
                                             or backup_done < duration):
                    # The backup's answer lands first (or is the only
                    # one): the query uses it and pays only its time.
                    result, error = backup, None
                    elapsed = backup_done
                    outcome.hedge_won = True
                    hedger.record_win()
                    self._cost.bump("hedges_won")
                elif error is not None:
                    # Both failed: the caller waited for both.
                    elapsed = max(duration, backup_done)
        self.timeline.advance(elapsed)
        outcome.latency += elapsed
        return result, error

    def resilient(
        self,
        operation: str,
        call: Callable[[], _T],
        health: QueryHealth,
        deadline_at: float | None = None,
        hedge_call: Callable[[], _T] | None = None,
    ) -> _T:
        """Run *call* under the retry policy and the circuit breaker.

        Raises :class:`~repro.errors.SourceError` once the source is
        given up on (breaker open, attempts exhausted, deadline budget
        spent, or retry budget empty); the health report is updated
        either way.  When a hedger with a replica is installed and
        *hedge_call* is given, slow attempts race a backup call to the
        replica (see :meth:`_hedged_attempt`).
        """
        name = self.repository.name
        outcome = health.outcome(name)
        with _span("source.attempt", source=name,
                   operation=operation) as spn:
            if not self.breaker.allow():
                outcome.status = SKIPPED
                outcome.error = (f"circuit open until "
                                 f"t={self.breaker.retry_at():.1f}")
                self._cost.bump("breaker_rejections")
                spn.annotate(status=SKIPPED, breaker=OPEN)
                raise SourceError(f"{name} skipped: circuit breaker open",
                                  source=name, operation=operation,
                                  trace_id=health.trace_id)
            attempt = 0
            while True:
                attempt += 1
                outcome.attempts += 1
                result, error = self._hedged_attempt(call, hedge_call,
                                                     outcome)
                if error is None:
                    self.breaker.record_success()
                    if self.retry_budget is not None:
                        self.retry_budget.record_success()
                    if outcome.status not in (FAILED, SKIPPED):
                        outcome.status = RETRIED if outcome.retries else OK
                    spn.annotate(status=outcome.status,
                                 retries=outcome.retries,
                                 breaker=self.breaker.state)
                    if outcome.hedged:
                        spn.annotate(hedged=True,
                                     hedge_won=outcome.hedge_won)
                    return result
                self.breaker.record_failure()
                self._cost.bump("source_failures")
                outcome.error = str(error)
                if attempt >= self.retry_policy.max_attempts:
                    outcome.status = FAILED
                    spn.annotate(status=FAILED, retries=outcome.retries,
                                 breaker=self.breaker.state)
                    raise SourceError(
                        f"{name} failed {operation} after "
                        f"{outcome.attempts} attempt(s) this query: "
                        f"{error}",
                        source=name, operation=operation,
                        attempt=outcome.attempts,
                        trace_id=health.trace_id,
                    ) from error
                delay = self.retry_policy.delay_before(attempt + 1, name,
                                                       operation)
                if (deadline_at is not None
                        and self.timeline.now() + delay > deadline_at):
                    outcome.status = FAILED
                    outcome.error = (f"deadline budget exhausted after "
                                     f"attempt {outcome.attempts}: "
                                     f"{error}")
                    health.deadline_hit = True
                    spn.annotate(status=FAILED, deadline_hit=True,
                                 retries=outcome.retries,
                                 breaker=self.breaker.state)
                    raise SourceError(
                        f"{name}: {outcome.error}",
                        source=name, operation=operation,
                        attempt=outcome.attempts,
                        trace_id=health.trace_id,
                    ) from error
                if (self.retry_budget is not None
                        and not self.retry_budget.try_spend()):
                    outcome.status = FAILED
                    outcome.error = (f"retry budget exhausted after "
                                     f"attempt {outcome.attempts}: {error}")
                    self._cost.bump("retry_budget_denials")
                    spn.annotate(status=FAILED, retry_budget="exhausted",
                                 retries=outcome.retries,
                                 breaker=self.breaker.state)
                    raise SourceError(
                        f"{name}: {outcome.error}",
                        source=name, operation=operation,
                        attempt=outcome.attempts,
                        trace_id=health.trace_id,
                    ) from error
                self.timeline.advance(delay)
                self._cost.bump("retries")
                outcome.backoff += delay
                outcome.retries += 1

    def fetch_all(self) -> list[ParsedRecord]:
        """Extract every record, at query time."""
        if self._memo is not None:
            return self._memo
        records = self._extract_all()
        if self._memo_active:
            self._memo = records
        return records

    def _extract_all(self) -> list[ParsedRecord]:
        if self.repository.capabilities.queryable:
            records = []
            for accession in self.repository.query_accessions():
                self._cost.bump("source_requests")
                text = self.repository.query(accession)
                if text is None:
                    continue
                self._cost.bump("bytes_shipped", len(text))
                records.append(self.wrapper.parse_record(text))
            self._cost.bump("records_wrapped", len(records))
            return records
        self._cost.bump("source_requests")
        dump = self.repository.snapshot()
        self._cost.bump("bytes_shipped", len(dump))
        records = self.wrapper.parse_snapshot(dump)
        self._cost.bump("records_wrapped", len(records))
        return records

    def fetch(self, accession: str) -> ParsedRecord | None:
        """Extract one record (cheap only for queryable sources)."""
        if self.repository.capabilities.queryable:
            self._cost.bump("source_requests")
            text = self.repository.query(accession)
            if text is None:
                return None
            self._cost.bump("bytes_shipped", len(text))
            self._cost.bump("records_wrapped")
            return self.wrapper.parse_record(text)
        for record in self.fetch_all():
            if record.accession == accession:
                return record
        return None


class Mediator:
    """The integration system of Figure 1: decompose, ship, fuse.

    Non-strict queries implement degraded-answer semantics: every row
    derivable from the sources that answered is returned, and the
    accompanying :class:`QueryHealth` (``result.health``, also kept as
    ``mediator.last_health``) names the sources that did not.
    """

    def __init__(
        self,
        sources: Sequence[Repository],
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        timeline: VirtualClock | None = None,
        max_concurrency: int | None = None,
        pool: WorkerPool | None = None,
    ) -> None:
        if not sources:
            raise MediatorError("a mediator needs at least one source")
        if max_concurrency is None:
            max_concurrency = len(sources)
        if max_concurrency < 1:
            raise MediatorError("max_concurrency must be at least 1")
        names = [repository.name for repository in sources]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise MediatorError(
                f"duplicate source names {duplicates}: each repository "
                f"must be mediated at most once or answers double-count"
            )
        if timeline is None:
            timeline = next(
                (candidate for candidate in
                 (getattr(repository, "timeline", None)
                  for repository in sources)
                 if isinstance(candidate, VirtualClock)),
                None,
            ) or VirtualClock()
        self.timeline = timeline
        self.retry_policy = retry_policy or RetryPolicy()
        self.max_concurrency = max_concurrency
        if pool is None:
            pool = (SequentialPool() if max_concurrency == 1
                    else ThreadedPool(max_concurrency))
        self.pool = pool
        self.cost = MediationCost()
        self.wrappers = [
            LiveSourceWrapper(repository, self.cost,
                              retry_policy=self.retry_policy,
                              breaker_policy=breaker_policy,
                              timeline=timeline)
            for repository in sources
        ]
        self.last_health = QueryHealth()

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(w.repository.name for w in self.wrappers)

    def breaker_for(self, source: str) -> CircuitBreaker:
        for wrapper in self.wrappers:
            if wrapper.repository.name == source:
                return wrapper.breaker
        raise MediatorError(f"no mediated source named {source!r}")

    @contextmanager
    def _query_scope(self) -> Iterator[None]:
        """One mediator query = one extraction per source, at most."""
        for wrapper in self.wrappers:
            wrapper.begin_query()
        try:
            yield
        finally:
            for wrapper in self.wrappers:
                wrapper.end_query()

    def _begin_health(
        self, deadline_at: float | None = None
    ) -> tuple[QueryHealth, float, float | None]:
        """Open a health report; *deadline_at* (absolute virtual time)
        overrides the retry policy's relative deadline so an outer
        serving layer can charge queue wait and cache time against the
        same budget backoff draws from."""
        health = QueryHealth()
        health.trace_id = _current_trace_id()
        started = self.timeline.now()
        if deadline_at is None and self.retry_policy.deadline is not None:
            deadline_at = started + self.retry_policy.deadline
        return health, started, deadline_at

    def install_overload_controls(
        self,
        retry_budgets: dict | None = None,
        hedgers: dict | None = None,
    ) -> None:
        """Attach serving-layer controls to the per-source wrappers.

        ``retry_budgets`` / ``hedgers`` map source name → control; a
        missing name leaves that source uncontrolled.  Installed by
        :class:`repro.serving.FederationServer`, but callable directly
        for tests and ad-hoc setups.
        """
        for wrapper in self.wrappers:
            name = wrapper.repository.name
            if retry_budgets is not None:
                wrapper.retry_budget = retry_budgets.get(name)
            if hedgers is not None:
                wrapper.hedger = hedgers.get(name)

    def _excluded_job(self, wrapper: LiveSourceWrapper,
                      health: QueryHealth, empty):
        """A no-op job recording that overload protection benched this
        source for this query (adaptive concurrency or brownout)."""
        def job():
            outcome = health.outcome(wrapper.repository.name)
            outcome.status = SKIPPED
            outcome.error = "excluded by overload protection"
            self.cost.bump("source_exclusions")
            return empty
        return job

    def _fan_out(self, jobs: Sequence[Callable[[], _T]]) -> list[_T]:
        """Run one job per source on the pool; results in job order.

        Under a parallel pool every job gets a private clock track
        branched off the query's start instant, so each source's
        backoff and deadline arithmetic is independent of how its
        siblings are scheduled.  At the join, the shared clock advances
        by the greedy makespan of the per-job virtual durations over
        ``pool.max_workers`` lanes — modelled latency is wall-clock
        under bounded parallelism, not the per-source sum.
        """
        with _span("mediator.fan_out", jobs=len(jobs),
                   width=self.pool.max_workers,
                   parallel=self.pool.parallel):
            if not self.pool.parallel or len(jobs) <= 1:
                return [job() for job in jobs]
            origin = self.timeline.now()
            durations = [0.0] * len(jobs)
            results: list = [None] * len(jobs)

            def tracked(index: int,
                        job: Callable[[], _T]) -> Callable[[], None]:
                def run() -> None:
                    track = self.timeline.open_track(origin)
                    try:
                        results[index] = job()
                    finally:
                        durations[index] = self.timeline.close_track(track)
                return run

            self.pool.run([tracked(index, job)
                           for index, job in enumerate(jobs)])
            makespan = bounded_makespan(durations, self.pool.max_workers)
            if makespan:
                self.timeline.advance(makespan)
            return results

    def _finish(self, health: QueryHealth, started: float,
                strict: bool) -> None:
        health.elapsed = self.timeline.now() - started
        backoff = 0.0
        for name in sorted(health.outcomes):
            backoff += health.outcomes[name].backoff
        if backoff:
            self.cost.bump("backoff_delay", backoff)
        self.last_health = health
        if health.degraded:
            _annotate(degraded=True,
                      unavailable=",".join(health.sources_failed
                                           + health.sources_skipped),
                      elapsed=health.elapsed)
        else:
            _annotate(degraded=False, elapsed=health.elapsed)
        if strict and health.degraded:
            unavailable = health.sources_failed + health.sources_skipped
            raise MediatorError(
                "strict mediation failed; unavailable sources: "
                + ", ".join(unavailable)
                + f" ({health.summary()})"
            )

    # -- the global-schema query API ----------------------------------------------

    @staticmethod
    def _as_gene(record: ParsedRecord, source: str) -> MediatedGene:
        return MediatedGene(
            accession=record.accession,
            source=source,
            name=record.name,
            organism=record.organism,
            description=record.description,
            sequence_text=str(record.dna),
        )

    def find_genes(
        self,
        organism: str | None = None,
        name_prefix: str | None = None,
        contains_motif: str | None = None,
        min_length: int | None = None,
        predicate: Callable[[MediatedGene], bool] | None = None,
        strict: bool = False,
        *,
        deadline_at: float | None = None,
        exclude: Sequence[str] = (),
    ) -> MediatedAnswer:
        """Answer a selection over the virtual ``genes`` view.

        All filtering happens in the middleware, after extraction — the
        defining property of the architecture.  Sources that stay down
        after retries are reported in ``result.health`` and, under
        ``strict=True``, raise :class:`~repro.errors.MediatorError`.
        ``deadline_at``/``exclude`` are the serving layer's knobs: an
        absolute deadline (arrival-anchored) and sources to bench for
        this query (adaptive concurrency / brownout).
        """
        with _span("mediator.find_genes", sources=len(self.wrappers)):
            return self._find_genes(organism, name_prefix, contains_motif,
                                    min_length, predicate, strict,
                                    deadline_at, exclude)

    def _find_genes(
        self,
        organism: str | None,
        name_prefix: str | None,
        contains_motif: str | None,
        min_length: int | None,
        predicate: Callable[[MediatedGene], bool] | None,
        strict: bool,
        deadline_at: float | None = None,
        exclude: Sequence[str] = (),
    ) -> MediatedAnswer:
        self.cost.bump("queries_answered")
        health, started, deadline_at = self._begin_health(deadline_at)
        answers = MediatedAnswer(health=health)
        excluded = frozenset(exclude)

        def job_for(wrapper: LiveSourceWrapper) -> Callable[[], list]:
            if wrapper.repository.name in excluded:
                return self._excluded_job(wrapper, health, [])
            replica = (wrapper.hedger.replica
                       if wrapper.hedger is not None else None)
            hedge_call = replica.fetch_all if replica is not None else None

            def job() -> list[MediatedGene]:
                try:
                    records = wrapper.resilient(
                        "fetch_all", wrapper.fetch_all, health, deadline_at,
                        hedge_call=hedge_call,
                    )
                except SourceError:
                    return []
                rows = []
                for record in records:
                    if record.dna is None:
                        continue  # protein databanks don't serve genes
                    row = self._as_gene(record, wrapper.repository.name)
                    if self._matches(row, organism, name_prefix,
                                     contains_motif, min_length, predicate):
                        rows.append(row)
                return rows
            return job

        with self._query_scope():
            per_source = self._fan_out([job_for(wrapper)
                                        for wrapper in self.wrappers])
            with _span("mediator.fusion", sources=len(per_source)):
                for rows in per_source:
                    answers.extend(rows)
        self._finish(health, started, strict)
        return answers

    @staticmethod
    def _matches(
        row: MediatedGene,
        organism: str | None,
        name_prefix: str | None,
        contains_motif: str | None,
        min_length: int | None,
        predicate: Callable[[MediatedGene], bool] | None,
    ) -> bool:
        if organism is not None and row.organism != organism:
            return False
        if name_prefix is not None and not (
            row.name or ""
        ).startswith(name_prefix):
            return False
        if min_length is not None and row.length < min_length:
            return False
        if contains_motif is not None:
            from repro.core.types import DnaSequence

            if not motif_contains(DnaSequence(row.sequence_text),
                                  contains_motif):
                return False
        if predicate is not None and not predicate(row):
            return False
        return True

    def _views_job(
        self,
        wrapper: LiveSourceWrapper,
        accessions: Sequence[str],
        health: QueryHealth,
        deadline_at: float | None,
    ) -> Callable[[], dict]:
        """One source's share of a (batch) lookup: accession → view.

        The whole batch runs on the source's worker, looping accessions
        in input order, so the per-source call sequence is identical to
        the sequential mediator's and the source's seeded fault stream
        replays bit for bit at any concurrency.
        """
        replica = (wrapper.hedger.replica
                   if wrapper.hedger is not None else None)

        def job() -> dict[str, MediatedGene]:
            views: dict[str, MediatedGene] = {}
            for accession in accessions:
                hedge_call = (
                    (lambda acc=accession: replica.fetch(acc))
                    if replica is not None else None)
                try:
                    record = wrapper.resilient(
                        "fetch", lambda: wrapper.fetch(accession),
                        health, deadline_at, hedge_call=hedge_call,
                    )
                except SourceError:
                    continue
                if record is not None and record.dna is not None:
                    views[accession] = self._as_gene(
                        record, wrapper.repository.name)
            return views
        return job

    def _fan_out_views(
        self,
        accessions: Sequence[str],
        health: QueryHealth,
        deadline_at: float | None,
        exclude: frozenset = frozenset(),
    ) -> dict[str, list[MediatedGene]]:
        """Per-accession views fused in wrapper order, fanned per source."""
        per_wrapper = self._fan_out(
            [self._excluded_job(wrapper, health, {})
             if wrapper.repository.name in exclude
             else self._views_job(wrapper, accessions, health, deadline_at)
             for wrapper in self.wrappers]
        )
        with _span("mediator.fusion", accessions=len(accessions)):
            fused: dict[str, list[MediatedGene]] = {
                accession: [] for accession in accessions
            }
            for views in per_wrapper:  # pool order == wrapper order
                for accession, view in views.items():
                    fused[accession].append(view)
            return fused

    def gene(self, accession: str, strict: bool = False, *,
             deadline_at: float | None = None,
             exclude: Sequence[str] = ()) -> MediatedAnswer:
        """All source views of one accession (unreconciled, C8)."""
        with _span("mediator.gene", accession=accession):
            self.cost.bump("queries_answered")
            health, started, deadline_at = self._begin_health(deadline_at)
            with self._query_scope():
                fused = self._fan_out_views([accession], health, deadline_at,
                                            frozenset(exclude))
            self._finish(health, started, strict)
            return MediatedAnswer(fused[accession], health=health)

    def genes(
        self, accessions: Sequence[str], strict: bool = False, *,
        deadline_at: float | None = None,
        exclude: Sequence[str] = (),
    ) -> MediatedBatch:
        """Batch lookup: many accessions, ONE query.

        Inside the shared query scope a non-queryable source ships its
        dump once for the whole batch, not once per accession — the
        per-query memo is what keeps :class:`MediationCost` honest here.
        """
        with _span("mediator.genes", accessions=len(accessions)):
            self.cost.bump("queries_answered")
            health, started, deadline_at = self._begin_health(deadline_at)
            with self._query_scope():
                batch = MediatedBatch(
                    self._fan_out_views(list(dict.fromkeys(accessions)),
                                        health, deadline_at,
                                        frozenset(exclude)),
                    health=health,
                )
            self._finish(health, started, strict)
            return batch

    def count_genes(self, **filters) -> int:
        return len(self.find_genes(**filters))

    def disagreements(self, accession: str) -> dict[str, set[str]]:
        """Field → distinct values across sources (what C8 looks like)."""
        views = self.gene(accession)
        result: dict[str, set[str]] = {}
        for field_name in ("name", "organism", "description",
                           "sequence_text"):
            values = {getattr(view, field_name) or "" for view in views}
            if len(values) > 1:
                result[field_name] = values
        return result
