"""The query-driven integration baseline (Figure 1), fault-tolerant.

"Middleware systems, in which the bulk of the query and result
processing takes place in a different location from where the data is
stored" — wrappers extract data from the sources *at query time*, ship
it to the integration system, and the mediator processes it there.

This is the architecture the paper argues against for close-control
workloads, implemented honestly so the Figure 1 benchmark can measure
the trade-off it embodies:

- **freshness**: every query sees the current source state (staleness 0);
- **cost**: every query pays wrapper extraction + shipping + middleware
  processing, multiplied by the number of sources;
- **no reconciliation**: conflicting source answers are returned side by
  side (Table 1, row C8, for the query-driven systems).

Because the underlying repositories are autonomous and unreliable
("simply collections of flat files" that change, disappear, and answer
inconsistently), the mediator treats partial source failure as the
normal case:

- every source call runs under a :class:`RetryPolicy` (exponential
  backoff, deterministic jitter, per-call attempt cap, optional
  per-query deadline budget on the shared virtual clock);
- each source sits behind a :class:`CircuitBreaker`
  (closed → open → half-open) so a dead source stops being hammered;
- queries return **partial answers** plus a :class:`QueryHealth`
  provenance report naming which sources answered, retried, were
  skipped (breaker open), or failed — ``strict=True`` turns a degraded
  answer into a :class:`~repro.errors.MediatorError` instead.

Per-request latency is modelled virtually (a counter, not a sleep), so
benchmarks can report both measured compute time and modelled network
round-trips + backoff delay.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core.ops import contains as motif_contains
from repro.errors import MediatorError, SourceError, WrapperError
from repro.etl.wrappers import ParsedRecord, Wrapper, wrapper_for
from repro.sources.base import Repository
from repro.sources.faults import VirtualClock

_T = TypeVar("_T")

#: Per-source outcome states in a :class:`QueryHealth` report.
OK = "ok"                 # answered on the first attempt
RETRIED = "retried"       # answered, but only after at least one retry
SKIPPED = "skipped"       # not asked: its circuit breaker was open
FAILED = "failed"         # asked, retried, and still failed

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class MediationCost:
    """Work accounting across one mediator's lifetime."""

    source_requests: int = 0
    bytes_shipped: int = 0
    records_wrapped: int = 0
    queries_answered: int = 0
    retries: int = 0
    source_failures: int = 0
    breaker_rejections: int = 0
    backoff_delay: float = 0.0

    def reset(self) -> "MediationCost":
        snapshot = MediationCost(**vars(self))
        for spec in fields(self):
            setattr(self, spec.name, spec.default)
        return snapshot


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try a flaky source before giving up on it.

    Delays are virtual-clock units, jitter is deterministic (seeded from
    source, operation, and attempt number), and ``deadline`` caps the
    *whole query's* backoff budget — once spent, remaining sources fail
    fast instead of stretching the answer forever.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise MediatorError("a retry policy needs at least one attempt")

    def delay_before(self, attempt: int, source: str = "",
                     operation: str = "") -> float:
        """Backoff before *attempt* (attempt 2 waits ``base_delay``…)."""
        exponent = max(0, attempt - 2)
        raw = min(self.max_delay, self.base_delay * self.multiplier ** exponent)
        if not self.jitter:
            return raw
        rng = random.Random((source, operation, attempt).__repr__())
        return raw * (1.0 - self.jitter * rng.random())

    @classmethod
    def no_retries(cls) -> "RetryPolicy":
        """The ablation baseline: one attempt, fail immediately."""
        return cls(max_attempts=1)


@dataclass(frozen=True)
class BreakerPolicy:
    """When a source's circuit opens and how long it stays open."""

    failure_threshold: int = 3
    reset_timeout: float = 30.0


class CircuitBreaker:
    """Per-source closed → open → half-open breaker on the virtual clock.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, calls are rejected without touching the source.  After
    ``reset_timeout`` virtual seconds one probe call is let through
    (half-open): success recloses the circuit, failure reopens it.
    """

    def __init__(self, policy: BreakerPolicy, timeline: VirtualClock) -> None:
        self.policy = policy
        self.timeline = timeline
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.times_opened = 0

    def allow(self) -> bool:
        if self.state == OPEN:
            if (self.timeline.now() - self.opened_at
                    >= self.policy.reset_timeout):
                self.state = HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (self.state == HALF_OPEN
                or self.consecutive_failures >= self.policy.failure_threshold):
            if self.state != OPEN:
                self.times_opened += 1
            self.state = OPEN
            self.opened_at = self.timeline.now()

    def retry_at(self) -> float:
        """Virtual instant at which the next half-open probe is allowed."""
        return (self.opened_at or 0.0) + self.policy.reset_timeout

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.state}, "
                f"failures={self.consecutive_failures})")


@dataclass
class SourceOutcome:
    """How one source behaved during one mediator query."""

    source: str
    status: str = OK
    attempts: int = 0
    retries: int = 0
    error: str | None = None


@dataclass
class QueryHealth:
    """Provenance of a (possibly degraded) mediated answer.

    Failure states are sticky: a source that failed terminally for any
    part of a query stays ``failed`` even if later calls in the same
    query succeeded, so ``complete`` never overstates the answer.
    """

    outcomes: dict[str, SourceOutcome] = field(default_factory=dict)
    deadline_hit: bool = False
    elapsed: float = 0.0

    def outcome(self, source: str) -> SourceOutcome:
        if source not in self.outcomes:
            self.outcomes[source] = SourceOutcome(source=source)
        return self.outcomes[source]

    def _with_status(self, *statuses: str) -> tuple[str, ...]:
        return tuple(sorted(name for name, outcome in self.outcomes.items()
                            if outcome.status in statuses))

    @property
    def sources_ok(self) -> tuple[str, ...]:
        return self._with_status(OK, RETRIED)

    @property
    def sources_retried(self) -> tuple[str, ...]:
        return self._with_status(RETRIED)

    @property
    def sources_skipped(self) -> tuple[str, ...]:
        return self._with_status(SKIPPED)

    @property
    def sources_failed(self) -> tuple[str, ...]:
        return self._with_status(FAILED)

    @property
    def complete(self) -> bool:
        """True when every source contributed to the answer."""
        return not self.sources_failed and not self.sources_skipped

    @property
    def degraded(self) -> bool:
        return not self.complete

    @property
    def total_retries(self) -> int:
        return sum(outcome.retries for outcome in self.outcomes.values())

    def summary(self) -> str:
        pieces = [f"ok={','.join(self.sources_ok) or '-'}"]
        if self.sources_skipped:
            pieces.append(f"skipped={','.join(self.sources_skipped)}")
        if self.sources_failed:
            pieces.append(f"failed={','.join(self.sources_failed)}")
        if self.total_retries:
            pieces.append(f"retries={self.total_retries}")
        if self.deadline_hit:
            pieces.append("deadline hit")
        pieces.append(f"t+{self.elapsed:.1f}")
        return " ".join(pieces)


class MediatedAnswer(list):
    """A list of answers that also carries its :class:`QueryHealth`."""

    health: QueryHealth

    def __init__(self, rows=(), health: QueryHealth | None = None) -> None:
        super().__init__(rows)
        self.health = health or QueryHealth()


class MediatedBatch(dict):
    """A batch-lookup result that also carries its :class:`QueryHealth`."""

    health: QueryHealth

    def __init__(self, items=(), health: QueryHealth | None = None) -> None:
        super().__init__(items)
        self.health = health or QueryHealth()


@dataclass
class MediatedGene:
    """A gene answer in the mediator's global schema (one per source!).

    The mediator does not reconcile: the same accession seen in three
    sources yields three rows, possibly disagreeing.
    """

    accession: str
    source: str
    name: str | None
    organism: str | None
    description: str | None
    sequence_text: str

    @property
    def length(self) -> int:
        """Sequence length, always in step with ``sequence_text``."""
        return len(self.sequence_text)


class LiveSourceWrapper:
    """Query-time access to one repository through its native interface.

    Queryable sources are asked record by record; non-queryable sources
    can only ship their full dump per request — exactly the asymmetry
    that makes query-driven integration expensive over flat-file
    archives.  Every outward call runs through :meth:`resilient`, which
    owns the retry loop and the circuit breaker.
    """

    def __init__(
        self,
        repository: Repository,
        cost: MediationCost,
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        timeline: VirtualClock | None = None,
    ) -> None:
        self.repository = repository
        self.wrapper: Wrapper = wrapper_for(repository.name)
        self.timeline = timeline if timeline is not None else VirtualClock()
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = CircuitBreaker(breaker_policy or BreakerPolicy(),
                                      self.timeline)
        self._cost = cost
        self._memo: list[ParsedRecord] | None = None
        self._memo_active = False

    def begin_query(self) -> None:
        """Open a per-query memo scope: repeated extractions within one
        mediator query reuse the first dump, so a non-queryable source
        is shipped and parsed at most once per query.  Freshness is
        untouched — the memo dies with the query."""
        self._memo_active = True
        self._memo = None

    def end_query(self) -> None:
        self._memo_active = False
        self._memo = None

    def resilient(
        self,
        operation: str,
        call: Callable[[], _T],
        health: QueryHealth,
        deadline_at: float | None = None,
    ) -> _T:
        """Run *call* under the retry policy and the circuit breaker.

        Raises :class:`~repro.errors.SourceError` once the source is
        given up on (breaker open, attempts exhausted, or deadline
        budget spent); the health report is updated either way.
        """
        name = self.repository.name
        outcome = health.outcome(name)
        if not self.breaker.allow():
            outcome.status = SKIPPED
            outcome.error = (f"circuit open until "
                             f"t={self.breaker.retry_at():.1f}")
            self._cost.breaker_rejections += 1
            raise SourceError(f"{name} skipped: circuit breaker open",
                              source=name, operation=operation)
        attempt = 0
        while True:
            attempt += 1
            outcome.attempts += 1
            try:
                result = call()
            except (SourceError, WrapperError) as error:
                self.breaker.record_failure()
                self._cost.source_failures += 1
                outcome.error = str(error)
                if attempt >= self.retry_policy.max_attempts:
                    outcome.status = FAILED
                    raise SourceError(
                        f"{name} failed {operation} after "
                        f"{attempt} attempt(s): {error}",
                        source=name, operation=operation, attempt=attempt,
                    ) from error
                delay = self.retry_policy.delay_before(attempt + 1, name,
                                                       operation)
                if (deadline_at is not None
                        and self.timeline.now() + delay > deadline_at):
                    outcome.status = FAILED
                    outcome.error = (f"deadline budget exhausted after "
                                     f"attempt {attempt}: {error}")
                    health.deadline_hit = True
                    raise SourceError(
                        f"{name}: {outcome.error}",
                        source=name, operation=operation, attempt=attempt,
                    ) from error
                self.timeline.advance(delay)
                self._cost.retries += 1
                self._cost.backoff_delay += delay
                outcome.retries += 1
            else:
                self.breaker.record_success()
                if outcome.status not in (FAILED, SKIPPED):
                    outcome.status = RETRIED if outcome.retries else OK
                return result

    def fetch_all(self) -> list[ParsedRecord]:
        """Extract every record, at query time."""
        if self._memo is not None:
            return self._memo
        records = self._extract_all()
        if self._memo_active:
            self._memo = records
        return records

    def _extract_all(self) -> list[ParsedRecord]:
        if self.repository.capabilities.queryable:
            records = []
            for accession in self.repository.query_accessions():
                self._cost.source_requests += 1
                text = self.repository.query(accession)
                if text is None:
                    continue
                self._cost.bytes_shipped += len(text)
                records.append(self.wrapper.parse_record(text))
            self._cost.records_wrapped += len(records)
            return records
        self._cost.source_requests += 1
        dump = self.repository.snapshot()
        self._cost.bytes_shipped += len(dump)
        records = self.wrapper.parse_snapshot(dump)
        self._cost.records_wrapped += len(records)
        return records

    def fetch(self, accession: str) -> ParsedRecord | None:
        """Extract one record (cheap only for queryable sources)."""
        if self.repository.capabilities.queryable:
            self._cost.source_requests += 1
            text = self.repository.query(accession)
            if text is None:
                return None
            self._cost.bytes_shipped += len(text)
            self._cost.records_wrapped += 1
            return self.wrapper.parse_record(text)
        for record in self.fetch_all():
            if record.accession == accession:
                return record
        return None


class Mediator:
    """The integration system of Figure 1: decompose, ship, fuse.

    Non-strict queries implement degraded-answer semantics: every row
    derivable from the sources that answered is returned, and the
    accompanying :class:`QueryHealth` (``result.health``, also kept as
    ``mediator.last_health``) names the sources that did not.
    """

    def __init__(
        self,
        sources: Sequence[Repository],
        retry_policy: RetryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        timeline: VirtualClock | None = None,
    ) -> None:
        if not sources:
            raise MediatorError("a mediator needs at least one source")
        names = [repository.name for repository in sources]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise MediatorError(
                f"duplicate source names {duplicates}: each repository "
                f"must be mediated at most once or answers double-count"
            )
        if timeline is None:
            timeline = next(
                (candidate for candidate in
                 (getattr(repository, "timeline", None)
                  for repository in sources)
                 if isinstance(candidate, VirtualClock)),
                None,
            ) or VirtualClock()
        self.timeline = timeline
        self.retry_policy = retry_policy or RetryPolicy()
        self.cost = MediationCost()
        self.wrappers = [
            LiveSourceWrapper(repository, self.cost,
                              retry_policy=self.retry_policy,
                              breaker_policy=breaker_policy,
                              timeline=timeline)
            for repository in sources
        ]
        self.last_health = QueryHealth()

    @property
    def source_names(self) -> tuple[str, ...]:
        return tuple(w.repository.name for w in self.wrappers)

    def breaker_for(self, source: str) -> CircuitBreaker:
        for wrapper in self.wrappers:
            if wrapper.repository.name == source:
                return wrapper.breaker
        raise MediatorError(f"no mediated source named {source!r}")

    @contextmanager
    def _query_scope(self) -> Iterator[None]:
        """One mediator query = one extraction per source, at most."""
        for wrapper in self.wrappers:
            wrapper.begin_query()
        try:
            yield
        finally:
            for wrapper in self.wrappers:
                wrapper.end_query()

    def _begin_health(self) -> tuple[QueryHealth, float, float | None]:
        health = QueryHealth()
        started = self.timeline.now()
        deadline_at = (started + self.retry_policy.deadline
                       if self.retry_policy.deadline is not None else None)
        return health, started, deadline_at

    def _finish(self, health: QueryHealth, started: float,
                strict: bool) -> None:
        health.elapsed = self.timeline.now() - started
        self.last_health = health
        if strict and health.degraded:
            unavailable = health.sources_failed + health.sources_skipped
            raise MediatorError(
                "strict mediation failed; unavailable sources: "
                + ", ".join(unavailable)
                + f" ({health.summary()})"
            )

    # -- the global-schema query API ----------------------------------------------

    @staticmethod
    def _as_gene(record: ParsedRecord, source: str) -> MediatedGene:
        return MediatedGene(
            accession=record.accession,
            source=source,
            name=record.name,
            organism=record.organism,
            description=record.description,
            sequence_text=str(record.dna),
        )

    def find_genes(
        self,
        organism: str | None = None,
        name_prefix: str | None = None,
        contains_motif: str | None = None,
        min_length: int | None = None,
        predicate: Callable[[MediatedGene], bool] | None = None,
        strict: bool = False,
    ) -> MediatedAnswer:
        """Answer a selection over the virtual ``genes`` view.

        All filtering happens in the middleware, after extraction — the
        defining property of the architecture.  Sources that stay down
        after retries are reported in ``result.health`` and, under
        ``strict=True``, raise :class:`~repro.errors.MediatorError`.
        """
        self.cost.queries_answered += 1
        health, started, deadline_at = self._begin_health()
        answers = MediatedAnswer(health=health)
        with self._query_scope():
            for wrapper in self.wrappers:
                try:
                    records = wrapper.resilient(
                        "fetch_all", wrapper.fetch_all, health, deadline_at
                    )
                except SourceError:
                    continue
                for record in records:
                    if record.dna is None:
                        continue  # protein databanks don't serve genes
                    row = self._as_gene(record, wrapper.repository.name)
                    if self._matches(row, organism, name_prefix,
                                     contains_motif, min_length, predicate):
                        answers.append(row)
        self._finish(health, started, strict)
        return answers

    @staticmethod
    def _matches(
        row: MediatedGene,
        organism: str | None,
        name_prefix: str | None,
        contains_motif: str | None,
        min_length: int | None,
        predicate: Callable[[MediatedGene], bool] | None,
    ) -> bool:
        if organism is not None and row.organism != organism:
            return False
        if name_prefix is not None and not (
            row.name or ""
        ).startswith(name_prefix):
            return False
        if min_length is not None and row.length < min_length:
            return False
        if contains_motif is not None:
            from repro.core.types import DnaSequence

            if not motif_contains(DnaSequence(row.sequence_text),
                                  contains_motif):
                return False
        if predicate is not None and not predicate(row):
            return False
        return True

    def _gene_views(
        self,
        accession: str,
        health: QueryHealth,
        deadline_at: float | None,
    ) -> list[MediatedGene]:
        answers = []
        for wrapper in self.wrappers:
            try:
                record = wrapper.resilient(
                    "fetch", lambda w=wrapper: w.fetch(accession),
                    health, deadline_at,
                )
            except SourceError:
                continue
            if record is not None and record.dna is not None:
                answers.append(self._as_gene(record,
                                             wrapper.repository.name))
        return answers

    def gene(self, accession: str, strict: bool = False) -> MediatedAnswer:
        """All source views of one accession (unreconciled, C8)."""
        self.cost.queries_answered += 1
        health, started, deadline_at = self._begin_health()
        with self._query_scope():
            views = self._gene_views(accession, health, deadline_at)
        self._finish(health, started, strict)
        return MediatedAnswer(views, health=health)

    def genes(
        self, accessions: Sequence[str], strict: bool = False
    ) -> MediatedBatch:
        """Batch lookup: many accessions, ONE query.

        Inside the shared query scope a non-queryable source ships its
        dump once for the whole batch, not once per accession — the
        per-query memo is what keeps :class:`MediationCost` honest here.
        """
        self.cost.queries_answered += 1
        health, started, deadline_at = self._begin_health()
        with self._query_scope():
            batch = MediatedBatch(
                ((accession,
                  self._gene_views(accession, health, deadline_at))
                 for accession in accessions),
                health=health,
            )
        self._finish(health, started, strict)
        return batch

    def count_genes(self, **filters) -> int:
        return len(self.find_genes(**filters))

    def disagreements(self, accession: str) -> dict[str, set[str]]:
        """Field → distinct values across sources (what C8 looks like)."""
        views = self.gene(accession)
        result: dict[str, set[str]] = {}
        for field_name in ("name", "organism", "description",
                           "sequence_text"):
            values = {getattr(view, field_name) or "" for view in views}
            if len(values) > 1:
                result[field_name] = values
        return result
