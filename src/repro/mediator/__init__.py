"""Query-driven integration baseline (the architecture of Figure 1)."""

from repro.mediator.mediator import (
    BreakerPolicy,
    CircuitBreaker,
    LiveSourceWrapper,
    MediatedAnswer,
    MediatedBatch,
    MediatedGene,
    MediationCost,
    Mediator,
    QueryHealth,
    RetryPolicy,
    SourceOutcome,
)
from repro.mediator.pool import (
    SequentialPool,
    ThreadedPool,
    WorkerPool,
    bounded_makespan,
)
from repro.mediator.cache import CachedMediator, CacheStats, QueryCache

__all__ = [
    "Mediator",
    "MediatedGene",
    "MediatedAnswer",
    "MediatedBatch",
    "MediationCost",
    "LiveSourceWrapper",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "QueryHealth",
    "SourceOutcome",
    "WorkerPool",
    "SequentialPool",
    "ThreadedPool",
    "bounded_makespan",
    "QueryCache",
    "CacheStats",
    "CachedMediator",
]
