"""Query-driven integration baseline (the architecture of Figure 1)."""

from repro.mediator.mediator import (
    LiveSourceWrapper,
    MediatedGene,
    MediationCost,
    Mediator,
)

__all__ = [
    "Mediator",
    "MediatedGene",
    "MediationCost",
    "LiveSourceWrapper",
]
