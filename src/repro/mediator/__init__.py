"""Query-driven integration baseline (the architecture of Figure 1)."""

from repro.mediator.mediator import (
    BreakerPolicy,
    CircuitBreaker,
    LiveSourceWrapper,
    MediatedAnswer,
    MediatedBatch,
    MediatedGene,
    MediationCost,
    Mediator,
    QueryHealth,
    RetryPolicy,
    SourceOutcome,
)

__all__ = [
    "Mediator",
    "MediatedGene",
    "MediatedAnswer",
    "MediatedBatch",
    "MediationCost",
    "LiveSourceWrapper",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "QueryHealth",
    "SourceOutcome",
]
