"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``demo``    — the quickstart pipeline (algebra + extended SQL) on
  synthetic data, printed to stdout;
- ``matrix``  — reproduce Table 1 (live capability probes);
- ``shell``   — an interactive BiQL session over a demo warehouse;
- ``quality`` — build a noisy multi-source warehouse and print the
  measured per-source quality report (B10);
- ``recover`` — rebuild a database from ``image + WAL`` after a crash
  (``--image``/``--wal``), or run the fault-injection crash matrix
  (``--self-test``);
- ``chaos``   — run the federation fault-injection scenario matrix
  (``--self-test``, optionally ``--only NAME``): flaky sources,
  outages, corrupt dumps, channel loss, circuit-breaker recovery,
  deadline budgets, replica failover, bit-rot repair;
- ``scrub``   — verify the checksums of an ``image + WAL`` pair on
  disk without replaying anything (``--image``/``--wal``), localizing
  any bit rot to the record and byte offset, or run the seeded
  corruption matrix (``--self-test``);
- ``trace``   — run one BiQL query plus a mediated fan-out against a
  4-source faulty federation with tracing on, render the span tree
  (per-source attempts, retries, breaker state, cache hits) and the
  per-layer time breakdown, optionally exporting JSONL (``--jsonl``);
- ``stats``   — run a small federated workload with the metrics
  registry on and print the Prometheus-style text dump;
- ``overload`` — serve the calibrated A11 overload workload twice
  (with and without the serving-layer protections) and print the
  goodput / latency / shed comparison side by side;
- ``shard``   — serve the same saturating workload at several shard
  counts (scatter-gather federation), print the per-count goodput
  table, then demonstrate WAL-shipped replica failover;
- ``macro``   — simulate one day-in-the-life of multi-tenant traffic
  through the full stack (BiQL sessions, sharded serving, answer
  caches, scheduled outages, ETL churn, WAL-shipped replica) and
  print the end-to-end goodput / latency / staleness report
  (``--quick`` for the scaled-down CI day);
- ``partition`` — cut a leased primary off behind a one-way network
  partition and walk the whole failover story on the virtual clock:
  the zombie keeps acknowledging under its live lease, the lease
  expires and writes are refused loudly, a follower is promoted under
  a bumped epoch, the healed zombie's stale-epoch shipments are
  fenced, the zombie demotes and names every acknowledged-but-lost
  statement, and the write-history auditor certifies the run
  (``--lease``/``--duration``/``--seed`` shape the schedule).
"""

from __future__ import annotations

import argparse
import sys


def _run_demo() -> int:
    from repro import Database, genomics_algebra, install_genomics
    from repro.core.types import DnaSequence, Gene, Interval

    gene = Gene(
        name="demo",
        sequence=DnaSequence("ATGGCCATTGTAATGGGCCGCTGAAAGGGTGCCCGATAG"),
        exons=(Interval(0, 12), Interval(18, 39)),
    )
    algebra = genomics_algebra()
    term = algebra.parse("translate(splice(transcribe(g)))",
                         variables={"g": "gene"})
    protein = algebra.evaluate(term, {"g": gene})
    print(f"term     {term}")
    print(f"protein  {protein.sequence}")

    database = Database()
    install_genomics(database)
    database.execute(
        "CREATE TABLE dna_fragments (id INTEGER PRIMARY KEY, fragment DNA)"
    )
    database.execute(
        "INSERT INTO dna_fragments VALUES (1, dna('ATGATTGCCATAGGG'))"
    )
    result = database.query(
        "SELECT id FROM dna_fragments WHERE contains(fragment, 'ATTGCCATA')"
    )
    print(f"SQL      SELECT id FROM dna_fragments "
          f"WHERE contains(fragment, 'ATTGCCATA')  ->  {result.rows}")
    return 0


def _run_matrix() -> int:
    from repro.evaluation import CapabilityMatrix

    matrix = CapabilityMatrix.build()
    print(matrix.to_text())
    ok = matrix.genalg_matches_claim() and matrix.literature_matches_paper()
    print(f"\nTable 1 reproduced: {ok}")
    return 0 if ok else 1


def _run_shell() -> int:
    from repro.lang.biql.repl import BiqlRepl, demo_session

    print("building a demo warehouse (3 sources)...")
    BiqlRepl(demo_session()).run()
    return 0


def _run_quality() -> int:
    from repro.sources import (
        AceRepository,
        EmblRepository,
        GenBankRepository,
        Universe,
    )
    from repro.warehouse import (
        UnifyingDatabase,
        accuracy_against_truth,
        source_quality_report,
    )

    universe = Universe(seed=7, size=80)
    sources = [
        GenBankRepository(universe, error_rate=0.4),
        EmblRepository(universe, error_rate=0.3),
        AceRepository(universe, error_rate=0.3),
    ]
    warehouse = UnifyingDatabase(sources, with_indexes=False)
    warehouse.initial_load()
    print("per-source agreement with the reconciled consensus:")
    for entry in source_quality_report(warehouse):
        print(f"  {entry}")
    report = accuracy_against_truth(warehouse, universe)
    print(f"\nexact-sequence accuracy vs ground truth:")
    for source, accuracy in report.source_accuracy.items():
        print(f"  {source:<14} {accuracy:.0%}")
    print(f"  {'warehouse':<14} {report.warehouse_accuracy:.0%}  "
          f"(reconciled, {report.genes_scored} genes)")
    return 0


def _run_recover(arguments) -> int:
    from repro.db.recovery import recover, self_test

    if arguments.self_test:
        return 0 if self_test(verbose=True) else 1
    if arguments.wal is None:
        print("recover: --wal is required (or use --self-test)",
              file=sys.stderr)
        return 2
    database = None
    if arguments.genomics:
        from repro.adapter import install_genomics
        from repro.db import Database

        database = Database()
        install_genomics(database)
    recovered, report = recover(arguments.image or "", arguments.wal,
                                database=database)
    print(f"recovered: {report.summary()}")
    for name in recovered.catalog.table_names:
        count = recovered.query(
            f"SELECT count(*) FROM {name}"
        ).scalar()
        print(f"  {name:<20} {count} rows")
    if arguments.output:
        from repro.db.storage import save_database

        save_database(recovered, arguments.output)
        print(f"checkpointed recovered state to {arguments.output}")
    return 0


def _run_chaos(arguments) -> int:
    from repro.chaos import self_test

    if arguments.concurrency is not None and arguments.concurrency < 1:
        print("chaos: --concurrency must be >= 1", file=sys.stderr)
        return 2
    if arguments.self_test:
        try:
            passed = self_test(verbose=True,
                               concurrency=arguments.concurrency,
                               only=arguments.only)
        except ValueError as error:
            print(f"chaos: {error}", file=sys.stderr)
            return 2
        return 0 if passed else 1
    print("chaos: --self-test is the only mode (runs the scenario matrix)",
          file=sys.stderr)
    return 2


def _run_scrub(arguments) -> int:
    from repro.db.scrub import scrub, self_test

    if arguments.self_test:
        return 0 if self_test(verbose=True) else 1
    if arguments.image is None and arguments.wal is None:
        print("scrub: give --image and/or --wal (or use --self-test)",
              file=sys.stderr)
        return 2
    report = scrub(arguments.image, arguments.wal)
    print(f"scrub: {report.summary()}")
    for verdict in report.verdicts:
        print(verdict.line())
    return 0 if report.ok else 1


def _build_observed_federation(seed: int, size: int):
    """Four faultable sources, a warehouse over them, a cached mediator.

    The shared fixture behind ``trace`` and ``stats``: GenBank, EMBL,
    AceDB and SwissProt behind :class:`FaultyRepository` proxies on one
    ``VirtualClock``, loaded into a :class:`UnifyingDatabase` *before*
    any faults are scheduled, plus a :class:`CachedMediator` with tight
    retry/breaker policies so injected faults play out within a few
    queries.
    """
    from repro.mediator import BreakerPolicy, CachedMediator, RetryPolicy
    from repro.sources import (
        AceRepository,
        EmblRepository,
        FaultyRepository,
        GenBankRepository,
        SwissProtRepository,
        Universe,
        VirtualClock,
    )
    from repro.warehouse import UnifyingDatabase

    universe = Universe(seed=seed, size=size)
    timeline = VirtualClock()
    sources = [
        FaultyRepository(GenBankRepository(universe), timeline, seed=31),
        FaultyRepository(EmblRepository(universe), timeline, seed=32),
        FaultyRepository(AceRepository(universe), timeline, seed=33),
        FaultyRepository(SwissProtRepository(universe), timeline, seed=34),
    ]
    warehouse = UnifyingDatabase(sources, with_indexes=False)
    warehouse.initial_load()
    mediator = CachedMediator(
        sources,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=5.0,
                                 multiplier=2.0, jitter=0.0),
        breaker_policy=BreakerPolicy(failure_threshold=3,
                                     reset_timeout=30.0),
        timeline=timeline,
    )
    return timeline, sources, warehouse, mediator


def _run_trace(arguments) -> int:
    from repro import obs
    from repro.lang.biql import BiqlSession

    timeline, sources, warehouse, mediator = _build_observed_federation(
        arguments.seed, arguments.size)
    genbank, swissprot = sources[0], sources[3]
    # Mild chaos, scheduled after the initial load so the warehouse is
    # whole: GenBank's two failures are absorbed by retries, SwissProt's
    # three exhaust them and open its circuit breaker.  GenBank is a
    # snapshot-only source; SwissProt is queryable.
    genbank.fail_next(2, "snapshot")
    swissprot.fail_next(3, "query_accessions")
    sink = obs.JsonlTraceSink(arguments.jsonl) if arguments.jsonl else None
    tracer = obs.enable(sample_rate=1.0, clock=timeline, sink=sink)
    try:
        session = BiqlSession(warehouse)
        with obs.span("federated.query", query=arguments.query):
            warehouse_rows = session.run(arguments.query)
            retried = mediator.find_genes()   # GenBank retried, SwissProt
            #                                   fails; breaker opens
            skipped = mediator.find_genes()   # SwissProt skipped: breaker
            #                                   open, degraded answer
            timeline.advance(60.0)            # reset timeout elapses
            recovered = mediator.find_genes()  # half-open probe recloses;
            #                                    complete answer, cached
            cached = mediator.find_genes()     # served from cache
    finally:
        obs.disable()
    trace_id, spans = next(reversed(tracer.traces.items()))
    print(f"trace {trace_id} — {len(spans)} spans, one federated query "
          f"over {len(sources)} faulty sources\n")
    print(obs.render_trace([record.to_dict() for record in spans]))
    print(f"\nwarehouse (BiQL): {len(warehouse_rows.rows)} rows")
    for label, answers in (("retry+failure ", retried),
                           ("breaker-open  ", skipped),
                           ("recovered     ", recovered),
                           ("cache-hit     ", cached)):
        health = answers.health
        print(f"mediated {label} {health.summary():<60} "
              f"trace={health.trace_id}  from_cache={answers.from_cache}")
    if sink is not None:
        print(f"\n{sink.exported} spans exported to {arguments.jsonl}")
    return 0


def _run_stats(arguments) -> int:
    from repro import obs
    from repro.workload import columnar_analytics

    registry = obs.enable_metrics()
    try:
        __, sources, warehouse, mediator = _build_observed_federation(
            arguments.seed, arguments.size)
        sources[0].fail_next(2)
        mediator.find_genes()
        mediator.find_genes()                 # second pass hits the cache
        for source in sources:
            source.advance(2)
        mediator.sync()
        warehouse.refresh()
        # Analytical pass over a budgeted column-store copy of the
        # warehouse, so columnar_* / executor_* counters show up too.
        columnar_analytics(warehouse.db)
        print(registry.to_prometheus_text())
    finally:
        obs.disable_metrics()
    return 0


def _run_overload(arguments) -> int:
    from repro.serving import (
        ServingPolicy,
        overload_federation,
        summarize,
        synthetic_workload,
    )

    deadline = 25.0

    def serve(protected: bool):
        policy = (None if protected
                  else ServingPolicy.unprotected(capacity=4,
                                                 deadline=deadline))
        server, mediator, __, accessions = overload_federation(policy=policy)
        requests = synthetic_workload(
            accessions, count=arguments.count,
            load_factor=arguments.load, capacity=4,
            mean_service=3.0, seed=arguments.seed)
        stats = summarize(server.serve(requests), budget=deadline)
        return stats, server, mediator

    print(f"overload workload: {arguments.count} requests at "
          f"{arguments.load}x capacity, deadline {deadline} "
          f"(seed {arguments.seed})\n")
    rows = []
    for label, protected in (("protected", True), ("unprotected", False)):
        stats, server, mediator = serve(protected)
        shed = ", ".join(f"{reason}={count}" for reason, count
                         in sorted(stats["shed_by_reason"].items())) or "-"
        rows.append((label, stats["good"] / stats["makespan"],
                     stats["good"], stats["p50"], stats["p99"], shed))
        if protected:
            hedge_line = (f"  hedges: {mediator.cost.hedges_issued} issued, "
                          f"{mediator.cost.hedges_won} won; "
                          f"retry denials: "
                          f"{mediator.cost.retry_budget_denials}; "
                          f"brownout transitions: "
                          f"{len(server.brownout.transitions)}")
    header = (f"  {'':<12} {'good/s':>7} {'good':>5} {'p50':>6} "
              f"{'p99':>6}  shed")
    print(header)
    for label, goodput, good, p50, p99, shed in rows:
        print(f"  {label:<12} {goodput:>7.2f} {good:>5} {p50:>6.1f} "
              f"{p99:>6.1f}  {shed}")
    print(hedge_line)
    protected_goodput, unprotected_goodput = rows[0][1], rows[1][1]
    print(f"\nprotection keeps {protected_goodput / unprotected_goodput:.2f}x "
          f"the unprotected goodput at {arguments.load}x load")
    return 0


def _run_macro(arguments) -> int:
    from repro.serving.policy import PRIORITY_NAMES
    from repro.workload import MacroSpec, run_macro

    spec = (MacroSpec.quick(arguments.seed) if arguments.quick
            else MacroSpec.full(arguments.seed))
    print(f"day-in-the-life macro workload ({spec.name} mode, "
          f"seed {spec.seed}): {spec.shards} shards x "
          f"{spec.capacity} lanes, {spec.users} tenants, "
          f"{spec.total_epochs} epochs of {spec.epoch_length:.0f} "
          f"virtual s, {len(spec.outages)} scheduled outages\n")
    payload = run_macro(spec).to_payload()
    headline = payload["headline"]
    workload = payload["workload"]
    print(f"  offered {workload['requests']} requests from "
          f"{workload['active_tenants']} active tenants, "
          f"{workload['biql_statements']} BiQL statements "
          f"({payload['biql']['refused']} refused under load)\n")
    print(f"  {'phase':<10} {'offered':>7} {'good':>6} {'goodput':>8} "
          f"{'shed':>6} {'p99':>8}")
    for name, stats in payload["phases"].items():
        print(f"  {name:<10} {stats['offered']:>7} {stats['good']:>6} "
              f"{stats['goodput_ratio']:>8.3f} {stats['shed']:>6} "
              f"{stats['p99']:>8.2f}")
    print(f"\n  {'priority':<13} {'offered':>7} {'goodput':>8} "
          f"{'shed':>6}")
    for name in PRIORITY_NAMES.values():
        stats = payload["priorities"].get(name)
        if stats:
            print(f"  {name:<13} {stats['offered']:>7} "
                  f"{stats['goodput_ratio']:>8.3f} {stats['shed']:>6}")
    cache = payload["cache"]
    replica = payload["replica"]
    print(f"\n  goodput {headline['goodput_ratio']:.3f}, "
          f"p50 {headline['p50_latency']:.2f}, "
          f"p99 {headline['p99_latency']:.2f}, "
          f"shed rate {headline['shed_rate']:.3f}")
    print(f"  cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {headline['cache_hit_rate']:.3f}), "
          f"{cache['invalidations']} delta invalidations")
    print(f"  staleness bound peaked at "
          f"{headline['staleness_max']:.1f} virtual s; replica lag "
          f"peaked at {headline['replica_lag_max']:.1f} "
          f"({replica['applied_statements']} statements shipped)")
    print(f"  replica converged with the warehouse: "
          f"{headline['replica_converged']}")
    return 0 if headline["replica_converged"] else 1


def _run_shard(arguments) -> int:
    import os
    import tempfile

    from repro.db import Database
    from repro.db.recovery import databases_equal
    from repro.federation import (
        FollowerNode,
        PrimaryNode,
        ReplicationGroup,
        sharded_federation,
    )
    from repro.serving import summarize, synthetic_workload
    from repro.sources import VirtualClock

    deadline = 25.0
    print(f"scatter-gather federation: {arguments.count} requests at "
          f"{arguments.load}x single-shard capacity, deadline {deadline} "
          f"(seed {arguments.seed})\n")
    print(f"  {'shards':>6} {'good':>5} {'shed':>5} {'good/s':>7} "
          f"{'p95':>6}  ranges")
    baseline = None
    for shards in (1, 2, 4, 8):
        server, __, shard_map, accessions, __t = sharded_federation(shards)
        requests = synthetic_workload(
            accessions, count=arguments.count, load_factor=arguments.load,
            capacity=4, mean_service=3.0, seed=arguments.seed,
            batch_size=1)
        window = max(request.arrival for request in requests) + deadline
        stats = summarize(server.serve(requests), budget=deadline)
        qps = stats["good"] / window
        baseline = baseline or qps
        ranges = ", ".join(shard_map.describe()[:2])
        if shard_map.count > 2:
            ranges += f", … ({shard_map.count} ranges)"
        print(f"  {shards:>6} {stats['good']:>5} {stats['shed']:>5} "
              f"{qps:>7.2f} {stats['p95']:>6.1f}  {ranges}")
    print(f"\n  in-deadline QPS scales {qps / baseline:.1f}x from 1 to 8 "
          f"shards under the same offered load")

    print("\nWAL-shipped replica failover:")
    with tempfile.TemporaryDirectory() as workdir:
        timeline = VirtualClock()

        def fresh() -> Database:
            database = Database()
            database.execute("CREATE TABLE events "
                             "(id INTEGER PRIMARY KEY, note TEXT)")
            return database

        primary = PrimaryNode("alpha", os.path.join(workdir, "alpha"),
                              fresh(), timeline=timeline)
        followers = [
            FollowerNode(name, os.path.join(workdir, name), fresh(),
                         timeline=timeline)
            for name in ("bravo", "charlie")
        ]
        group = ReplicationGroup(primary, followers)
        for index in range(12):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        group.sync()
        primary.rotate()
        for index in range(12, 20):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        followers[0].catch_up(primary)
        print(f"  shipped 20 statements across a rotation; staleness "
              f"bravo={followers[0].staleness_bound():.1f} "
              f"charlie={followers[1].staleness_bound():.1f}")
        group.fail_primary()
        promoted = group.promote()
        reference = fresh()
        for index in range(20):
            reference.execute("INSERT INTO events VALUES (?, ?)",
                              [index, f"n{index}"])
        intact = databases_equal(promoted.database, reference)
        print(f"  primary alpha died; promoted {promoted.name} in "
              f"{group.last_promotion:.2f} virtual s "
              f"(window {group.promotion_window:.1f})")
        print(f"  promoted state intact: {intact}; WAL continues at "
              f"generation {promoted.wal.generation}")
        return 0 if intact else 1


def _run_partition(arguments) -> int:
    import os
    import tempfile

    from repro.db import Database
    from repro.db.recovery import databases_equal
    from repro.errors import LeaseError
    from repro.federation import (
        FaultyChannel,
        FollowerNode,
        MembershipService,
        PrimaryNode,
        ReplicationGroup,
        WriteHistoryAuditor,
    )
    from repro.sources import VirtualClock

    lease_timeout = arguments.lease
    duration = arguments.duration
    if lease_timeout <= 0 or duration <= lease_timeout:
        print("partition: --duration must exceed --lease (> 0)",
              file=sys.stderr)
        return 2
    print(f"epoch-fenced failover under a one-way partition "
          f"(lease {lease_timeout:.1f}s, partition {duration:.1f}s, "
          f"seed {arguments.seed}, virtual time)\n")
    with tempfile.TemporaryDirectory() as workdir:
        timeline = VirtualClock()
        membership = MembershipService(timeline,
                                       lease_timeout=lease_timeout)
        auditor = WriteHistoryAuditor()
        channel = FaultyChannel(timeline, name="alpha-net",
                                seed=arguments.seed)

        def fresh() -> Database:
            database = Database()
            database.execute("CREATE TABLE events "
                             "(id INTEGER PRIMARY KEY, note TEXT)")
            return database

        primary = PrimaryNode("alpha", os.path.join(workdir, "alpha"),
                              fresh(), timeline=timeline,
                              membership=membership, channel=channel,
                              auditor=auditor)
        followers = [
            FollowerNode(name, os.path.join(workdir, name), fresh(),
                         timeline=timeline, auditor=auditor)
            for name in ("bravo", "charlie")
        ]
        group = ReplicationGroup(primary, followers,
                                 membership=membership)
        for index in range(6):
            primary.execute(
                f"INSERT INTO events VALUES ({index}, 'n{index}')", [])
        group.sync()
        print(f"  alpha elected under epoch {primary.epoch}; 6 "
              f"statements acknowledged and replicated")

        channel.partition(timeline.now(), timeline.now() + duration)
        for index in range(6, 9):
            primary.execute(
                f"INSERT INTO events VALUES ({index}, 'z{index}')", [])
        print(f"  partition opens: alpha acknowledges 3 more writes "
              f"its followers will never see")
        timeline.advance(lease_timeout + 1.0)
        try:
            primary.execute("INSERT INTO events VALUES (99, 'x')", [])
        except LeaseError as error:
            print(f"  lease dies at t={timeline.now():.1f}: write "
                  f"refused ({error.kind}, {primary.writes_refused} "
                  f"refusal counted)")

        promoted = group.promote()
        promoted.execute("INSERT INTO events VALUES (20, 'e2')", [])
        group.sync()
        print(f"  {promoted.name} promoted under epoch "
              f"{promoted.epoch} in {group.last_promotion:.2f} virtual "
              f"s; the new line of history ships cleanly")

        survivor = group.followers[0]
        survivor.catch_up(primary)
        print(f"  heal: {survivor.name} fences the zombie's epoch-"
              f"{primary.epoch} shipment ({survivor.shipments_fenced} "
              f"fenced)")
        rejoined, divergence = primary.demote(promoted, database=fresh())
        lost = divergence.acknowledged_lost
        print(f"  alpha demotes: {len(lost)} acknowledged-but-lost "
              f"statement(s) quarantined and named:")
        for statement in lost:
            print(f"    gen {statement.generation} index "
                  f"{statement.index}: {statement.sql}")
        rejoined.catch_up(promoted)
        verdict = auditor.certify(promoted, [survivor, rejoined])
        converged = databases_equal(rejoined.database, promoted.database)
        print(f"\n  audit: {verdict.summary()}")
        print(f"  rejoined replica converged with {promoted.name}: "
              f"{converged}")
        return 0 if verdict.ok and converged else 1


_COMMANDS = {
    "demo": _run_demo,
    "matrix": _run_matrix,
    "shell": _run_shell,
    "quality": _run_quality,
}


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments and dispatch; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Genomics Algebra + Unifying Database "
                    "(CIDR 2003 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in sorted(_COMMANDS):
        subparsers.add_parser(name)
    recover_parser = subparsers.add_parser(
        "recover", help="rebuild a database from image + WAL",
    )
    recover_parser.add_argument("--image", default=None,
                                help="checkpoint image path")
    recover_parser.add_argument("--wal", default=None,
                                help="write-ahead log path")
    recover_parser.add_argument("--output", default=None,
                                help="write the recovered state to a "
                                     "fresh image")
    recover_parser.add_argument("--genomics", action="store_true",
                                help="register the genomic UDTs/UDFs "
                                     "before restoring")
    recover_parser.add_argument("--self-test", action="store_true",
                                help="run the fault-injection crash "
                                     "matrix and exit")
    chaos_parser = subparsers.add_parser(
        "chaos", help="federation fault-injection scenario matrix",
    )
    chaos_parser.add_argument("--self-test", action="store_true",
                              help="run the fault/degradation scenario "
                                   "matrix and exit")
    chaos_parser.add_argument("--concurrency", type=int, default=None,
                              help="mediator fan-out width for the "
                                   "scenarios (default: one worker per "
                                   "source)")
    chaos_parser.add_argument("--only", default=None, metavar="NAME",
                              help="run a single scenario by name "
                                   "(e.g. bit-rot-repair)")
    scrub_parser = subparsers.add_parser(
        "scrub", help="verify on-disk image/WAL checksums without "
                      "replaying",
    )
    scrub_parser.add_argument("--image", default=None,
                              help="checkpoint image path")
    scrub_parser.add_argument("--wal", default=None,
                              help="write-ahead log path (its sealed "
                                   "segments are scanned too)")
    scrub_parser.add_argument("--self-test", action="store_true",
                              help="run the seeded corruption matrix "
                                   "and exit")
    trace_parser = subparsers.add_parser(
        "trace", help="trace one federated query end to end",
    )
    trace_parser.add_argument("query", nargs="?",
                              default="FIND genes SHOW accession, name "
                                      "LIMIT 5",
                              help="BiQL query to run against the "
                                   "warehouse leg")
    trace_parser.add_argument("--jsonl", default=None,
                              help="also export the trace as JSONL "
                                   "(one span per line)")
    trace_parser.add_argument("--seed", type=int, default=11,
                              help="universe seed (default 11)")
    trace_parser.add_argument("--size", type=int, default=24,
                              help="universe size (default 24)")
    stats_parser = subparsers.add_parser(
        "stats", help="Prometheus-style metrics dump of a small workload",
    )
    stats_parser.add_argument("--seed", type=int, default=11,
                              help="universe seed (default 11)")
    stats_parser.add_argument("--size", type=int, default=24,
                              help="universe size (default 24)")
    overload_parser = subparsers.add_parser(
        "overload", help="protected vs unprotected serving under an "
                         "overload storm",
    )
    overload_parser.add_argument("--load", type=float, default=4.0,
                                 help="offered load as a multiple of "
                                      "serving capacity (default 4.0)")
    overload_parser.add_argument("--count", type=int, default=120,
                                 help="number of requests (default 120)")
    overload_parser.add_argument("--seed", type=int, default=3,
                                 help="workload seed (default 3)")
    shard_parser = subparsers.add_parser(
        "shard", help="scatter-gather sharding scale-up plus replica "
                      "failover demo",
    )
    shard_parser.add_argument("--load", type=float, default=24.0,
                              help="offered load as a multiple of one "
                                   "shard's capacity (default 24.0)")
    shard_parser.add_argument("--count", type=int, default=280,
                              help="number of requests (default 280)")
    shard_parser.add_argument("--seed", type=int, default=9,
                              help="workload seed (default 9)")
    macro_parser = subparsers.add_parser(
        "macro", help="day-in-the-life macro workload through the "
                      "full stack",
    )
    macro_parser.add_argument("--quick", action="store_true",
                              help="the scaled-down CI day instead of "
                                   "the full one")
    macro_parser.add_argument("--seed", type=int, default=0,
                              help="day seed (default 0)")
    partition_parser = subparsers.add_parser(
        "partition", help="epoch-fenced failover demo: zombie primary, "
                          "lease expiry, fencing, divergence audit",
    )
    partition_parser.add_argument("--lease", type=float, default=2.0,
                                  help="lease timeout in virtual "
                                       "seconds (default 2.0)")
    partition_parser.add_argument("--duration", type=float, default=60.0,
                                  help="partition duration in virtual "
                                       "seconds (default 60.0; must "
                                       "exceed the lease)")
    partition_parser.add_argument("--seed", type=int, default=0,
                                  help="channel fault seed (default 0)")
    arguments = parser.parse_args(argv)
    if arguments.command == "recover":
        return _run_recover(arguments)
    if arguments.command == "chaos":
        return _run_chaos(arguments)
    if arguments.command == "scrub":
        return _run_scrub(arguments)
    if arguments.command == "trace":
        return _run_trace(arguments)
    if arguments.command == "stats":
        return _run_stats(arguments)
    if arguments.command == "overload":
        return _run_overload(arguments)
    if arguments.command == "shard":
        return _run_shard(arguments)
    if arguments.command == "macro":
        return _run_macro(arguments)
    if arguments.command == "partition":
        return _run_partition(arguments)
    return _COMMANDS[arguments.command]()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
