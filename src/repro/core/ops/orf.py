"""Open-reading-frame discovery and six-frame translation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops.basic import dna_to_rna, reverse_complement
from repro.core.ops.codon import CodonTable, STANDARD
from repro.core.types.annotation import FORWARD, REVERSE
from repro.core.types.sequence import DnaSequence, ProteinSequence


@dataclass(frozen=True)
class OpenReadingFrame:
    """An ORF: start/end on the *forward* strand, frame, and its protein.

    ``frame`` is 0, 1 or 2; ``strand`` is +1 or -1.  ``start``/``end`` are
    0-based half-open coordinates on the input (forward) sequence, so a
    reverse-strand ORF still reports where it sits on the given sequence.
    """

    start: int
    end: int
    strand: int
    frame: int
    protein: ProteinSequence

    def __len__(self) -> int:
        return self.end - self.start


def _scan_strand(
    text: str,
    strand: int,
    full_length: int,
    table: CodonTable,
    min_protein_length: int,
) -> list[OpenReadingFrame]:
    found: list[OpenReadingFrame] = []
    rna = text.replace("T", "U")
    for frame in range(3):
        position = frame
        while position + 3 <= len(rna):
            codon = rna[position:position + 3]
            if not table.is_start(codon):
                position += 3
                continue
            # Extend from this start to the first in-frame stop.
            residues = ["M"]
            stop_at = None
            inner = position + 3
            while inner + 3 <= len(rna):
                inner_codon = rna[inner:inner + 3]
                if table.is_stop(inner_codon):
                    stop_at = inner + 3
                    break
                residues.append(table.amino_acid(inner_codon))
                inner += 3
            if stop_at is not None and len(residues) >= min_protein_length:
                if strand == FORWARD:
                    start, end = position, stop_at
                else:
                    start = full_length - stop_at
                    end = full_length - position
                found.append(OpenReadingFrame(
                    start=start,
                    end=end,
                    strand=strand,
                    frame=frame,
                    protein=ProteinSequence("".join(residues)),
                ))
                position = stop_at  # resume after the stop codon
            else:
                position += 3
    return found


def find_orfs(
    dna: DnaSequence,
    min_protein_length: int = 20,
    table: CodonTable = STANDARD,
    both_strands: bool = True,
) -> list[OpenReadingFrame]:
    """Find complete ORFs (start codon … stop codon) on one or both strands.

    Overlapping ORFs in different frames are all reported; within a frame,
    scanning resumes after each stop so nested starts inside a reported ORF
    are not re-reported.  Results are ordered by forward-strand start.
    """
    text = str(dna)
    orfs = _scan_strand(text, FORWARD, len(text), table, min_protein_length)
    if both_strands:
        reverse_text = str(reverse_complement(dna))
        orfs.extend(_scan_strand(
            reverse_text, REVERSE, len(text), table, min_protein_length
        ))
    return sorted(orfs, key=lambda orf: (orf.start, orf.end, orf.strand))


def six_frame_translation(
    dna: DnaSequence, table: CodonTable = STANDARD
) -> dict[tuple[int, int], ProteinSequence]:
    """Translate all six reading frames end to end (stops kept as ``*``).

    Returns a mapping ``(strand, frame) -> protein`` with strand +1/-1 and
    frame 0/1/2.
    """
    result: dict[tuple[int, int], ProteinSequence] = {}
    for strand, source in (
        (FORWARD, dna),
        (REVERSE, reverse_complement(dna)),
    ):
        rna = str(dna_to_rna(source))
        for frame in range(3):
            residues = [
                table.amino_acid(rna[i:i + 3])
                for i in range(frame, len(rna) - 2, 3)
            ]
            result[(strand, frame)] = ProteinSequence("".join(residues))
    return result
