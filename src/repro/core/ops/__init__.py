"""Genomic operations: the operators of the Genomics Algebra."""

from repro.core.ops.align import (
    BLOSUM62,
    Alignment,
    ScoringScheme,
    blosum62_scoring,
    global_align,
    global_align_affine,
    local_align,
    simple_scoring,
)
from repro.core.ops.basic import (
    base_composition,
    complement,
    decode,
    decode_protein,
    decode_rna,
    dna_to_rna,
    gc_content,
    reverse_complement,
    rna_to_dna,
)
from repro.core.ops.central_dogma import (
    express,
    reverse_transcribe,
    splice,
    transcribe,
    translate,
)
from repro.core.ops.codon import (
    BACTERIAL,
    STANDARD,
    VERTEBRATE_MITOCHONDRIAL,
    YEAST_MITOCHONDRIAL,
    CodonTable,
    available_codon_tables,
    codon_table,
    register_codon_table,
)
from repro.core.ops.orf import (
    OpenReadingFrame,
    find_orfs,
    six_frame_translation,
)
from repro.core.ops.primers import PrimerPair, design_primers
from repro.core.ops.restriction import (
    STANDARD_ENZYMES,
    RestrictionEnzyme,
    digest,
    enzyme_by_name,
    fragment_lengths,
)
from repro.core.ops.search import (
    contains,
    count_occurrences,
    find_exact,
    find_motif,
    first_occurrence,
)
from repro.core.ops.similarity import (
    Hit,
    WordIndex,
    best_hit,
    blast_search,
    cosine_similarity,
    jaccard_similarity,
    kmer_profile,
    naive_similarity_scan,
    resembles,
)
from repro.core.ops.stats import (
    codon_usage,
    hydropathy,
    hydropathy_profile,
    isoelectric_point,
    melting_temperature,
    molecular_weight,
    shannon_entropy,
)

__all__ = [
    # align
    "BLOSUM62", "Alignment", "ScoringScheme", "blosum62_scoring",
    "global_align", "global_align_affine", "local_align", "simple_scoring",
    # basic
    "base_composition", "complement", "decode", "decode_protein",
    "decode_rna", "dna_to_rna", "gc_content", "reverse_complement",
    "rna_to_dna",
    # central dogma
    "express", "reverse_transcribe", "splice", "transcribe", "translate",
    # codon
    "BACTERIAL", "STANDARD", "VERTEBRATE_MITOCHONDRIAL",
    "YEAST_MITOCHONDRIAL", "CodonTable", "available_codon_tables",
    "codon_table", "register_codon_table",
    # orf
    "OpenReadingFrame", "find_orfs", "six_frame_translation",
    # primers
    "PrimerPair", "design_primers",
    # restriction
    "STANDARD_ENZYMES", "RestrictionEnzyme", "digest", "enzyme_by_name",
    "fragment_lengths",
    # search
    "contains", "count_occurrences", "find_exact", "find_motif",
    "first_occurrence",
    # similarity
    "Hit", "WordIndex", "best_hit", "blast_search", "cosine_similarity",
    "jaccard_similarity", "kmer_profile", "naive_similarity_scan",
    "resembles",
    # stats
    "codon_usage", "hydropathy", "hydropathy_profile", "isoelectric_point",
    "melting_temperature", "molecular_weight", "shannon_entropy",
]
