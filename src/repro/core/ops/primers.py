"""PCR primer design: a realistic "specialty evaluation function" (C14).

A compact, deterministic primer designer over the GDT machinery: given a
template and a target region, pick a forward primer just upstream and a
reverse primer just downstream, subject to length, melting-temperature
window, GC clamp and simple self-complementarity limits.  It exists both
as a usable tool and as the canonical example of the kind of functions
requirement C14 says users must be able to define and integrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops.basic import reverse_complement
from repro.core.ops.stats import melting_temperature
from repro.core.types.annotation import Interval
from repro.core.types.sequence import DnaSequence
from repro.errors import SequenceError


@dataclass(frozen=True)
class PrimerPair:
    """A designed primer pair and its placement on the template.

    Positions are 0-based on the forward strand of the template; the
    reverse primer is given 5'→3' (i.e. already reverse-complemented).
    ``product_length`` is the amplicon size including both primers.
    """

    forward: DnaSequence
    reverse: DnaSequence
    forward_position: int
    reverse_position: int
    forward_tm: float
    reverse_tm: float

    @property
    def product_length(self) -> int:
        return (self.reverse_position + len(self.reverse)
                - self.forward_position)


def _has_gc_clamp(primer_text: str) -> bool:
    """True when the 3' end carries a G or C (binding stability)."""
    return primer_text[-1] in "GC"


def _max_self_complement_run(primer_text: str) -> int:
    """Longest run of the primer complementary to its own reverse.

    A cheap hairpin/self-dimer screen: the length of the longest common
    substring between the primer and its reverse complement.
    """
    other = str(reverse_complement(DnaSequence(primer_text)))
    best = 0
    for start in range(len(primer_text)):
        for end in range(start + best + 1, len(primer_text) + 1):
            if primer_text[start:end] in other:
                best = end - start
            else:
                break
    return best


def _acceptable(primer_text: str, tm_low: float, tm_high: float,
                max_self_run: int) -> "float | None":
    """Tm if the candidate passes all filters, else ``None``."""
    if not _has_gc_clamp(primer_text):
        return None
    if "N" in primer_text or "-" in primer_text:
        return None
    if _max_self_complement_run(primer_text) > max_self_run:
        return None
    tm = melting_temperature(DnaSequence(primer_text))
    if not tm_low <= tm <= tm_high:
        return None
    return tm


def design_primers(
    template: DnaSequence,
    target: Interval,
    primer_length: int = 20,
    tm_window: tuple[float, float] = (50.0, 68.0),
    max_self_complement: int = 8,
) -> PrimerPair:
    """Design a primer pair flanking *target* on *template*.

    The forward primer is the acceptable window nearest upstream of the
    target, ending at or before the target's first base; the reverse
    primer is the acceptable window nearest downstream, starting at or
    after the target's end (returned 5'→3' on the opposite strand).
    Raises :class:`SequenceError` when no acceptable candidate exists.
    """
    text = str(template)
    if target.end > len(text):
        raise SequenceError("target region lies beyond the template")
    if primer_length < 10:
        raise SequenceError("primers shorter than 10 nt are not supported")
    tm_low, tm_high = tm_window

    # Forward: windows ending at/before the target start, nearest first.
    forward: tuple[int, float] | None = None
    for end in range(target.start, primer_length - 1, -1):
        start = end - primer_length
        candidate = text[start:end]
        tm = _acceptable(candidate, tm_low, tm_high, max_self_complement)
        if tm is not None:
            forward = (start, tm)
            break
    if forward is None:
        raise SequenceError(
            "no acceptable forward primer upstream of the target"
        )

    # Reverse: windows starting at/after the target end, nearest first.
    reverse: tuple[int, float] | None = None
    for start in range(target.end, len(text) - primer_length + 1):
        candidate_region = text[start:start + primer_length]
        primer_text = str(reverse_complement(DnaSequence(candidate_region)))
        tm = _acceptable(primer_text, tm_low, tm_high,
                         max_self_complement)
        if tm is not None:
            reverse = (start, tm)
            break
    if reverse is None:
        raise SequenceError(
            "no acceptable reverse primer downstream of the target"
        )

    forward_position, forward_tm = forward
    reverse_position, reverse_tm = reverse
    return PrimerPair(
        forward=DnaSequence(
            text[forward_position:forward_position + primer_length]
        ),
        reverse=reverse_complement(DnaSequence(
            text[reverse_position:reverse_position + primer_length]
        )),
        forward_position=forward_position,
        reverse_position=reverse_position,
        forward_tm=forward_tm,
        reverse_tm=reverse_tm,
    )
