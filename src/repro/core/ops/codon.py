"""Genetic codes (codon tables) and codon-level translation machinery.

The standard genetic code plus the common NCBI variants the paper's
extensibility story needs (new tables can be registered at run time, which
is exactly the "integration of new specialty evaluation functions" of
requirement C14).

Tables are keyed by their NCBI ``transl_table`` id, which is what GenBank
feature qualifiers (``/transl_table=2``) carry and what the wrappers pass
through.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import TranslationError

_BASES = "UCAG"

#: The standard code in NCBI's compact 64-character layout: the amino acid
#: for codon (b1, b2, b3) with bases ordered U, C, A, G and b1 varying
#: slowest.  '*' marks stop codons.
_STANDARD_AAS = (
    "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG"
)


def _codons() -> Iterator[str]:
    for first in _BASES:
        for second in _BASES:
            for third in _BASES:
                yield first + second + third


class CodonTable:
    """A genetic code: codon → amino acid, with start and stop codon sets."""

    def __init__(
        self,
        table_id: int,
        name: str,
        forward: Dict[str, str],
        start_codons: frozenset[str],
    ) -> None:
        self.table_id = table_id
        self.name = name
        self._forward = dict(forward)
        self.start_codons = frozenset(start_codons)
        self.stop_codons = frozenset(
            codon for codon, amino in self._forward.items() if amino == "*"
        )

    def __repr__(self) -> str:
        return f"CodonTable({self.table_id}, {self.name!r})"

    def amino_acid(self, codon: str) -> str:
        """Translate one RNA codon (``*`` for stop).

        Codons containing ambiguity codes translate to ``X`` unless every
        expansion agrees (e.g. ``GCN`` → ``A`` because all four GC_ codons
        encode alanine).
        """
        codon = codon.upper().replace("T", "U")
        if len(codon) != 3:
            raise TranslationError(f"codon must have 3 bases, got {codon!r}")
        direct = self._forward.get(codon)
        if direct is not None:
            return direct
        candidates = {
            self._forward[expansion]
            for expansion in self._expand(codon)
            if expansion in self._forward
        }
        if not candidates:
            raise TranslationError(f"untranslatable codon {codon!r}")
        if len(candidates) == 1:
            return candidates.pop()
        return "X"

    @staticmethod
    def _expand(codon: str) -> Iterator[str]:
        """All concrete codons an ambiguous codon may stand for."""
        from repro.core.types.alphabet import RNA

        pools = [RNA.expand(base) for base in codon]
        for first in pools[0]:
            for second in pools[1]:
                for third in pools[2]:
                    yield first + second + third

    def is_start(self, codon: str) -> bool:
        return codon.upper().replace("T", "U") in self.start_codons

    def is_stop(self, codon: str) -> bool:
        return codon.upper().replace("T", "U") in self.stop_codons

    @classmethod
    def from_differences(
        cls,
        table_id: int,
        name: str,
        differences: Dict[str, str],
        start_codons: frozenset[str],
    ) -> "CodonTable":
        """Build a variant code as deltas from the standard table."""
        forward = dict(zip(_codons(), _STANDARD_AAS))
        forward.update(differences)
        return cls(table_id, name, forward, start_codons)


STANDARD = CodonTable(
    1,
    "Standard",
    dict(zip(_codons(), _STANDARD_AAS)),
    frozenset({"AUG", "GUG", "UUG"}),
)

VERTEBRATE_MITOCHONDRIAL = CodonTable.from_differences(
    2,
    "Vertebrate Mitochondrial",
    {"AGA": "*", "AGG": "*", "AUA": "M", "UGA": "W"},
    frozenset({"AUG", "AUA", "AUU", "AUC", "GUG"}),
)

YEAST_MITOCHONDRIAL = CodonTable.from_differences(
    3,
    "Yeast Mitochondrial",
    {"AUA": "M", "CUU": "T", "CUC": "T", "CUA": "T", "CUG": "T", "UGA": "W"},
    frozenset({"AUA", "AUG", "GUG"}),
)

MOLD_PROTOZOAN_MITOCHONDRIAL = CodonTable.from_differences(
    4,
    "Mold/Protozoan Mitochondrial and Mycoplasma",
    {"UGA": "W"},
    frozenset({"AUG", "AUA", "AUU", "AUC", "GUG", "UUG", "UUA", "CUG"}),
)

BACTERIAL = CodonTable.from_differences(
    11,
    "Bacterial, Archaeal and Plant Plastid",
    {},
    frozenset({"AUG", "GUG", "UUG", "AUA", "AUU", "AUC", "CUG"}),
)


_TABLES: Dict[int, CodonTable] = {
    table.table_id: table
    for table in (
        STANDARD,
        VERTEBRATE_MITOCHONDRIAL,
        YEAST_MITOCHONDRIAL,
        MOLD_PROTOZOAN_MITOCHONDRIAL,
        BACTERIAL,
    )
}


def codon_table(table_id: int) -> CodonTable:
    """Look up a genetic code by NCBI ``transl_table`` id."""
    try:
        return _TABLES[table_id]
    except KeyError:
        raise TranslationError(
            f"no codon table registered with id {table_id}"
        ) from None


def register_codon_table(table: CodonTable, replace: bool = False) -> None:
    """Register a user-defined genetic code (extensibility, C14)."""
    if table.table_id in _TABLES and not replace:
        raise TranslationError(
            f"codon table id {table.table_id} already registered"
        )
    _TABLES[table.table_id] = table


def available_codon_tables() -> tuple[int, ...]:
    """The registered ``transl_table`` ids, ascending."""
    return tuple(sorted(_TABLES))
