"""Pairwise sequence alignment: global, local, and affine-gap variants.

Implements the classical dynamic-programming aligners the `resembles`
operator (section 6.3) and the similarity index structures (section 6.5)
build on:

- :func:`global_align` — Needleman–Wunsch with linear gap penalties.
- :func:`local_align` — Smith–Waterman.
- :func:`global_align_affine` — Gotoh's three-matrix affine-gap algorithm.

Scoring comes from a :class:`ScoringScheme`: either simple
match/mismatch (:func:`simple_scoring`, the default for nucleotides) or a
substitution matrix (:data:`BLOSUM62` for proteins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.types.sequence import PackedSequence
from repro.errors import SequenceError

GAP = "-"

_BLOSUM62_KEYS = "ARNDCQEGHILKMFPSTWYVBZX*"
_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""


def _parse_blosum62() -> dict[tuple[str, str], int]:
    matrix: dict[tuple[str, str], int] = {}
    rows = [line.split() for line in _BLOSUM62_ROWS.strip().splitlines()]
    for row_key, row in zip(_BLOSUM62_KEYS, rows):
        for col_key, value in zip(_BLOSUM62_KEYS, row):
            matrix[(row_key, col_key)] = int(value)
    return matrix


#: The BLOSUM62 amino-acid substitution matrix.
BLOSUM62: Mapping[tuple[str, str], int] = _parse_blosum62()


class ScoringScheme:
    """Pairwise symbol scoring plus gap penalties.

    ``gap_open`` is charged for starting a gap, ``gap_extend`` for each
    gapped position including the first; with ``gap_open == 0`` the scheme
    is linear.  Penalties are given as non-negative magnitudes.
    """

    def __init__(
        self,
        substitution: Mapping[tuple[str, str], int] | None = None,
        match: int = 2,
        mismatch: int = -1,
        gap_open: int = 0,
        gap_extend: int = 2,
    ) -> None:
        if gap_open < 0 or gap_extend < 0:
            raise SequenceError("gap penalties must be non-negative")
        self._substitution = substitution
        self.match = match
        self.mismatch = mismatch
        self.gap_open = gap_open
        self.gap_extend = gap_extend

    def score(self, first: str, second: str) -> int:
        if self._substitution is not None:
            try:
                return self._substitution[(first, second)]
            except KeyError:
                return self.mismatch
        return self.match if first == second else self.mismatch


def simple_scoring(match: int = 2, mismatch: int = -1,
                   gap: int = 2) -> ScoringScheme:
    """Linear-gap match/mismatch scoring (nucleotide default)."""
    return ScoringScheme(match=match, mismatch=mismatch, gap_extend=gap)


def blosum62_scoring(gap_open: int = 10, gap_extend: int = 1) -> ScoringScheme:
    """BLOSUM62 with affine gaps (protein default)."""
    return ScoringScheme(substitution=BLOSUM62, gap_open=gap_open,
                         gap_extend=gap_extend)


@dataclass(frozen=True)
class Alignment:
    """A pairwise alignment: gapped strings, score, and span on each input."""

    aligned_first: str
    aligned_second: str
    score: float
    first_span: tuple[int, int]
    second_span: tuple[int, int]

    def __post_init__(self) -> None:
        if len(self.aligned_first) != len(self.aligned_second):
            raise SequenceError("aligned strings must have equal length")

    @property
    def length(self) -> int:
        return len(self.aligned_first)

    @property
    def identity(self) -> float:
        """Fraction of aligned columns with identical symbols."""
        if not self.aligned_first:
            return 0.0
        same = sum(
            1 for a, b in zip(self.aligned_first, self.aligned_second)
            if a == b and a != GAP
        )
        return same / len(self.aligned_first)

    @property
    def gaps(self) -> int:
        return (self.aligned_first.count(GAP)
                + self.aligned_second.count(GAP))

    def __str__(self) -> str:
        marks = "".join(
            "|" if a == b and a != GAP else " "
            for a, b in zip(self.aligned_first, self.aligned_second)
        )
        return "\n".join((self.aligned_first, marks, self.aligned_second))


def _as_text(sequence: "PackedSequence | str") -> str:
    return str(sequence)


def global_align(
    first: "PackedSequence | str",
    second: "PackedSequence | str",
    scoring: ScoringScheme | None = None,
) -> Alignment:
    """Needleman–Wunsch global alignment with linear gap penalties."""
    scheme = scoring or simple_scoring()
    a, b = _as_text(first), _as_text(second)
    gap = scheme.gap_extend
    rows, cols = len(a) + 1, len(b) + 1

    score = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        score[i][0] = -gap * i
    for j in range(1, cols):
        score[0][j] = -gap * j
    for i in range(1, rows):
        row = score[i]
        above = score[i - 1]
        symbol = a[i - 1]
        for j in range(1, cols):
            row[j] = max(
                above[j - 1] + scheme.score(symbol, b[j - 1]),
                above[j] - gap,
                row[j - 1] - gap,
            )

    aligned_a: list[str] = []
    aligned_b: list[str] = []
    i, j = len(a), len(b)
    while i > 0 or j > 0:
        current = score[i][j]
        if (i > 0 and j > 0
                and current == score[i - 1][j - 1]
                + scheme.score(a[i - 1], b[j - 1])):
            aligned_a.append(a[i - 1])
            aligned_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif i > 0 and current == score[i - 1][j] - gap:
            aligned_a.append(a[i - 1])
            aligned_b.append(GAP)
            i -= 1
        else:
            aligned_a.append(GAP)
            aligned_b.append(b[j - 1])
            j -= 1

    return Alignment(
        aligned_first="".join(reversed(aligned_a)),
        aligned_second="".join(reversed(aligned_b)),
        score=score[len(a)][len(b)],
        first_span=(0, len(a)),
        second_span=(0, len(b)),
    )


def local_align(
    first: "PackedSequence | str",
    second: "PackedSequence | str",
    scoring: ScoringScheme | None = None,
) -> Alignment:
    """Smith–Waterman local alignment with linear gap penalties."""
    scheme = scoring or simple_scoring()
    a, b = _as_text(first), _as_text(second)
    gap = scheme.gap_extend
    rows, cols = len(a) + 1, len(b) + 1

    score = [[0] * cols for _ in range(rows)]
    best, best_i, best_j = 0, 0, 0
    for i in range(1, rows):
        row = score[i]
        above = score[i - 1]
        symbol = a[i - 1]
        for j in range(1, cols):
            value = max(
                0,
                above[j - 1] + scheme.score(symbol, b[j - 1]),
                above[j] - gap,
                row[j - 1] - gap,
            )
            row[j] = value
            if value > best:
                best, best_i, best_j = value, i, j

    aligned_a: list[str] = []
    aligned_b: list[str] = []
    i, j = best_i, best_j
    while i > 0 and j > 0 and score[i][j] > 0:
        current = score[i][j]
        if current == score[i - 1][j - 1] + scheme.score(a[i - 1], b[j - 1]):
            aligned_a.append(a[i - 1])
            aligned_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif current == score[i - 1][j] - gap:
            aligned_a.append(a[i - 1])
            aligned_b.append(GAP)
            i -= 1
        else:
            aligned_a.append(GAP)
            aligned_b.append(b[j - 1])
            j -= 1

    return Alignment(
        aligned_first="".join(reversed(aligned_a)),
        aligned_second="".join(reversed(aligned_b)),
        score=best,
        first_span=(i, best_i),
        second_span=(j, best_j),
    )


def global_align_affine(
    first: "PackedSequence | str",
    second: "PackedSequence | str",
    scoring: ScoringScheme | None = None,
) -> Alignment:
    """Gotoh's global alignment with affine gap penalties.

    Opening a gap costs ``gap_open + gap_extend``; each further gapped
    position costs ``gap_extend``.
    """
    scheme = scoring or blosum62_scoring()
    a, b = _as_text(first), _as_text(second)
    open_cost = scheme.gap_open + scheme.gap_extend
    extend = scheme.gap_extend
    rows, cols = len(a) + 1, len(b) + 1
    minus_inf = float("-inf")

    match = [[minus_inf] * cols for _ in range(rows)]
    gap_a = [[minus_inf] * cols for _ in range(rows)]  # gap in `a` (up in b)
    gap_b = [[minus_inf] * cols for _ in range(rows)]  # gap in `b`
    match[0][0] = 0.0
    for i in range(1, rows):
        gap_b[i][0] = -open_cost - extend * (i - 1)
    for j in range(1, cols):
        gap_a[0][j] = -open_cost - extend * (j - 1)

    for i in range(1, rows):
        symbol = a[i - 1]
        for j in range(1, cols):
            sub = scheme.score(symbol, b[j - 1])
            match[i][j] = sub + max(
                match[i - 1][j - 1], gap_a[i - 1][j - 1], gap_b[i - 1][j - 1]
            )
            gap_a[i][j] = max(
                match[i][j - 1] - open_cost, gap_a[i][j - 1] - extend
            )
            gap_b[i][j] = max(
                match[i - 1][j] - open_cost, gap_b[i - 1][j] - extend
            )

    aligned_a: list[str] = []
    aligned_b: list[str] = []
    i, j = len(a), len(b)
    final = max(match[i][j], gap_a[i][j], gap_b[i][j])
    state = max(
        (("match", match[i][j]), ("gap_a", gap_a[i][j]),
         ("gap_b", gap_b[i][j])),
        key=lambda pair: pair[1],
    )[0]
    while i > 0 or j > 0:
        if state == "match" and i > 0 and j > 0:
            sub = scheme.score(a[i - 1], b[j - 1])
            aligned_a.append(a[i - 1])
            aligned_b.append(b[j - 1])
            previous = match[i][j] - sub
            i -= 1
            j -= 1
            if previous == match[i][j]:
                state = "match"
            elif previous == gap_a[i][j]:
                state = "gap_a"
            else:
                state = "gap_b"
        elif state == "gap_a" and j > 0:
            aligned_a.append(GAP)
            aligned_b.append(b[j - 1])
            came_from_open = gap_a[i][j] == match[i][j - 1] - open_cost
            j -= 1
            state = "match" if came_from_open else "gap_a"
        elif state == "gap_b" and i > 0:
            aligned_a.append(a[i - 1])
            aligned_b.append(GAP)
            came_from_open = gap_b[i][j] == match[i - 1][j] - open_cost
            i -= 1
            state = "match" if came_from_open else "gap_b"
        elif j > 0:
            aligned_a.append(GAP)
            aligned_b.append(b[j - 1])
            j -= 1
        else:
            aligned_a.append(a[i - 1])
            aligned_b.append(GAP)
            i -= 1

    return Alignment(
        aligned_first="".join(reversed(aligned_a)),
        aligned_second="".join(reversed(aligned_b)),
        score=final,
        first_span=(0, len(a)),
        second_span=(0, len(b)),
    )
