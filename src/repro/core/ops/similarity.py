"""Sequence similarity: k-mer profiles and BLAST-style seed-and-extend.

``resembles`` is the paper's example of a user-defined comparison operator
plugged into SQL (section 6.3).  The paper's substrate for similarity was
the external BLAST program family; here the same role is played by a
self-contained seed-and-extend search (:func:`blast_search`) over an
in-memory word index, plus cheap k-mer profile distances for coarse
screening.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.ops.align import Alignment, ScoringScheme, simple_scoring
from repro.core.types.sequence import PackedSequence
from repro.errors import SequenceError


def kmer_profile(sequence: "PackedSequence | str", k: int) -> Counter:
    """Multiset of the k-length words of a sequence."""
    if k < 1:
        raise SequenceError("k must be positive")
    text = str(sequence)
    return Counter(text[i:i + k] for i in range(len(text) - k + 1))


def jaccard_similarity(
    first: "PackedSequence | str", second: "PackedSequence | str", k: int = 4
) -> float:
    """Jaccard index of the k-mer *sets* of two sequences (in ``[0, 1]``)."""
    words_a = set(kmer_profile(first, k))
    words_b = set(kmer_profile(second, k))
    if not words_a and not words_b:
        return 1.0
    union = words_a | words_b
    return len(words_a & words_b) / len(union)


def cosine_similarity(
    first: "PackedSequence | str", second: "PackedSequence | str", k: int = 4
) -> float:
    """Cosine similarity of k-mer count vectors (in ``[0, 1]``)."""
    profile_a = kmer_profile(first, k)
    profile_b = kmer_profile(second, k)
    if not profile_a or not profile_b:
        return 1.0 if not profile_a and not profile_b else 0.0
    dot = sum(count * profile_b[word] for word, count in profile_a.items())
    norm_a = math.sqrt(sum(c * c for c in profile_a.values()))
    norm_b = math.sqrt(sum(c * c for c in profile_b.values()))
    return dot / (norm_a * norm_b)


def resembles(
    first: "PackedSequence | str",
    second: "PackedSequence | str",
    threshold: float = 0.7,
    k: int = 4,
) -> bool:
    """The `resembles` predicate: k-mer cosine similarity above threshold."""
    return cosine_similarity(first, second, k) >= threshold


# ---------------------------------------------------------------------------
# Seed-and-extend (BLAST-style) search
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Hit:
    """A high-scoring segment pair between the query and one subject."""

    subject_id: str
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int
    score: float
    identity: float

    def __len__(self) -> int:
        return self.query_end - self.query_start


class WordIndex:
    """An inverted index word → (subject id, position) for seeding."""

    def __init__(self, word_size: int = 8) -> None:
        if word_size < 2:
            raise SequenceError("word size must be at least 2")
        self.word_size = word_size
        self._postings: dict[str, list[tuple[str, int]]] = {}
        self._subjects: dict[str, str] = {}

    def add(self, subject_id: str, sequence: "PackedSequence | str") -> None:
        """Index one subject sequence."""
        if subject_id in self._subjects:
            raise SequenceError(f"subject {subject_id!r} already indexed")
        text = str(sequence)
        self._subjects[subject_id] = text
        w = self.word_size
        for position in range(len(text) - w + 1):
            word = text[position:position + w]
            self._postings.setdefault(word, []).append((subject_id, position))

    def __len__(self) -> int:
        return len(self._subjects)

    def subject(self, subject_id: str) -> str:
        return self._subjects[subject_id]

    def seeds(self, word: str) -> Sequence[tuple[str, int]]:
        return self._postings.get(word, ())


def _extend(
    query: str,
    subject: str,
    query_pos: int,
    subject_pos: int,
    word_size: int,
    scheme: ScoringScheme,
    x_drop: float,
) -> tuple[int, int, int, int, float]:
    """Ungapped X-drop extension of a seed in both directions.

    Returns (query_start, query_end, subject_start, subject_end, score).
    """
    score = float(sum(
        scheme.score(query[query_pos + i], subject[subject_pos + i])
        for i in range(word_size)
    ))

    # Extend right.
    best = score
    best_right = 0
    offset = word_size
    running = score
    while query_pos + offset < len(query) and subject_pos + offset < len(subject):
        running += scheme.score(query[query_pos + offset],
                                subject[subject_pos + offset])
        offset += 1
        if running > best:
            best = running
            best_right = offset - word_size
        elif best - running > x_drop:
            break
    score = best

    # Extend left.
    best = score
    best_left = 0
    offset = 1
    running = score
    while query_pos - offset >= 0 and subject_pos - offset >= 0:
        running += scheme.score(query[query_pos - offset],
                                subject[subject_pos - offset])
        if running > best:
            best = running
            best_left = offset
        elif best - running > x_drop:
            break
        offset += 1
    score = best

    return (
        query_pos - best_left,
        query_pos + word_size + best_right,
        subject_pos - best_left,
        subject_pos + word_size + best_right,
        score,
    )


def blast_search(
    query: "PackedSequence | str",
    index: WordIndex,
    min_score: float = 20.0,
    scoring: ScoringScheme | None = None,
    x_drop: float = 10.0,
) -> list[Hit]:
    """Seed-and-extend search of *query* against an indexed subject set.

    Every exact word match seeds an ungapped X-drop extension; extensions
    scoring at least *min_score* are reported, deduplicated per subject,
    best first.  This mirrors (ungapped) BLAST closely enough to play its
    architectural role as the similarity substrate.
    """
    scheme = scoring or simple_scoring(match=2, mismatch=-3)
    text = str(query)
    w = index.word_size
    best_hits: dict[tuple[str, int, int], Hit] = {}

    for query_pos in range(len(text) - w + 1):
        word = text[query_pos:query_pos + w]
        for subject_id, subject_pos in index.seeds(word):
            subject = index.subject(subject_id)
            q_start, q_end, s_start, s_end, score = _extend(
                text, subject, query_pos, subject_pos, w, scheme, x_drop
            )
            if score < min_score:
                continue
            matched = sum(
                1 for a, b in zip(text[q_start:q_end], subject[s_start:s_end])
                if a == b
            )
            length = q_end - q_start
            hit = Hit(
                subject_id=subject_id,
                query_start=q_start,
                query_end=q_end,
                subject_start=s_start,
                subject_end=s_end,
                score=score,
                identity=matched / length if length else 0.0,
            )
            key = (subject_id, q_start - s_start, q_end)
            existing = best_hits.get(key)
            if existing is None or hit.score > existing.score:
                best_hits[key] = hit

    return sorted(best_hits.values(), key=lambda h: -h.score)


def best_hit(
    query: "PackedSequence | str",
    index: WordIndex,
    min_score: float = 20.0,
) -> Hit | None:
    """The single best :func:`blast_search` hit, or ``None``."""
    hits = blast_search(query, index, min_score=min_score)
    return hits[0] if hits else None


def naive_similarity_scan(
    query: "PackedSequence | str",
    subjects: Mapping[str, "PackedSequence | str"] | Iterable[tuple[str, str]],
    scoring: ScoringScheme | None = None,
) -> list[tuple[str, Alignment]]:
    """Full Smith–Waterman of the query against every subject (baseline).

    This is the no-index baseline the genomic-index benchmark (A2)
    compares against.
    """
    from repro.core.ops.align import local_align

    pairs = subjects.items() if isinstance(subjects, Mapping) else subjects
    results = [
        (subject_id, local_align(query, subject, scoring))
        for subject_id, subject in pairs
    ]
    return sorted(results, key=lambda pair: -pair[1].score)
