"""Elementary genomic operations: complement, GC content, decoding raw text.

These are the small building blocks of the algebra — operations whose
signature is a single sequence (or raw repository text) in and a sequence
or scalar out.
"""

from __future__ import annotations

from repro.core.types.sequence import (
    DnaSequence,
    PackedSequence,
    ProteinSequence,
    RnaSequence,
)
from repro.errors import SequenceError


def complement(sequence: PackedSequence) -> PackedSequence:
    """The base-wise complement (same orientation)."""
    alphabet = sequence.alphabet
    if not alphabet.has_complement:
        raise SequenceError(
            f"cannot complement a {alphabet.name} sequence"
        )
    complemented = "".join(alphabet.complement(s) for s in str(sequence))
    return type(sequence)(complemented)


def reverse_complement(sequence: PackedSequence) -> PackedSequence:
    """The reverse complement — the opposite strand read 5'→3'."""
    return complement(sequence).reverse()


def gc_content(sequence: PackedSequence) -> float:
    """Fraction of G and C bases among concrete (non-ambiguous) bases.

    S (which stands for G or C) counts as GC; other ambiguity codes and
    gaps are excluded from the denominator.
    """
    text = str(sequence)
    gc = sum(text.count(base) for base in "GCS")
    at = sum(text.count(base) for base in "ATUW")
    total = gc + at
    return gc / total if total else 0.0


def base_composition(sequence: PackedSequence) -> dict[str, int]:
    """Counts of every symbol that occurs in the sequence."""
    text = str(sequence)
    return {symbol: text.count(symbol) for symbol in sorted(set(text))}


def decode(raw: str) -> DnaSequence:
    """Decode raw repository sequence text into a DNA value.

    Repository flat files ship sequence as numbered, whitespace-broken,
    lower-case blocks (GenBank's ``ORIGIN`` section).  ``decode`` strips
    digits, whitespace and separators and validates the remainder against
    the IUPAC DNA alphabet — this is the paper's ``decode`` operation: the
    step from low-level repository text to a high-level GDT value.
    """
    cleaned = "".join(
        ch for ch in raw if not ch.isdigit() and not ch.isspace()
        and ch not in "/\\.,;:"
    )
    return DnaSequence(cleaned.upper())


def decode_rna(raw: str) -> RnaSequence:
    """Like :func:`decode` but for RNA text."""
    cleaned = "".join(
        ch for ch in raw if not ch.isdigit() and not ch.isspace()
        and ch not in "/\\.,;:"
    )
    return RnaSequence(cleaned.upper())


def decode_protein(raw: str) -> ProteinSequence:
    """Like :func:`decode` but for amino-acid text."""
    cleaned = "".join(
        ch for ch in raw if not ch.isdigit() and not ch.isspace()
        and ch not in "/\\.,;:"
    )
    return ProteinSequence(cleaned.upper())


def dna_to_rna(dna: DnaSequence) -> RnaSequence:
    """Re-letter a DNA sequence as RNA (T → U), preserving ambiguity codes."""
    return RnaSequence(str(dna).replace("T", "U"))


def rna_to_dna(rna: RnaSequence) -> DnaSequence:
    """Re-letter an RNA sequence as DNA (U → T), preserving ambiguity codes."""
    return DnaSequence(str(rna).replace("U", "T"))
