"""Restriction enzymes and in-silico digestion."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ops.search import find_motif
from repro.core.types.sequence import DnaSequence
from repro.errors import SequenceError


@dataclass(frozen=True)
class RestrictionEnzyme:
    """A restriction endonuclease: recognition site + cut offset.

    ``site`` may contain IUPAC ambiguity codes.  ``cut_offset`` is the
    number of bases into the site (on the forward strand) at which the
    enzyme cuts; 0 cuts immediately before the site's first base.
    """

    name: str
    site: str
    cut_offset: int

    def __post_init__(self) -> None:
        if not self.site:
            raise SequenceError(f"enzyme {self.name!r} has an empty site")
        if not 0 <= self.cut_offset <= len(self.site):
            raise SequenceError(
                f"enzyme {self.name!r}: cut offset {self.cut_offset} outside "
                f"site of length {len(self.site)}"
            )

    def recognition_sites(self, dna: DnaSequence) -> list[int]:
        """Start positions of every recognition site (forward strand)."""
        return list(find_motif(dna, self.site))

    def cut_positions(self, dna: DnaSequence) -> list[int]:
        """Positions the enzyme cuts at, ascending."""
        return sorted(
            start + self.cut_offset for start in self.recognition_sites(dna)
        )


#: A small standard catalogue (site, forward-strand cut offset).
ECORI = RestrictionEnzyme("EcoRI", "GAATTC", 1)
BAMHI = RestrictionEnzyme("BamHI", "GGATCC", 1)
HINDIII = RestrictionEnzyme("HindIII", "AAGCTT", 1)
NOTI = RestrictionEnzyme("NotI", "GCGGCCGC", 2)
SMAI = RestrictionEnzyme("SmaI", "CCCGGG", 3)  # blunt cutter
HAEIII = RestrictionEnzyme("HaeIII", "GGCC", 2)  # blunt cutter
ECORV = RestrictionEnzyme("EcoRV", "GATATC", 3)  # blunt cutter

STANDARD_ENZYMES: tuple[RestrictionEnzyme, ...] = (
    ECORI, BAMHI, HINDIII, NOTI, SMAI, HAEIII, ECORV,
)


def enzyme_by_name(name: str) -> RestrictionEnzyme:
    """Look up a catalogue enzyme by (case-insensitive) name."""
    for enzyme in STANDARD_ENZYMES:
        if enzyme.name.lower() == name.lower():
            return enzyme
    raise SequenceError(f"no restriction enzyme named {name!r}")


def digest(
    dna: DnaSequence, enzymes: "RestrictionEnzyme | list[RestrictionEnzyme]"
) -> list[DnaSequence]:
    """Cut *dna* with one or more enzymes; returns the ordered fragments.

    A digestion with no recognition sites returns the input as a single
    fragment.  The DNA is treated as linear.
    """
    if isinstance(enzymes, RestrictionEnzyme):
        enzymes = [enzymes]
    cuts = sorted({
        position
        for enzyme in enzymes
        for position in enzyme.cut_positions(dna)
        if 0 < position < len(dna)
    })
    fragments: list[DnaSequence] = []
    previous = 0
    for cut in cuts:
        fragments.append(dna[previous:cut])
        previous = cut
    fragments.append(dna[previous:])
    return fragments


def fragment_lengths(
    dna: DnaSequence, enzymes: "RestrictionEnzyme | list[RestrictionEnzyme]"
) -> list[int]:
    """The lengths of the digestion fragments (a virtual gel lane)."""
    return [len(fragment) for fragment in digest(dna, enzymes)]
