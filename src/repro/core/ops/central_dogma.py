"""The central-dogma operations of the mini algebra in section 4.2.

The paper's illustrative signature is::

    sorts  gene, primarytranscript, mrna, protein
    ops    transcribe:  gene              -> primarytranscript
           splice:      primarytranscript -> mrna
           translate:   mrna              -> protein

so that ``translate(splice(transcribe(g)))`` yields the protein a gene
codes for.  This module implements exactly those operations (plus
``reverse_transcribe`` and the ``express`` composition) over the GDT
values in :mod:`repro.core.types.entities`.

The paper notes (section 4.3) that the *operational* semantics of splicing
is biologically unknown — the cell computes it, we cannot.  Our ``splice``
therefore follows the procedure biologists use in practice: it relies on
the annotated exon structure carried by the transcript, which is how every
real annotation pipeline sidesteps the same gap in knowledge.
"""

from __future__ import annotations

from repro.core.ops.basic import dna_to_rna, rna_to_dna
from repro.core.ops.codon import CodonTable, STANDARD
from repro.core.types.annotation import Interval
from repro.core.types.entities import Gene, MRna, PrimaryTranscript, Protein
from repro.core.types.sequence import DnaSequence, ProteinSequence, RnaSequence
from repro.errors import TranslationError


def transcribe(gene: Gene) -> PrimaryTranscript:
    """Copy a gene into its primary (unspliced) RNA transcript.

    The gene value is already in coding orientation, so transcription is a
    re-lettering of the full genomic span, introns included, with the exon
    layout carried along for :func:`splice`.
    """
    return PrimaryTranscript(
        rna=dna_to_rna(gene.sequence),
        exons=gene.exons,
        gene_name=gene.name,
    )


def splice(transcript: PrimaryTranscript) -> MRna:
    """Remove the introns of a primary transcript, yielding mature mRNA."""
    codes = transcript.rna.codes()
    exonic = b"".join(
        codes[exon.start:exon.end] for exon in transcript.exons
    )
    return MRna(
        rna=RnaSequence.from_codes(exonic),
        gene_name=transcript.gene_name,
    )


def _locate_cds(rna: RnaSequence, table: CodonTable) -> Interval:
    """Find the coding region: first start codon to end of RNA."""
    text = str(rna)
    for position in range(0, len(text) - 2):
        if table.is_start(text[position:position + 3]):
            return Interval(position, len(text))
    raise TranslationError(
        "mRNA has no start codon and no annotated CDS"
    )


def translate(
    mrna: MRna,
    table: CodonTable = STANDARD,
    to_stop: bool = True,
) -> Protein:
    """Translate a mature mRNA into its protein.

    Uses the annotated CDS when the mRNA carries one, otherwise scans for
    the first start codon (which always translates to ``M``).  Translation
    proceeds codon by codon and, when ``to_stop`` is true (the default),
    ends at the first stop codon; with ``to_stop`` false the stop is kept
    as ``*`` and translation continues to the last full codon.
    """
    cds = mrna.cds if mrna.cds is not None else _locate_cds(mrna.rna, table)
    text = str(mrna.rna)[cds.start:cds.end]
    if len(text) < 3:
        raise TranslationError("coding region shorter than one codon")

    residues: list[str] = []
    for offset in range(0, len(text) - 2, 3):
        codon = text[offset:offset + 3]
        if offset == 0 and table.is_start(codon):
            # Alternative start codons are read as methionine in vivo.
            residues.append("M")
            continue
        amino = table.amino_acid(codon)
        if amino == "*" and to_stop:
            break
        residues.append(amino)

    return Protein(
        sequence=ProteinSequence("".join(residues)),
        gene_name=mrna.gene_name,
        name=f"{mrna.gene_name} protein" if mrna.gene_name else None,
    )


def reverse_transcribe(mrna: MRna) -> DnaSequence:
    """Produce the cDNA of a mature mRNA (re-lettering U → T)."""
    return rna_to_dna(mrna.rna)


def express(gene: Gene, table: CodonTable = STANDARD) -> Protein:
    """The composition the paper uses as its running example.

    ``express(g) == translate(splice(transcribe(g)))``.
    """
    return translate(splice(transcribe(gene)), table=table)
