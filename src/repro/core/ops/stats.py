"""Physico-chemical and statistical sequence properties.

The "specialty evaluation functions" of requirement C14: melting
temperature, molecular weight, isoelectric point, hydropathy, codon usage.
All are standard textbook formulas, implemented directly so they can be
registered as UDFs in the Unifying Database.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.core.ops.codon import CodonTable, STANDARD
from repro.core.types.sequence import (
    DnaSequence,
    PackedSequence,
    ProteinSequence,
    RnaSequence,
)
from repro.errors import SequenceError

# Average monoisotopic-free residue masses (Da) of amino acids in a chain.
_RESIDUE_MASS = {
    "A": 71.0788, "R": 156.1875, "N": 114.1038, "D": 115.0886,
    "C": 103.1388, "E": 129.1155, "Q": 128.1307, "G": 57.0519,
    "H": 137.1411, "I": 113.1594, "L": 113.1594, "K": 128.1741,
    "M": 131.1926, "F": 147.1766, "P": 97.1167, "S": 87.0782,
    "T": 101.1051, "W": 186.2132, "Y": 163.1760, "V": 99.1326,
    "U": 150.0388, "O": 237.3018,
}
_WATER_MASS = 18.01524

# Average masses (Da) of nucleotide monophosphates within a chain.
_DNA_BASE_MASS = {"A": 313.21, "C": 289.18, "G": 329.21, "T": 304.2}
_RNA_BASE_MASS = {"A": 329.21, "C": 305.18, "G": 345.21, "U": 306.17}

# pKa values for the isoelectric-point calculation (EMBOSS set).
_PKA_POSITIVE = {"K": 10.8, "R": 12.5, "H": 6.5}
_PKA_NEGATIVE = {"D": 3.9, "E": 4.1, "C": 8.5, "Y": 10.1}
_PKA_N_TERMINUS = 8.6
_PKA_C_TERMINUS = 3.6

# Kyte–Doolittle hydropathy index.
_KYTE_DOOLITTLE = {
    "A": 1.8, "R": -4.5, "N": -3.5, "D": -3.5, "C": 2.5,
    "Q": -3.5, "E": -3.5, "G": -0.4, "H": -3.2, "I": 4.5,
    "L": 3.8, "K": -3.9, "M": 1.9, "F": 2.8, "P": -1.6,
    "S": -0.8, "T": -0.7, "W": -0.9, "Y": -1.3, "V": 4.2,
}


def melting_temperature(dna: DnaSequence) -> float:
    """Estimated Tm in °C.

    Wallace rule (2·AT + 4·GC) for primers up to 13 nt; the GC-fraction
    formula ``64.9 + 41·(GC − 16.4/N)`` for longer sequences.  Ambiguous
    bases contribute their expected value by treating S as GC and W as AT;
    other ambiguity codes count half.
    """
    text = str(dna)
    if not text:
        raise SequenceError("cannot compute Tm of an empty sequence")
    gc = sum(text.count(base) for base in "GCS")
    at = sum(text.count(base) for base in "ATW")
    other = len(text) - gc - at
    gc_effective = gc + other / 2
    at_effective = at + other / 2
    if len(text) < 14:
        return 2.0 * at_effective + 4.0 * gc_effective
    return 64.9 + 41.0 * (gc_effective - 16.4) / len(text)


def molecular_weight(sequence: PackedSequence) -> float:
    """Average molecular weight in Daltons.

    Ambiguous symbols contribute the mean mass of their expansions; gaps
    contribute nothing.
    """
    alphabet = sequence.alphabet
    if isinstance(sequence, ProteinSequence):
        table = _RESIDUE_MASS
        terminal = _WATER_MASS
    elif isinstance(sequence, RnaSequence):
        table = _RNA_BASE_MASS
        terminal = _WATER_MASS + 61.96  # 5'-phosphate adjustment
    elif isinstance(sequence, DnaSequence):
        table = _DNA_BASE_MASS
        terminal = _WATER_MASS + 61.96
    else:
        raise SequenceError(
            f"no mass table for alphabet {alphabet.name!r}"
        )

    total = 0.0
    counted = 0
    for symbol in str(sequence):
        if symbol in ("-", "*"):
            continue
        if symbol in table:
            total += table[symbol]
        else:
            expansion = [table[s] for s in alphabet.expand(symbol)
                         if s in table]
            if not expansion:
                continue
            total += sum(expansion) / len(expansion)
        counted += 1
    return total + terminal if counted else 0.0


def _net_charge(composition: Counter, ph: float) -> float:
    positive = sum(
        count / (1.0 + 10.0 ** (ph - pka))
        for residue, pka in _PKA_POSITIVE.items()
        for count in (composition.get(residue, 0),)
    )
    positive += 1.0 / (1.0 + 10.0 ** (ph - _PKA_N_TERMINUS))
    negative = sum(
        count / (1.0 + 10.0 ** (pka - ph))
        for residue, pka in _PKA_NEGATIVE.items()
        for count in (composition.get(residue, 0),)
    )
    negative += 1.0 / (1.0 + 10.0 ** (_PKA_C_TERMINUS - ph))
    return positive - negative


def isoelectric_point(protein: ProteinSequence) -> float:
    """The pH at which the protein's net charge is zero (bisection)."""
    if not len(protein):
        raise SequenceError("cannot compute pI of an empty protein")
    composition = Counter(str(protein))
    low, high = 0.0, 14.0
    for _ in range(60):
        mid = (low + high) / 2.0
        if _net_charge(composition, mid) > 0:
            low = mid
        else:
            high = mid
    return round((low + high) / 2.0, 3)


def hydropathy(protein: ProteinSequence) -> float:
    """Grand average of hydropathy (GRAVY) by Kyte–Doolittle."""
    values = [
        _KYTE_DOOLITTLE[residue]
        for residue in str(protein)
        if residue in _KYTE_DOOLITTLE
    ]
    if not values:
        raise SequenceError("protein has no scoreable residues")
    return sum(values) / len(values)


def hydropathy_profile(
    protein: ProteinSequence, window: int = 9
) -> list[float]:
    """Sliding-window Kyte–Doolittle profile (membrane-span spotting)."""
    if window < 1:
        raise SequenceError("window must be positive")
    text = str(protein)
    scores = [_KYTE_DOOLITTLE.get(residue, 0.0) for residue in text]
    if len(scores) < window:
        return []
    profile = []
    running = sum(scores[:window])
    profile.append(running / window)
    for position in range(window, len(scores)):
        running += scores[position] - scores[position - window]
        profile.append(running / window)
    return profile


def codon_usage(
    rna: RnaSequence, table: CodonTable = STANDARD
) -> dict[str, float]:
    """Relative usage of each codon within its synonymous family.

    Returns codon → fraction among the codons coding the same amino acid
    in this sequence.  Reading starts at position 0; trailing partial
    codons are ignored.
    """
    text = str(rna)
    counts: Counter = Counter(
        text[i:i + 3] for i in range(0, len(text) - 2, 3)
    )
    by_amino: dict[str, int] = Counter()
    amino_of: dict[str, str] = {}
    for codon, count in counts.items():
        try:
            amino = table.amino_acid(codon)
        except Exception:
            continue
        amino_of[codon] = amino
        by_amino[amino] += count
    return {
        codon: counts[codon] / by_amino[amino_of[codon]]
        for codon in amino_of
    }


def shannon_entropy(sequence: PackedSequence) -> float:
    """Per-symbol Shannon entropy in bits (complexity screen)."""
    text = str(sequence)
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    return -sum(
        (count / total) * math.log2(count / total)
        for count in counts.values()
    )
