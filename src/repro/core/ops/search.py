"""Subsequence and motif search, including IUPAC-ambiguity matching.

``contains`` is the paper's worked example of a genomic predicate embedded
in SQL (section 6.3)::

    SELECT id FROM DNAFragments WHERE contains(fragment, 'ATTGCCATA')

Exact search runs on the packed code buffers (a C-speed ``bytes.find``);
ambiguous search compares symbol sets position by position, so a pattern
like ``TATAWAW`` (the TATA box) matches every concrete instantiation, and
an ambiguous *subject* base like ``N`` matches any pattern base — which is
how uncertain repository data (C9) still participates in queries.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterator

from repro.core.types.alphabet import Alphabet
from repro.core.types.sequence import PackedSequence
from repro.errors import SequenceError


def _pattern_sequence(
    subject: PackedSequence, pattern: "PackedSequence | str"
) -> PackedSequence:
    if isinstance(pattern, PackedSequence):
        if pattern.alphabet != subject.alphabet:
            raise SequenceError(
                f"pattern alphabet {pattern.alphabet.name!r} does not match "
                f"subject alphabet {subject.alphabet.name!r}"
            )
        return pattern
    return type(subject)(pattern)


def _has_ambiguity(alphabet: Alphabet, text: str) -> bool:
    return any(alphabet.is_ambiguous(symbol) for symbol in set(text))


def find_exact(
    subject: PackedSequence, pattern: "PackedSequence | str"
) -> Iterator[int]:
    """Yield every (possibly overlapping) exact occurrence start."""
    needle = _pattern_sequence(subject, pattern).codes()
    haystack = subject.codes()
    if not needle:
        return
    position = haystack.find(needle)
    while position != -1:
        yield position
        position = haystack.find(needle, position + 1)


@lru_cache(maxsize=512)
def _compatibility_class(alphabet_name: str, pattern_symbol: str) -> str:
    """All alphabet symbols whose expansion intersects the pattern's."""
    from repro.core.types.alphabet import alphabet_by_name

    alphabet = alphabet_by_name(alphabet_name)
    return "".join(
        symbol for symbol in alphabet.symbols
        if alphabet.matches(symbol, pattern_symbol)
    )


@lru_cache(maxsize=512)
def _motif_regex(alphabet_name: str, pattern_text: str) -> "re.Pattern[str]":
    """A compiled regex matching the motif under two-way IUPAC semantics.

    Each pattern symbol becomes a character class of every subject symbol
    it could denote (pattern ``A`` matches subject ``N`` because N may be
    an A), so both pattern- and subject-side ambiguity are honoured by a
    single C-speed scan.  The lookahead wrapper yields overlapping hits.
    """
    classes = "".join(
        "[" + re.escape(_compatibility_class(alphabet_name, symbol)) + "]"
        for symbol in pattern_text
    )
    return re.compile(f"(?={classes})")


def find_motif(
    subject: PackedSequence, pattern: "PackedSequence | str"
) -> Iterator[int]:
    """Yield every occurrence start, honouring IUPAC ambiguity both ways.

    A position matches when the symbol sets of pattern base and subject
    base intersect (``alphabet.matches``).  Uses the fast exact scanner
    when neither side contains ambiguity codes, and a compiled
    compatibility-class regex otherwise.
    """
    alphabet = subject.alphabet
    pattern_seq = _pattern_sequence(subject, pattern)
    pattern_text = str(pattern_seq)
    subject_text = str(subject)
    if not pattern_text or len(pattern_text) > len(subject_text):
        return
    if not (_has_ambiguity(alphabet, pattern_text)
            or _has_ambiguity(alphabet, subject_text)):
        yield from find_exact(subject, pattern_seq)
        return

    regex = _motif_regex(alphabet.name, pattern_text)
    for match in regex.finditer(subject_text):
        yield match.start()


def contains(
    subject: PackedSequence, pattern: "PackedSequence | str"
) -> bool:
    """The SQL-embeddable predicate of section 6.3 (ambiguity-aware)."""
    return next(find_motif(subject, pattern), None) is not None


def count_occurrences(
    subject: PackedSequence, pattern: "PackedSequence | str"
) -> int:
    """Number of (possibly overlapping) motif occurrences."""
    return sum(1 for _ in find_motif(subject, pattern))


def first_occurrence(
    subject: PackedSequence, pattern: "PackedSequence | str"
) -> int:
    """Start of the first motif occurrence, or ``-1`` when absent."""
    return next(find_motif(subject, pattern), -1)
