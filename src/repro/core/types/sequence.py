"""Compact, immutable genomic sequences.

Section 4.3 of the paper demands that genomic data types "not employ
pointer data structures in main memory but be embedded into compact storage
areas which can be efficiently transferred between main memory and disk".
:class:`PackedSequence` realizes that: symbols are stored as packed integer
codes in a single contiguous ``bytes`` buffer — 4 bits per symbol for
nucleotide alphabets (two bases per byte), 8 bits for the protein alphabet —
and :meth:`PackedSequence.to_bytes` / :meth:`PackedSequence.from_bytes`
move a sequence to and from disk with a single buffer copy.

Concrete classes:

- :class:`DnaSequence` — IUPAC DNA (including ambiguity codes).
- :class:`RnaSequence` — IUPAC RNA.
- :class:`ProteinSequence` — amino acids including stop ``*``.
"""

from __future__ import annotations

import struct
from typing import ClassVar, Iterator, Type, TypeVar

from repro.core.types.alphabet import (
    DNA,
    PROTEIN,
    RNA,
    Alphabet,
    alphabet_by_name,
)
from repro.errors import SequenceError

S = TypeVar("S", bound="PackedSequence")

# Decode table: one packed byte -> the two 4-bit codes it holds.
_UNPACK4 = [bytes(((byte >> 4) & 0xF, byte & 0xF)) for byte in range(256)]


def _pack4(codes: bytes) -> bytes:
    """Pack one-code-per-byte data into two codes per byte (high, low)."""
    if len(codes) % 2:
        codes += b"\x00"
    return bytes(
        (high << 4) | low for high, low in zip(codes[::2], codes[1::2])
    )


def _unpack4(packed: bytes, length: int) -> bytes:
    """Inverse of :func:`_pack4`; *length* trims the possible pad code."""
    unpacked = b"".join(_UNPACK4[byte] for byte in packed)
    return unpacked[:length]


class PackedSequence:
    """Immutable sequence over a fixed alphabet, stored bit-packed.

    Subclasses set the class attribute :attr:`alphabet`.  Instances behave
    like immutable strings restricted to the alphabet: they support
    indexing, slicing (returning a sequence of the same type), iteration,
    concatenation, ``in``, ``count`` and ``find``, equality and hashing.
    """

    alphabet: ClassVar[Alphabet]

    __slots__ = ("_packed", "_length")

    def __init__(self, text: str = "") -> None:
        codes = self.alphabet.encode(text.upper())
        self._length = len(codes)
        self._packed = self._pack(codes)

    # -- packing helpers ----------------------------------------------------

    @classmethod
    def _is_nibble_packed(cls) -> bool:
        return len(cls.alphabet) <= 16

    @classmethod
    def _pack(cls, codes: bytes) -> bytes:
        return _pack4(codes) if cls._is_nibble_packed() else bytes(codes)

    def codes(self) -> bytes:
        """The sequence as one integer code per byte (unpacked form)."""
        if self._is_nibble_packed():
            return _unpack4(self._packed, self._length)
        return self._packed

    @classmethod
    def from_codes(cls: Type[S], codes: bytes) -> S:
        """Build a sequence directly from unpacked integer codes."""
        if codes and max(codes) >= len(cls.alphabet):
            raise SequenceError(
                f"code {max(codes)} out of range for {cls.alphabet.name}"
            )
        instance = cls.__new__(cls)
        instance._length = len(codes)
        instance._packed = cls._pack(codes)
        return instance

    # -- string-like protocol ------------------------------------------------

    def __str__(self) -> str:
        return self.alphabet.decode(self.codes())

    def __repr__(self) -> str:
        text = str(self)
        shown = text if len(text) <= 40 else text[:37] + "..."
        return f"{type(self).__name__}({shown!r})"

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator[str]:
        return iter(str(self))

    def __getitem__(self: S, item: int | slice) -> str | S:
        if isinstance(item, slice):
            return type(self).from_codes(self.codes()[item])
        if not -self._length <= item < self._length:
            raise IndexError("sequence index out of range")
        if item < 0:
            item += self._length
        if self._is_nibble_packed():
            byte = self._packed[item // 2]
            code = (byte >> 4) if item % 2 == 0 else (byte & 0xF)
        else:
            code = self._packed[item]
        return self.alphabet.symbol(code)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedSequence):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._length == other._length
            and self._packed == other._packed
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._length, self._packed))

    def __add__(self: S, other: S) -> S:
        if type(other) is not type(self):
            raise SequenceError(
                f"cannot concatenate {type(self).__name__} "
                f"with {type(other).__name__}"
            )
        return type(self).from_codes(self.codes() + other.codes())

    def __mul__(self: S, times: int) -> S:
        return type(self).from_codes(self.codes() * times)

    def __contains__(self, other: object) -> bool:
        if isinstance(other, PackedSequence):
            return other.codes() in self.codes()
        if isinstance(other, str):
            return self.alphabet.encode(other.upper()) in self.codes()
        return False

    # -- searching -----------------------------------------------------------

    def _needle_codes(self, needle: "PackedSequence | str") -> bytes:
        if isinstance(needle, PackedSequence):
            return needle.codes()
        return self.alphabet.encode(needle.upper())

    def find(self, needle: "PackedSequence | str", start: int = 0) -> int:
        """Index of the first exact occurrence of *needle*, or ``-1``."""
        return self.codes().find(self._needle_codes(needle), start)

    def count(self, needle: "PackedSequence | str") -> int:
        """Number of non-overlapping exact occurrences of *needle*."""
        pattern = self._needle_codes(needle)
        if not pattern:
            return 0
        return self.codes().count(pattern)

    def count_symbol(self, symbol: str) -> int:
        """Number of positions holding exactly *symbol*."""
        code = self.alphabet.code(symbol.upper())
        return self.codes().count(code)

    def reverse(self: S) -> S:
        """The sequence read right-to-left (no complementing)."""
        return type(self).from_codes(self.codes()[::-1])

    # -- serialization (the "compact storage area" of section 4.3) -----------

    _HEADER = struct.Struct("<B8sI")

    def to_bytes(self) -> bytes:
        """Serialize to a compact, self-describing byte string.

        Layout: 1-byte name length, 8-byte padded alphabet name, 4-byte
        symbol count, then the packed payload.  The payload is the in-memory
        buffer itself — serialization is a header prepend, not a traversal.
        """
        name = self.alphabet.name.encode("ascii")[:8]
        header = self._HEADER.pack(len(name), name.ljust(8, b"\x00"),
                                   self._length)
        return header + self._packed

    @classmethod
    def from_bytes(cls: Type[S], data: bytes) -> S:
        """Inverse of :meth:`to_bytes` (validates the alphabet name)."""
        if len(data) < cls._HEADER.size:
            raise SequenceError("truncated sequence serialization")
        name_len, raw_name, length = cls._HEADER.unpack_from(data)
        name = raw_name[:name_len].decode("ascii")
        expected = cls.alphabet.name
        if name != expected:
            raise SequenceError(
                f"serialized alphabet {name!r} does not match {expected!r}"
            )
        packed = data[cls._HEADER.size:]
        expected_size = (length + 1) // 2 if cls._is_nibble_packed() else length
        if len(packed) != expected_size:
            raise SequenceError("corrupt sequence serialization payload")
        instance = cls.__new__(cls)
        instance._length = length
        instance._packed = bytes(packed)
        return instance

    @property
    def nbytes(self) -> int:
        """Size in bytes of the packed in-memory payload."""
        return len(self._packed)


class DnaSequence(PackedSequence):
    """A DNA sequence over the IUPAC DNA alphabet (4 bits per base)."""

    alphabet = DNA
    __slots__ = ()


class RnaSequence(PackedSequence):
    """An RNA sequence over the IUPAC RNA alphabet (4 bits per base)."""

    alphabet = RNA
    __slots__ = ()


class ProteinSequence(PackedSequence):
    """An amino-acid sequence (one byte per residue, stop = ``*``)."""

    alphabet = PROTEIN
    __slots__ = ()


_CLASS_BY_ALPHABET = {
    DNA.name: DnaSequence,
    RNA.name: RnaSequence,
    PROTEIN.name: ProteinSequence,
}


def sequence_class_for(alphabet: Alphabet | str) -> Type[PackedSequence]:
    """Return the sequence class for an alphabet (or alphabet name)."""
    name = alphabet if isinstance(alphabet, str) else alphabet.name
    try:
        return _CLASS_BY_ALPHABET[name]
    except KeyError:
        raise SequenceError(f"no sequence class for alphabet {name!r}") from None


def sequence_from_bytes(data: bytes) -> PackedSequence:
    """Deserialize any sequence, dispatching on the embedded alphabet name."""
    if len(data) < PackedSequence._HEADER.size:
        raise SequenceError("truncated sequence serialization")
    name_len, raw_name, _ = PackedSequence._HEADER.unpack_from(data)
    name = raw_name[:name_len].decode("ascii")
    alphabet_by_name(name)  # validates the name
    return sequence_class_for(name).from_bytes(data)
