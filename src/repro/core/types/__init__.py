"""Genomic data types (GDTs): the sorts of the Genomics Algebra."""

from repro.core.types.alphabet import (
    DNA,
    PROTEIN,
    RNA,
    STRICT_DNA,
    Alphabet,
    alphabet_by_name,
)
from repro.core.types.annotation import (
    FORWARD,
    REVERSE,
    AnnotationSet,
    Feature,
    Interval,
    Location,
)
from repro.core.types.entities import (
    Chromosome,
    Gene,
    Genome,
    MRna,
    PrimaryTranscript,
    Protein,
)
from repro.core.types.sequence import (
    DnaSequence,
    PackedSequence,
    ProteinSequence,
    RnaSequence,
    sequence_class_for,
    sequence_from_bytes,
)
from repro.core.types.uncertainty import (
    Alternatives,
    Uncertain,
    UncertaintyError,
)

__all__ = [
    "DNA",
    "RNA",
    "PROTEIN",
    "STRICT_DNA",
    "Alphabet",
    "alphabet_by_name",
    "FORWARD",
    "REVERSE",
    "Interval",
    "Location",
    "Feature",
    "AnnotationSet",
    "PackedSequence",
    "DnaSequence",
    "RnaSequence",
    "ProteinSequence",
    "sequence_class_for",
    "sequence_from_bytes",
    "Gene",
    "PrimaryTranscript",
    "MRna",
    "Protein",
    "Chromosome",
    "Genome",
    "Uncertain",
    "Alternatives",
    "UncertaintyError",
]
