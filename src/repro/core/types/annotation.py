"""Locations, features and annotations on genomic sequences.

These follow the GenBank/EMBL feature-table model, which the ETL wrappers
parse into: a :class:`Feature` has a kind (``"gene"``, ``"CDS"``,
``"exon"`` ...), a :class:`Location` — one or more intervals on a strand —
and free-form qualifiers.  :class:`AnnotationSet` is the ordered container
a sequence-bearing GDT carries them in.

Coordinates are 0-based, half-open (Python slice convention) throughout
this package; the flat-file wrappers convert from the 1-based inclusive
coordinates the source formats use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import FeatureError

FORWARD = 1
REVERSE = -1


@dataclass(frozen=True, order=True)
class Interval:
    """A 0-based, half-open span ``[start, end)`` on a sequence."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise FeatureError(
                f"invalid interval [{self.start}, {self.end})"
            )

    def __len__(self) -> int:
        return self.end - self.start

    def __contains__(self, position: int) -> bool:
        return self.start <= position < self.end

    def overlaps(self, other: "Interval") -> bool:
        """True when the two spans share at least one position."""
        return self.start < other.end and other.start < self.end

    def shifted(self, offset: int) -> "Interval":
        """The interval translated by *offset* positions."""
        return Interval(self.start + offset, self.end + offset)

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping span, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return Interval(start, end) if start < end else None


@dataclass(frozen=True)
class Location:
    """One or more ordered intervals on a strand (a GenBank ``join``).

    Intervals must be non-overlapping and in ascending order; the strand is
    :data:`FORWARD` (+1) or :data:`REVERSE` (-1).  For reverse-strand
    locations the intervals are still stored in ascending genomic order —
    biological order is obtained by the consumer reversing them.
    """

    intervals: tuple[Interval, ...]
    strand: int = FORWARD

    def __post_init__(self) -> None:
        if self.strand not in (FORWARD, REVERSE):
            raise FeatureError(f"strand must be +1 or -1, got {self.strand}")
        if not self.intervals:
            raise FeatureError("a location needs at least one interval")
        for before, after in zip(self.intervals, self.intervals[1:]):
            if after.start < before.end:
                raise FeatureError(
                    "location intervals must be ascending and disjoint: "
                    f"{before} then {after}"
                )

    @classmethod
    def simple(cls, start: int, end: int, strand: int = FORWARD) -> "Location":
        """A single-interval location."""
        return cls((Interval(start, end),), strand)

    @classmethod
    def join(cls, spans: Iterable[tuple[int, int]],
             strand: int = FORWARD) -> "Location":
        """A multi-interval location from ``(start, end)`` pairs."""
        return cls(tuple(Interval(s, e) for s, e in spans), strand)

    @property
    def start(self) -> int:
        """Leftmost genomic coordinate covered."""
        return self.intervals[0].start

    @property
    def end(self) -> int:
        """Rightmost genomic coordinate covered (exclusive)."""
        return self.intervals[-1].end

    def __len__(self) -> int:
        return sum(len(interval) for interval in self.intervals)

    def __contains__(self, position: int) -> bool:
        return any(position in interval for interval in self.intervals)

    def overlaps(self, other: "Location") -> bool:
        """True when any interval of *self* overlaps any of *other*."""
        return any(
            mine.overlaps(theirs)
            for mine in self.intervals
            for theirs in other.intervals
        )

    def shifted(self, offset: int) -> "Location":
        return Location(
            tuple(interval.shifted(offset) for interval in self.intervals),
            self.strand,
        )

    def extract(self, text: str) -> str:
        """Concatenate the covered stretches of *text* in biological order.

        For reverse-strand locations the caller still has to complement the
        result; this method only handles ordering.
        """
        if self.end > len(text):
            raise FeatureError(
                f"location end {self.end} beyond sequence of length {len(text)}"
            )
        pieces = [text[interval.start:interval.end]
                  for interval in self.intervals]
        if self.strand == REVERSE:
            pieces = [piece[::-1] for piece in reversed(pieces)]
        return "".join(pieces)


@dataclass(frozen=True)
class Feature:
    """An annotated region: kind + location + qualifiers.

    Qualifiers mirror the ``/key="value"`` pairs of flat-file feature
    tables (``/gene="lacZ"``, ``/product="beta-galactosidase"``...).
    """

    kind: str
    location: Location
    qualifiers: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise FeatureError("a feature needs a non-empty kind")
        object.__setattr__(self, "qualifiers", dict(self.qualifiers))

    def qualifier(self, key: str, default: str | None = None) -> str | None:
        return self.qualifiers.get(key, default)

    def __hash__(self) -> int:
        return hash((self.kind, self.location,
                     tuple(sorted(self.qualifiers.items()))))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Feature):
            return NotImplemented
        return (self.kind == other.kind
                and self.location == other.location
                and dict(self.qualifiers) == dict(other.qualifiers))


class AnnotationSet:
    """An ordered, queryable collection of :class:`Feature` objects."""

    __slots__ = ("_features",)

    def __init__(self, features: Iterable[Feature] = ()) -> None:
        self._features = list(features)

    def __len__(self) -> int:
        return len(self._features)

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._features)

    def __repr__(self) -> str:
        return f"AnnotationSet({len(self._features)} features)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnnotationSet):
            return NotImplemented
        return self._features == other._features

    def add(self, feature: Feature) -> None:
        self._features.append(feature)

    def of_kind(self, kind: str) -> list[Feature]:
        """All features whose kind equals *kind*."""
        return [f for f in self._features if f.kind == kind]

    def overlapping(self, start: int, end: int) -> list[Feature]:
        """All features whose location overlaps ``[start, end)``."""
        probe = Location.simple(start, end)
        return [f for f in self._features if f.location.overlaps(probe)]

    def with_qualifier(self, key: str, value: str | None = None
                       ) -> list[Feature]:
        """Features carrying qualifier *key* (optionally with *value*)."""
        found = []
        for feature in self._features:
            if key not in feature.qualifiers:
                continue
            if value is None or feature.qualifiers[key] == value:
                found.append(feature)
        return found
