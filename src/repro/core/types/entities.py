"""High-level genomic entities: gene, transcripts, protein, chromosome, genome.

These are the "high-level genomic data types (GDTs)" of the paper's
abstract — the sorts of the Genomics Algebra (section 4.2).  Each wraps a
packed sequence plus structure (exon layout, coding region, annotations),
and each is a plain value object the adapter can serialize into the
Unifying Database as an opaque UDT.

The central-dogma operations over these types (``transcribe``, ``splice``,
``translate``) live in :mod:`repro.core.ops.central_dogma`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.types.annotation import AnnotationSet, Interval
from repro.core.types.sequence import DnaSequence, ProteinSequence, RnaSequence
from repro.errors import FeatureError


@dataclass
class Gene:
    """A gene: a genomic DNA span with an exon/intron structure.

    ``sequence`` is the genomic region read 5'→3' along the coding strand
    (the wrappers reverse-complement minus-strand genes on extraction, so a
    ``Gene`` value is always in coding orientation).  ``exons`` are
    intervals **relative to** ``sequence``, ascending and disjoint; the
    stretches between them are the introns removed by splicing.
    """

    name: str
    sequence: DnaSequence
    exons: tuple[Interval, ...] = ()
    organism: str | None = None
    accession: str | None = None
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    def __post_init__(self) -> None:
        if not self.name:
            raise FeatureError("a gene needs a non-empty name")
        if not self.exons:
            self.exons = (Interval(0, len(self.sequence)),)
        self.exons = tuple(self.exons)
        for before, after in zip(self.exons, self.exons[1:]):
            if after.start < before.end:
                raise FeatureError(
                    f"gene {self.name!r}: exons must be ascending and "
                    f"disjoint ({before} then {after})"
                )
        if self.exons[-1].end > len(self.sequence):
            raise FeatureError(
                f"gene {self.name!r}: exon end {self.exons[-1].end} beyond "
                f"sequence of length {len(self.sequence)}"
            )

    @property
    def introns(self) -> tuple[Interval, ...]:
        """The gaps between consecutive exons."""
        return tuple(
            Interval(before.end, after.start)
            for before, after in zip(self.exons, self.exons[1:])
            if after.start > before.end
        )

    @property
    def exonic_length(self) -> int:
        """Total length of the exons (the length of the mature mRNA)."""
        return sum(len(exon) for exon in self.exons)

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass
class PrimaryTranscript:
    """The unspliced RNA copy of a gene (product of ``transcribe``)."""

    rna: RnaSequence
    exons: tuple[Interval, ...]
    gene_name: str | None = None

    def __post_init__(self) -> None:
        self.exons = tuple(self.exons)
        if not self.exons:
            self.exons = (Interval(0, len(self.rna)),)
        if self.exons[-1].end > len(self.rna):
            raise FeatureError(
                "primary transcript exons extend beyond the RNA"
            )

    def __len__(self) -> int:
        return len(self.rna)


@dataclass
class MRna:
    """A mature messenger RNA (product of ``splice``).

    ``cds`` optionally marks the coding region within the mRNA; when absent,
    ``translate`` scans for the first start codon.
    """

    rna: RnaSequence
    cds: Interval | None = None
    gene_name: str | None = None

    def __post_init__(self) -> None:
        if self.cds is not None and self.cds.end > len(self.rna):
            raise FeatureError("mRNA CDS extends beyond the RNA")

    def __len__(self) -> int:
        return len(self.rna)


@dataclass
class Protein:
    """An amino-acid chain, optionally annotated (product of ``translate``)."""

    sequence: ProteinSequence
    name: str | None = None
    gene_name: str | None = None
    organism: str | None = None
    accession: str | None = None
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass
class Chromosome:
    """A named DNA molecule carrying genes and free-form features."""

    name: str
    sequence: DnaSequence
    genes: tuple[Gene, ...] = ()
    annotations: AnnotationSet = field(default_factory=AnnotationSet)

    def __post_init__(self) -> None:
        self.genes = tuple(self.genes)

    def __len__(self) -> int:
        return len(self.sequence)

    def gene(self, name: str) -> Gene:
        """Look up a gene by name (raises :class:`FeatureError` if absent)."""
        for gene in self.genes:
            if gene.name == name:
                return gene
        raise FeatureError(
            f"chromosome {self.name!r} has no gene named {name!r}"
        )


@dataclass
class Genome:
    """A complete genome: an organism's chromosomes."""

    organism: str
    chromosomes: tuple[Chromosome, ...] = ()

    def __post_init__(self) -> None:
        self.chromosomes = tuple(self.chromosomes)
        names = [chromosome.name for chromosome in self.chromosomes]
        if len(set(names)) != len(names):
            raise FeatureError(
                f"genome {self.organism!r} has duplicate chromosome names"
            )

    def __len__(self) -> int:
        """Total base count across all chromosomes."""
        return sum(len(chromosome) for chromosome in self.chromosomes)

    def chromosome(self, name: str) -> Chromosome:
        """Look up a chromosome by name."""
        for chromosome in self.chromosomes:
            if chromosome.name == name:
                return chromosome
        raise FeatureError(
            f"genome {self.organism!r} has no chromosome named {name!r}"
        )

    def genes(self) -> Iterator[Gene]:
        """Iterate over every gene on every chromosome."""
        for chromosome in self.chromosomes:
            yield from chromosome.genes
