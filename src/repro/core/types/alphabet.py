"""IUPAC alphabets for nucleotide and amino-acid sequences.

An :class:`Alphabet` is an ordered set of single-character symbols with a
stable integer code for each symbol.  The codes are what
:class:`~repro.core.types.sequence.PackedSequence` packs into its compact
byte buffer, so **the symbol order of the module-level alphabets must never
change** once data has been serialized with them.

The nucleotide alphabets include the full IUPAC ambiguity codes; each
ambiguous symbol expands to the set of concrete bases it may stand for,
which is what motif matching with ambiguity (problem C9 in the paper: data
whose exact reading is uncertain) relies on.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import AlphabetError


class Alphabet:
    """An ordered, immutable set of single-character symbols.

    Parameters
    ----------
    name:
        Human-readable name (``"dna"``, ``"protein"``...).
    symbols:
        The symbols in code order; code *i* is ``symbols[i]``.
    ambiguity:
        Maps an ambiguous symbol to the string of concrete symbols it may
        stand for.  Concrete symbols map to themselves implicitly.
    complement:
        Maps each symbol to its complement symbol; empty for alphabets
        without a complement (proteins).
    """

    def __init__(
        self,
        name: str,
        symbols: str,
        ambiguity: Mapping[str, str] | None = None,
        complement: Mapping[str, str] | None = None,
    ) -> None:
        if len(set(symbols)) != len(symbols):
            raise AlphabetError(f"duplicate symbols in alphabet {name!r}")
        self.name = name
        self.symbols = symbols
        self._codes = {symbol: code for code, symbol in enumerate(symbols)}
        self._ambiguity = dict(ambiguity or {})
        for symbol in symbols:
            self._ambiguity.setdefault(symbol, symbol)
        self._complement = dict(complement or {})
        self.bits_per_symbol = max(1, (len(symbols) - 1).bit_length())
        # Translation tables for bulk encode/decode via bytes.translate,
        # which runs in C and dominates naive per-symbol loops.
        code_bytes = bytes(range(len(symbols)))
        symbol_bytes = symbols.encode("ascii")
        self._encode_table = bytes.maketrans(symbol_bytes, code_bytes)
        self._decode_table = bytes.maketrans(code_bytes, symbol_bytes)
        self._symbol_set = frozenset(symbols)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._codes

    def __iter__(self) -> Iterator[str]:
        return iter(self.symbols)

    def __repr__(self) -> str:
        return f"Alphabet({self.name!r}, {len(self)} symbols)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self.name == other.name and self.symbols == other.symbols

    def __hash__(self) -> int:
        return hash((self.name, self.symbols))

    # -- coding ------------------------------------------------------------

    def code(self, symbol: str) -> int:
        """Return the integer code of *symbol*.

        Raises :class:`AlphabetError` for symbols outside the alphabet.
        """
        try:
            return self._codes[symbol]
        except KeyError:
            raise AlphabetError(
                f"symbol {symbol!r} is not in alphabet {self.name!r}"
            ) from None

    def symbol(self, code: int) -> str:
        """Return the symbol with integer code *code*."""
        try:
            return self.symbols[code]
        except IndexError:
            raise AlphabetError(
                f"code {code} is out of range for alphabet {self.name!r}"
            ) from None

    def encode(self, text: str) -> bytes:
        """Encode *text* to one code byte per symbol (pre-packing form)."""
        invalid = set(text) - self._symbol_set
        if invalid:
            bad = sorted(invalid)[0]
            raise AlphabetError(
                f"symbol {bad!r} is not in alphabet {self.name!r}"
            )
        return text.encode("ascii").translate(self._encode_table)

    def decode(self, codes: bytes) -> str:
        """Inverse of :meth:`encode`."""
        return codes.translate(self._decode_table).decode("ascii")

    # -- ambiguity and complement -------------------------------------------

    def expand(self, symbol: str) -> str:
        """Return the concrete symbols an (ambiguous) symbol stands for."""
        if symbol not in self._codes:
            raise AlphabetError(
                f"symbol {symbol!r} is not in alphabet {self.name!r}"
            )
        return self._ambiguity[symbol]

    def is_ambiguous(self, symbol: str) -> bool:
        """True if *symbol* stands for more than one concrete symbol."""
        return len(self.expand(symbol)) > 1

    def matches(self, first: str, second: str) -> bool:
        """True if two (possibly ambiguous) symbols can denote the same base.

        ``matches('N', 'A')`` is true, ``matches('R', 'Y')`` is false
        (purine vs. pyrimidine sets are disjoint).
        """
        return bool(set(self.expand(first)) & set(self.expand(second)))

    @property
    def has_complement(self) -> bool:
        return bool(self._complement)

    def complement(self, symbol: str) -> str:
        """Return the complement of *symbol* (nucleotide alphabets only)."""
        if not self._complement:
            raise AlphabetError(f"alphabet {self.name!r} has no complement")
        if symbol not in self._codes:
            raise AlphabetError(
                f"symbol {symbol!r} is not in alphabet {self.name!r}"
            )
        return self._complement[symbol]


def _nucleotide_ambiguity(t_or_u: str) -> dict[str, str]:
    """IUPAC ambiguity table with ``t_or_u`` as the thymine/uracil symbol."""
    t = t_or_u
    return {
        "R": "AG",
        "Y": "C" + t,
        "S": "CG",
        "W": "A" + t,
        "K": "G" + t,
        "M": "AC",
        "B": "CG" + t,
        "D": "AG" + t,
        "H": "AC" + t,
        "V": "ACG",
        "N": "ACG" + t,
    }


def _nucleotide_complement(t_or_u: str) -> dict[str, str]:
    t = t_or_u
    return {
        "A": t, t: "A", "C": "G", "G": "C",
        "R": "Y", "Y": "R", "S": "S", "W": "W",
        "K": "M", "M": "K", "B": "V", "V": "B",
        "D": "H", "H": "D", "N": "N", "-": "-",
    }


#: DNA with full IUPAC ambiguity codes and a gap symbol (16 symbols, 4 bits).
DNA = Alphabet(
    "dna",
    "ACGTRYSWKMBDHVN-",
    ambiguity=_nucleotide_ambiguity("T"),
    complement=_nucleotide_complement("T"),
)

#: RNA with full IUPAC ambiguity codes and a gap symbol (16 symbols, 4 bits).
RNA = Alphabet(
    "rna",
    "ACGURYSWKMBDHVN-",
    ambiguity=_nucleotide_ambiguity("U"),
    complement=_nucleotide_complement("U"),
)

#: The 20 standard amino acids, ambiguity codes (B, Z, J, X), stop (*),
#: selenocysteine (U), pyrrolysine (O) and a gap symbol.
PROTEIN = Alphabet(
    "protein",
    "ACDEFGHIKLMNPQRSTVWYBZJXUO*-",
    ambiguity={
        "B": "DN",
        "Z": "EQ",
        "J": "IL",
        "X": "ACDEFGHIKLMNPQRSTVWY",
    },
)

#: Unambiguous DNA (used by generators that must emit concrete bases).
STRICT_DNA = Alphabet(
    "strict_dna",
    "ACGT",
    complement={"A": "T", "T": "A", "C": "G", "G": "C"},
)


_BY_NAME = {
    alphabet.name: alphabet for alphabet in (DNA, RNA, PROTEIN, STRICT_DNA)
}


def alphabet_by_name(name: str) -> Alphabet:
    """Look up one of the module-level alphabets by its name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise AlphabetError(f"no registered alphabet named {name!r}") from None
