"""Uncertainty-carrying values (requirement C9 of the paper).

Genomic repositories hold noisy, conflicting data — the paper cites the
estimate that 30–60 % of GenBank sequences are erroneous (B10) and demands
that when two inconsistent readings exist and neither can be ruled out,
"access to both alternatives should be given" (C9).

Two wrappers realize this:

- :class:`Uncertain` attaches a confidence in ``[0, 1]`` and a provenance
  string to any value.
- :class:`Alternatives` holds several mutually exclusive
  :class:`Uncertain` readings of the same datum, so a query can see all of
  them, the most credible one, or a filtered subset.

Both are plain values: hashable when their payloads are, serializable by
the adapter, and usable as UDT attributes in the Unifying Database.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


class UncertaintyError(ReproError):
    """Invalid confidence value or empty alternative set."""


class Uncertain(Generic[T]):
    """A value together with a confidence and its provenance.

    Parameters
    ----------
    value:
        The payload (any type; typically a GDT value or scalar).
    confidence:
        Degree of belief in ``[0, 1]``; ``1.0`` means certain.
    source:
        Where the reading came from (repository name, experiment id, ...).
    """

    __slots__ = ("value", "confidence", "source")

    def __init__(self, value: T, confidence: float = 1.0,
                 source: str | None = None) -> None:
        if not 0.0 <= confidence <= 1.0:
            raise UncertaintyError(
                f"confidence must be in [0, 1], got {confidence}"
            )
        self.value = value
        self.confidence = float(confidence)
        self.source = source

    def __repr__(self) -> str:
        origin = f", source={self.source!r}" if self.source else ""
        return f"Uncertain({self.value!r}, {self.confidence:.3f}{origin})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Uncertain):
            return NotImplemented
        return (self.value == other.value
                and self.confidence == other.confidence
                and self.source == other.source)

    def __hash__(self) -> int:
        return hash((self.value, self.confidence, self.source))

    def is_certain(self) -> bool:
        """True when confidence is exactly 1."""
        return self.confidence == 1.0

    def scaled(self, factor: float) -> "Uncertain[T]":
        """A copy with confidence multiplied by *factor* (clamped to 1)."""
        return Uncertain(self.value, min(1.0, self.confidence * factor),
                         self.source)


class Alternatives(Generic[T]):
    """Mutually exclusive readings of one datum, each with a confidence.

    The container is ordered by descending confidence; ties keep insertion
    order, which makes reconciliation output deterministic.
    """

    __slots__ = ("_options",)

    def __init__(self, options: Iterable[Uncertain[T]]) -> None:
        ordered = sorted(
            enumerate(options), key=lambda pair: (-pair[1].confidence, pair[0])
        )
        self._options = tuple(option for _, option in ordered)
        if not self._options:
            raise UncertaintyError("Alternatives requires at least one option")

    @classmethod
    def of(cls, *values: T, confidences: Iterable[float] | None = None,
           sources: Iterable[str | None] | None = None) -> "Alternatives[T]":
        """Convenience constructor from bare values."""
        count = len(values)
        confidence_list = (list(confidences) if confidences is not None
                           else [1.0 / count] * count)
        source_list = (list(sources) if sources is not None
                       else [None] * count)
        if len(confidence_list) != count or len(source_list) != count:
            raise UncertaintyError(
                "confidences/sources must match the number of values"
            )
        return cls(
            Uncertain(value, conf, src)
            for value, conf, src in zip(values, confidence_list, source_list)
        )

    def __iter__(self) -> Iterator[Uncertain[T]]:
        return iter(self._options)

    def __len__(self) -> int:
        return len(self._options)

    def __repr__(self) -> str:
        return f"Alternatives({list(self._options)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alternatives):
            return NotImplemented
        return self._options == other._options

    def __hash__(self) -> int:
        return hash(self._options)

    def best(self) -> Uncertain[T]:
        """The highest-confidence reading."""
        return self._options[0]

    def values(self) -> tuple[T, ...]:
        """All candidate payloads, best first."""
        return tuple(option.value for option in self._options)

    def is_conflicting(self) -> bool:
        """True when more than one distinct payload remains possible.

        Distinctness is judged by type + full string form (``repr`` is
        unusable: packed sequences abbreviate theirs).
        """
        distinct = {(type(option.value).__name__, str(option.value))
                    for option in self._options}
        return len(distinct) > 1

    def add(self, option: Uncertain[T]) -> "Alternatives[T]":
        """A new container with *option* merged in (immutable update)."""
        return Alternatives((*self._options, option))

    def filtered(self, minimum_confidence: float) -> "Alternatives[T]":
        """Keep readings at or above *minimum_confidence*.

        Falls back to the single best reading when the filter would empty
        the container — a datum never silently disappears.
        """
        kept = [option for option in self._options
                if option.confidence >= minimum_confidence]
        return Alternatives(kept) if kept else Alternatives([self.best()])

    def normalized(self) -> "Alternatives[T]":
        """Rescale confidences to sum to 1 (when the total is positive)."""
        total = sum(option.confidence for option in self._options)
        if total <= 0:
            return self
        return Alternatives(
            Uncertain(option.value, option.confidence / total, option.source)
            for option in self._options
        )
