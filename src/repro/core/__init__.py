"""The paper's primary contribution: the Genomics Algebra.

Subpackages:

- :mod:`repro.core.types` — genomic data types (GDTs).
- :mod:`repro.core.ops` — genomic operations.
- :mod:`repro.core.algebra` — the many-sorted algebra kernel and the
  built-in, fully bound Genomics Algebra instance.
- :mod:`repro.core.ontology` — the controlled vocabulary the algebra is
  derived from.
"""

from repro.core.algebra import genomics_algebra

__all__ = ["genomics_algebra"]
