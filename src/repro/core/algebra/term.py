"""Terms over a many-sorted signature, with static sort checking.

A term is a constant, a variable, or an operator application whose
arguments are terms.  The sort of a term is the result sort of its
outermost operator — the paper's example being
``getchar(concat("Genomics", "Algebra"), 10)`` of sort ``char``.

Terms are built either programmatically (:class:`Application` checks
sorts at construction time) or from text via :func:`parse_term`, which
accepts the familiar ``f(g(x), 'literal', 42)`` syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.algebra.signature import Operator, Signature
from repro.errors import AlgebraError, SortMismatchError


class Term:
    """Abstract base of :class:`Constant`, :class:`Variable`, :class:`Application`."""

    sort: str

    def variables(self) -> frozenset["Variable"]:
        """All variables occurring in the term."""
        raise NotImplementedError

    def depth(self) -> int:
        """Nesting depth (a constant or variable has depth 1)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Term):
    """A literal value of a known sort."""

    value: Any
    sort: str

    def variables(self) -> frozenset["Variable"]:
        return frozenset()

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)

    def __hash__(self) -> int:
        return hash((repr(self.value), self.sort))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return self.sort == other.sort and self.value == other.value


@dataclass(frozen=True)
class Variable(Term):
    """A named placeholder of a known sort, bound at evaluation time."""

    name: str
    sort: str

    def variables(self) -> frozenset["Variable"]:
        return frozenset({self})

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


class Application(Term):
    """An operator applied to argument terms (sort-checked)."""

    __slots__ = ("operator", "args", "sort")

    def __init__(self, operator: Operator, args: tuple[Term, ...]) -> None:
        args = tuple(args)
        actual = tuple(arg.sort for arg in args)
        if actual != operator.arg_sorts:
            raise SortMismatchError(
                f"operator {operator} applied to argument sorts "
                f"({', '.join(actual) or 'none'})"
            )
        self.operator = operator
        self.args = args
        self.sort = operator.result_sort

    def variables(self) -> frozenset[Variable]:
        found: frozenset[Variable] = frozenset()
        for arg in self.args:
            found |= arg.variables()
        return found

    def depth(self) -> int:
        return 1 + max((arg.depth() for arg in self.args), default=0)

    def __str__(self) -> str:
        return f"{self.operator.name}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"Application({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Application):
            return NotImplemented
        return self.operator == other.operator and self.args == other.args

    def __hash__(self) -> int:
        return hash((self.operator, self.args))


# ---------------------------------------------------------------------------
# Term parser:  name(arg, 'str', 42, 3.5, nested(x))
# ---------------------------------------------------------------------------

class _TermScanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def _skip_space(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def peek(self) -> str:
        self._skip_space()
        if self.position >= len(self.text):
            return ""
        return self.text[self.position]

    def take(self, expected: str) -> None:
        if self.peek() != expected:
            raise AlgebraError(
                f"expected {expected!r} at position {self.position} "
                f"in {self.text!r}"
            )
        self.position += 1

    def identifier(self) -> str:
        self._skip_space()
        start = self.position
        while (self.position < len(self.text)
               and (self.text[self.position].isalnum()
                    or self.text[self.position] == "_")):
            self.position += 1
        if start == self.position:
            raise AlgebraError(
                f"expected an identifier at position {start} in {self.text!r}"
            )
        return self.text[start:self.position]

    def string_literal(self) -> str:
        quote = self.peek()
        self.position += 1
        start = self.position
        while self.position < len(self.text) and self.text[self.position] != quote:
            self.position += 1
        if self.position >= len(self.text):
            raise AlgebraError(f"unterminated string literal in {self.text!r}")
        value = self.text[start:self.position]
        self.position += 1
        return value

    def number_literal(self) -> "int | float":
        self._skip_space()
        start = self.position
        if self.peek() == "-":
            self.position += 1
        while (self.position < len(self.text)
               and (self.text[self.position].isdigit()
                    or self.text[self.position] == ".")):
            self.position += 1
        raw = self.text[start:self.position]
        return float(raw) if "." in raw else int(raw)

    def at_end(self) -> bool:
        self._skip_space()
        return self.position >= len(self.text)


def parse_term(
    text: str,
    signature: Signature,
    variables: Mapping[str, str] | None = None,
    string_sort: str = "string",
    int_sort: str = "int",
    float_sort: str = "float",
) -> Term:
    """Parse ``f(g(x), 'ATTG', 10)`` syntax into a sort-checked term.

    *variables* maps free-variable names to their sorts; bare identifiers
    are looked up there (or treated as zero-argument operators when the
    signature declares one).  String literals get *string_sort*, integer
    literals *int_sort*, decimal literals *float_sort*.
    """
    variables = dict(variables or {})
    scanner = _TermScanner(text)

    def parse_expression() -> Term:
        head = scanner.peek()
        if head in ("'", '"'):
            return Constant(scanner.string_literal(), string_sort)
        if head.isdigit() or head == "-":
            value = scanner.number_literal()
            sort = float_sort if isinstance(value, float) else int_sort
            return Constant(value, sort)
        name = scanner.identifier()
        if scanner.peek() == "(":
            scanner.take("(")
            args: list[Term] = []
            if scanner.peek() != ")":
                args.append(parse_expression())
                while scanner.peek() == ",":
                    scanner.take(",")
                    args.append(parse_expression())
            scanner.take(")")
            operator = signature.resolve(name, (a.sort for a in args))
            return Application(operator, tuple(args))
        if name in variables:
            return Variable(name, variables[name])
        if signature.has_operator(name):
            operator = signature.resolve(name, ())
            return Application(operator, ())
        raise AlgebraError(
            f"unknown identifier {name!r}: not a variable and not a "
            f"declared operator"
        )

    term = parse_expression()
    if not scanner.at_end():
        raise AlgebraError(
            f"trailing input at position {scanner.position} in {text!r}"
        )
    return term
