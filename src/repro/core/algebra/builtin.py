"""The Genomics Algebra: the paper's signature, instantiated and bound.

:func:`genomics_algebra` builds the full kernel algebra — every GDT as a
sort with its Python carrier type, every genomic operation of
:mod:`repro.core.ops` bound as a carrier function.  It subsumes the
paper's mini algebra::

    sorts  gene, primarytranscript, mrna, protein
    ops    transcribe: gene -> primarytranscript
           splice:     primarytranscript -> mrna
           translate:  mrna -> protein

so the running example ``translate(splice(transcribe(g)))`` parses,
sort-checks and evaluates.  The returned algebra is a fresh instance, so
callers may extend it (C13/C14) without affecting each other.
"""

from __future__ import annotations

from repro.core import ops
from repro.core.algebra.algebra import Algebra
from repro.core.algebra.signature import Signature
from repro.core.types import (
    Chromosome,
    DnaSequence,
    Gene,
    Genome,
    MRna,
    PrimaryTranscript,
    Protein,
    ProteinSequence,
    RnaSequence,
)

#: Sort names used by the built-in Genomics Algebra.
SORTS = {
    "bool": "truth values",
    "int": "integers",
    "float": "real numbers",
    "string": "character strings",
    "dna": "DNA sequences (IUPAC, packed)",
    "rna": "RNA sequences (IUPAC, packed)",
    "protein_seq": "amino-acid sequences",
    "gene": "genes with exon/intron structure",
    "primarytranscript": "unspliced RNA transcripts",
    "mrna": "mature messenger RNA",
    "protein": "proteins (annotated amino-acid chains)",
    "chromosome": "chromosomes",
    "genome": "whole genomes",
}


def _declare_signature(signature: Signature) -> None:
    for sort, description in SORTS.items():
        signature.declare_sort(sort, description)

    declare = signature.declare_operator
    # The paper's mini algebra (section 4.2).
    declare("transcribe", ("gene",), "primarytranscript")
    declare("splice", ("primarytranscript",), "mrna")
    declare("translate", ("mrna",), "protein")
    declare("express", ("gene",), "protein")
    declare("reverse_transcribe", ("mrna",), "dna")
    # Sequence-level operations.
    declare("decode", ("string",), "dna")
    declare("complement", ("dna",), "dna")
    declare("reverse_complement", ("dna",), "dna")
    declare("gc_content", ("dna",), "float")
    declare("gc_content", ("rna",), "float")
    declare("length", ("dna",), "int")
    declare("length", ("rna",), "int")
    declare("length", ("protein_seq",), "int")
    declare("subsequence", ("dna", "int", "int"), "dna")
    declare("concat", ("dna", "dna"), "dna")
    # Predicates (section 6.3).
    declare("contains", ("dna", "string"), "bool")
    declare("contains", ("protein_seq", "string"), "bool")
    declare("resembles", ("dna", "dna"), "bool")
    declare("resembles", ("dna", "dna", "float"), "bool")
    # Statistics / specialty evaluation functions (C14).
    declare("melting_temperature", ("dna",), "float")
    declare("molecular_weight", ("dna",), "float")
    declare("molecular_weight", ("protein_seq",), "float")
    declare("isoelectric_point", ("protein_seq",), "float")
    declare("hydropathy", ("protein_seq",), "float")
    declare("entropy", ("dna",), "float")
    # Structure accessors.
    declare("sequence_of", ("gene",), "dna")
    declare("sequence_of", ("protein",), "protein_seq")
    declare("name_of", ("gene",), "string")
    declare("exon_count", ("gene",), "int")
    declare("count_orfs", ("dna", "int"), "int")
    declare("gene_of", ("chromosome", "string"), "gene")
    declare("chromosome_of", ("genome", "string"), "chromosome")


def _bind_implementations(algebra: Algebra) -> None:
    bind = algebra.bind
    bind("transcribe", ("gene",), ops.transcribe)
    bind("splice", ("primarytranscript",), ops.splice)
    bind("translate", ("mrna",), ops.translate)
    bind("express", ("gene",), ops.express)
    bind("reverse_transcribe", ("mrna",), ops.reverse_transcribe)
    bind("decode", ("string",), ops.decode)
    bind("complement", ("dna",), ops.complement)
    bind("reverse_complement", ("dna",), ops.reverse_complement)
    bind("gc_content", ("dna",), ops.gc_content)
    bind("gc_content", ("rna",), ops.gc_content)
    bind("length", ("dna",), len)
    bind("length", ("rna",), len)
    bind("length", ("protein_seq",), len)
    bind("subsequence", ("dna", "int", "int"),
         lambda dna, start, end: dna[start:end])
    bind("concat", ("dna", "dna"), lambda a, b: a + b)
    bind("contains", ("dna", "string"), ops.contains)
    bind("contains", ("protein_seq", "string"), ops.contains)
    bind("resembles", ("dna", "dna"), ops.resembles)
    bind("resembles", ("dna", "dna", "float"),
         lambda a, b, t: ops.resembles(a, b, threshold=t))
    bind("melting_temperature", ("dna",), ops.melting_temperature)
    bind("molecular_weight", ("dna",), ops.molecular_weight)
    bind("molecular_weight", ("protein_seq",), ops.molecular_weight)
    bind("isoelectric_point", ("protein_seq",), ops.isoelectric_point)
    bind("hydropathy", ("protein_seq",), ops.hydropathy)
    bind("entropy", ("dna",), ops.shannon_entropy)
    bind("sequence_of", ("gene",), lambda gene: gene.sequence)
    bind("sequence_of", ("protein",), lambda protein: protein.sequence)
    bind("name_of", ("gene",), lambda gene: gene.name)
    bind("exon_count", ("gene",), lambda gene: len(gene.exons))
    bind("count_orfs", ("dna", "int"),
         lambda dna, minimum: len(ops.find_orfs(dna, minimum)))
    bind("gene_of", ("chromosome", "string"),
         lambda chromosome, name: chromosome.gene(name))
    bind("chromosome_of", ("genome", "string"),
         lambda genome, name: genome.chromosome(name))


def genomics_algebra() -> Algebra:
    """Build a fresh, fully bound Genomics Algebra instance."""
    signature = Signature("GenomicsAlgebra")
    _declare_signature(signature)
    algebra = Algebra(signature)

    algebra.set_carrier("bool", bool)
    algebra.set_carrier("int", int)
    algebra.set_carrier("float", (int, float))
    algebra.set_carrier("string", str)
    algebra.set_carrier("dna", DnaSequence)
    algebra.set_carrier("rna", RnaSequence)
    algebra.set_carrier("protein_seq", ProteinSequence)
    algebra.set_carrier("gene", Gene)
    algebra.set_carrier("primarytranscript", PrimaryTranscript)
    algebra.set_carrier("mrna", MRna)
    algebra.set_carrier("protein", Protein)
    algebra.set_carrier("chromosome", Chromosome)
    algebra.set_carrier("genome", Genome)

    _bind_implementations(algebra)
    return algebra
