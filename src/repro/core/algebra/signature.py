"""Many-sorted signatures (section 4.2 of the paper).

A signature is the syntactic half of a many-sorted algebra: a set of
**sorts** (type names) and a set of **operators**, each annotated with its
argument sorts and result sort — the paper's
``concat: string × string → string`` notation.

Operators may be overloaded: the same name can be declared with different
argument-sort strings, and resolution picks the declaration matching the
actual argument sorts.  Signatures are extensible at run time (new sorts
and operators can be declared on a live signature), which is the formal
footing for requirements C13/C14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SortMismatchError, UnknownOperatorError, UnknownSortError


@dataclass(frozen=True)
class Operator:
    """An operator declaration: name, argument sorts, result sort."""

    name: str
    arg_sorts: tuple[str, ...]
    result_sort: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "arg_sorts", tuple(self.arg_sorts))

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __str__(self) -> str:
        args = " × ".join(self.arg_sorts) if self.arg_sorts else "()"
        return f"{self.name}: {args} → {self.result_sort}"

    @property
    def key(self) -> tuple[str, tuple[str, ...]]:
        """The (name, argument sorts) pair that identifies an overload."""
        return (self.name, self.arg_sorts)


class Signature:
    """A mutable, extensible many-sorted signature."""

    def __init__(self, name: str = "signature") -> None:
        self.name = name
        self._sorts: dict[str, str] = {}          # sort name -> description
        self._operators: dict[str, list[Operator]] = {}

    def __repr__(self) -> str:
        return (f"Signature({self.name!r}, {len(self._sorts)} sorts, "
                f"{sum(len(v) for v in self._operators.values())} operators)")

    # -- sorts ---------------------------------------------------------------

    def declare_sort(self, name: str, description: str = "") -> None:
        """Add a sort; re-declaring an existing sort is an error."""
        if name in self._sorts:
            raise UnknownSortError(f"sort {name!r} is already declared")
        self._sorts[name] = description

    def has_sort(self, name: str) -> bool:
        return name in self._sorts

    def require_sort(self, name: str) -> None:
        if name not in self._sorts:
            raise UnknownSortError(
                f"sort {name!r} is not declared in signature {self.name!r}"
            )

    @property
    def sorts(self) -> tuple[str, ...]:
        return tuple(self._sorts)

    def sort_description(self, name: str) -> str:
        self.require_sort(name)
        return self._sorts[name]

    # -- operators -----------------------------------------------------------

    def declare_operator(
        self,
        name: str,
        arg_sorts: Iterable[str],
        result_sort: str,
    ) -> Operator:
        """Add an operator; every referenced sort must exist.

        Declaring the same (name, argument sorts) twice is an error;
        declaring the same name with *different* argument sorts creates an
        overload.
        """
        operator = Operator(name, tuple(arg_sorts), result_sort)
        for sort in (*operator.arg_sorts, operator.result_sort):
            self.require_sort(sort)
        overloads = self._operators.setdefault(name, [])
        if any(existing.key == operator.key for existing in overloads):
            raise UnknownOperatorError(
                f"operator {operator} is already declared"
            )
        overloads.append(operator)
        return operator

    def has_operator(self, name: str) -> bool:
        return name in self._operators

    def overloads(self, name: str) -> tuple[Operator, ...]:
        """All declarations sharing *name*."""
        try:
            return tuple(self._operators[name])
        except KeyError:
            raise UnknownOperatorError(
                f"operator {name!r} is not declared in signature "
                f"{self.name!r}"
            ) from None

    def resolve(self, name: str, arg_sorts: Iterable[str]) -> Operator:
        """Pick the overload of *name* matching *arg_sorts* exactly."""
        wanted = tuple(arg_sorts)
        for operator in self.overloads(name):
            if operator.arg_sorts == wanted:
                return operator
        declared = ", ".join(str(op) for op in self.overloads(name))
        raise SortMismatchError(
            f"no overload of {name!r} accepts ({', '.join(wanted)}); "
            f"declared: {declared}"
        )

    def operators(self) -> Iterator[Operator]:
        """Iterate over every declared operator."""
        for overloads in self._operators.values():
            yield from overloads

    def describe(self) -> str:
        """A human-readable dump of the whole signature."""
        lines = [f"signature {self.name}", "sorts"]
        lines.extend(f"  {sort}" for sort in sorted(self._sorts))
        lines.append("ops")
        lines.extend(
            f"  {operator}"
            for operator in sorted(self.operators(),
                                   key=lambda op: (op.name, op.arg_sorts))
        )
        return "\n".join(lines)
