"""The algebra proper: carrier sets and carrier functions over a signature.

"To assign semantics to a signature, one must assign a (carrier) set to
each sort and a function to each operator" (section 4.2).  An
:class:`Algebra` does exactly that: each sort is given a **carrier
check** (a Python type or predicate deciding membership) and each operator
a **carrier function** implementing it.  Evaluation of a term walks it
bottom-up, checking every intermediate value against the carrier of its
sort — so an implementation bug that returns a value of the wrong sort is
caught at the algebra boundary, not three operators later.

The algebra is extensible at run time (new sorts, operators and
implementations; C13/C14), and is deliberately independent of any DBMS —
the "kernel algebra" usable as a stand-alone library, which the adapter
(:mod:`repro.adapter`) later plugs into the Unifying Database.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.core.algebra.signature import Operator, Signature
from repro.core.algebra.term import (
    Application,
    Constant,
    Term,
    Variable,
    parse_term,
)
from repro.errors import EvaluationError, SortMismatchError

CarrierCheck = Callable[[Any], bool]


class Algebra:
    """A many-sorted algebra: a signature plus its semantics."""

    def __init__(self, signature: Signature) -> None:
        self.signature = signature
        self._carriers: dict[str, CarrierCheck] = {}
        self._functions: dict[tuple[str, tuple[str, ...]], Callable] = {}

    def __repr__(self) -> str:
        return (f"Algebra({self.signature.name!r}, "
                f"{len(self._functions)} bound operators)")

    # -- defining the semantics ----------------------------------------------

    def set_carrier(
        self, sort: str, check: "type | tuple[type, ...] | CarrierCheck"
    ) -> None:
        """Define the carrier set of *sort*.

        *check* is a type (or tuple of types) for an ``isinstance`` test,
        or an arbitrary membership predicate.
        """
        self.signature.require_sort(sort)
        if isinstance(check, (type, tuple)):
            types = check
            self._carriers[sort] = lambda value: isinstance(value, types)
        else:
            self._carriers[sort] = check

    def in_carrier(self, value: Any, sort: str) -> bool:
        """Membership test; sorts without a registered carrier accept all."""
        self.signature.require_sort(sort)
        check = self._carriers.get(sort)
        return True if check is None else bool(check(value))

    def bind(
        self,
        name: str,
        arg_sorts: Iterable[str],
        function: Callable,
    ) -> None:
        """Attach the carrier function of an operator overload."""
        operator = self.signature.resolve(name, tuple(arg_sorts))
        self._functions[operator.key] = function

    def function_for(self, operator: Operator) -> Callable:
        try:
            return self._functions[operator.key]
        except KeyError:
            raise EvaluationError(
                f"operator {operator} has no bound implementation"
            ) from None

    def is_bound(self, operator: Operator) -> bool:
        return operator.key in self._functions

    # -- extensibility (C13/C14): declare + bind in one step ------------------

    def extend_sort(
        self,
        name: str,
        check: "type | tuple[type, ...] | CarrierCheck | None" = None,
        description: str = "",
    ) -> None:
        """Declare a new sort and (optionally) its carrier."""
        self.signature.declare_sort(name, description)
        if check is not None:
            self.set_carrier(name, check)

    def extend_operator(
        self,
        name: str,
        arg_sorts: Iterable[str],
        result_sort: str,
        function: Callable,
    ) -> Operator:
        """Declare a new operator and bind its implementation."""
        operator = self.signature.declare_operator(
            name, tuple(arg_sorts), result_sort
        )
        self._functions[operator.key] = function
        return operator

    # -- building and evaluating terms ----------------------------------------

    def constant(self, value: Any, sort: str) -> Constant:
        """A sort-checked constant term."""
        if not self.in_carrier(value, sort):
            raise SortMismatchError(
                f"value {value!r} is not in the carrier of sort {sort!r}"
            )
        return Constant(value, sort)

    def apply(self, name: str, *args: Term) -> Application:
        """Build an application term, resolving the overload by arg sorts."""
        operator = self.signature.resolve(name, (a.sort for a in args))
        return Application(operator, tuple(args))

    def parse(self, text: str,
              variables: Mapping[str, str] | None = None) -> Term:
        """Parse textual term syntax against this algebra's signature."""
        return parse_term(text, self.signature, variables)

    def call(self, name: str, *values_and_sorts: tuple[Any, str]) -> Any:
        """One-shot: wrap values as constants, apply, evaluate."""
        constants = [self.constant(v, s) for v, s in values_and_sorts]
        return self.evaluate(self.apply(name, *constants))

    def evaluate(
        self, term: Term, bindings: Mapping[str, Any] | None = None
    ) -> Any:
        """Evaluate a term bottom-up, carrier-checking every value.

        *bindings* supplies values for free variables by name; a variable
        value is carrier-checked against the variable's sort.
        """
        bindings = dict(bindings or {})

        def walk(node: Term) -> Any:
            if isinstance(node, Constant):
                return node.value
            if isinstance(node, Variable):
                if node.name not in bindings:
                    raise EvaluationError(
                        f"unbound variable {node.name!r} of sort {node.sort!r}"
                    )
                value = bindings[node.name]
                if not self.in_carrier(value, node.sort):
                    raise SortMismatchError(
                        f"binding for {node.name!r} is not in the carrier "
                        f"of sort {node.sort!r}: {value!r}"
                    )
                return value
            if isinstance(node, Application):
                function = self.function_for(node.operator)
                arguments = [walk(arg) for arg in node.args]
                try:
                    result = function(*arguments)
                except EvaluationError:
                    raise
                except Exception as exc:
                    raise EvaluationError(
                        f"operator {node.operator.name!r} failed: {exc}"
                    ) from exc
                if not self.in_carrier(result, node.sort):
                    raise SortMismatchError(
                        f"operator {node.operator} returned a value outside "
                        f"the carrier of {node.sort!r}: {result!r}"
                    )
                return result
            raise EvaluationError(f"unknown term node {node!r}")

        return walk(term)

    # -- introspection --------------------------------------------------------

    def unbound_operators(self) -> list[Operator]:
        """Declared operators that still lack an implementation."""
        return [op for op in self.signature.operators()
                if op.key not in self._functions]
