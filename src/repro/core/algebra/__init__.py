"""Many-sorted algebra kernel and the built-in Genomics Algebra."""

from repro.core.algebra.algebra import Algebra
from repro.core.algebra.builtin import SORTS, genomics_algebra
from repro.core.algebra.signature import Operator, Signature
from repro.core.algebra.term import (
    Application,
    Constant,
    Term,
    Variable,
    parse_term,
)

__all__ = [
    "Algebra",
    "Signature",
    "Operator",
    "Term",
    "Constant",
    "Variable",
    "Application",
    "parse_term",
    "genomics_algebra",
    "SORTS",
]
