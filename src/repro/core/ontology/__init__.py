"""Genomics ontology: controlled vocabulary and signature derivation."""

from repro.core.ontology.graph import (
    IS_A,
    PART_OF,
    RELATIONSHIPS,
    Ontology,
    OntologyTerm,
    make_term,
)
from repro.core.ontology.mapping import (
    builtin_genomics_ontology,
    derive_signature,
    parse_binding,
)
from repro.core.ontology.obo import dump_file, dumps, load_file, loads

__all__ = [
    "IS_A",
    "PART_OF",
    "RELATIONSHIPS",
    "Ontology",
    "OntologyTerm",
    "make_term",
    "builtin_genomics_ontology",
    "derive_signature",
    "parse_binding",
    "dumps",
    "loads",
    "dump_file",
    "load_file",
]
