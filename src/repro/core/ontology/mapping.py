"""Deriving an algebra signature from an ontology (section 4.2, step two).

"The Genomics Algebra … is the derived, formal, and executable
instantiation of the resulting genomic ontology.  Entity types and
functions in the ontology are represented directly using the appropriate
data types and operations."

A term's ``algebra_binding`` field encodes that mapping:

- ``sort:<name>`` — the concept becomes a sort.
- ``op:<name>:<arg>,<arg>-><result>`` — the concept becomes an operator.

:func:`derive_signature` walks an ontology and produces the corresponding
:class:`~repro.core.algebra.signature.Signature`; sorts are declared
before operators so bindings may appear in any order.
"""

from __future__ import annotations

from repro.core.algebra.signature import Signature
from repro.core.ontology.graph import Ontology, OntologyTerm, make_term
from repro.errors import OntologyError


def parse_binding(binding: str) -> tuple[str, dict]:
    """Decompose an ``algebra_binding`` string.

    Returns ``("sort", {"name": ...})`` or
    ``("op", {"name": ..., "args": [...], "result": ...})``.
    """
    kind, _, rest = binding.partition(":")
    if kind == "sort":
        if not rest:
            raise OntologyError(f"bad sort binding {binding!r}")
        return "sort", {"name": rest}
    if kind == "op":
        name, _, signature_text = rest.partition(":")
        if not name or "->" not in signature_text:
            raise OntologyError(f"bad op binding {binding!r}")
        arg_text, _, result = signature_text.partition("->")
        args = [a.strip() for a in arg_text.split(",") if a.strip()]
        return "op", {"name": name, "args": args, "result": result.strip()}
    raise OntologyError(f"unknown binding kind in {binding!r}")


def derive_signature(
    ontology: Ontology, name: str | None = None
) -> Signature:
    """Produce a signature from every bound term of *ontology*."""
    signature = Signature(name or f"{ontology.name}-signature")
    operator_terms: list[tuple[OntologyTerm, dict]] = []

    for term in ontology:
        if not term.algebra_binding:
            continue
        kind, spec = parse_binding(term.algebra_binding)
        if kind == "sort":
            signature.declare_sort(spec["name"], term.definition or term.name)
        else:
            operator_terms.append((term, spec))

    for term, spec in operator_terms:
        for sort in (*spec["args"], spec["result"]):
            if not signature.has_sort(sort):
                raise OntologyError(
                    f"operator term {term.term_id!r} references sort "
                    f"{sort!r} that no ontology term binds"
                )
        signature.declare_operator(spec["name"], spec["args"], spec["result"])

    return signature


def builtin_genomics_ontology() -> Ontology:
    """The small genomics ontology this project's algebra is derived from.

    Covers the concepts of the paper's running example — gene, primary
    transcript, mRNA, protein and the central-dogma functions — plus the
    sequence-level concepts, each with the synonyms under which public
    repositories ship them (the raw material for semantic matching).
    """
    ontology = Ontology("genomics-core")
    add = ontology.add_term

    add(make_term("GA:0000", "biological entity",
                  "anything the algebra can denote"))
    add(make_term("GA:0001", "nucleotide sequence",
                  "a polymer of nucleotides",
                  synonyms=("nucleic acid sequence",)))
    add(make_term("GA:0002", "DNA sequence", "deoxyribonucleic acid",
                  synonyms=("dna", "sequence_dna"),
                  xrefs=("GenBank", "EMBL"),
                  algebra_binding="sort:dna"))
    add(make_term("GA:0003", "RNA sequence", "ribonucleic acid",
                  synonyms=("rna",), algebra_binding="sort:rna"))
    add(make_term("GA:0004", "amino acid sequence",
                  "a polymer of amino acid residues",
                  synonyms=("peptide sequence", "aa_sequence"),
                  xrefs=("SwissProt",),
                  algebra_binding="sort:protein_seq"))
    add(make_term("GA:0010", "gene",
                  "a heritable unit of DNA with exon/intron structure",
                  synonyms=("cistron", "locus_gene"),
                  xrefs=("GenBank", "EMBL", "AceDB"),
                  algebra_binding="sort:gene"))
    add(make_term("GA:0011", "primary transcript",
                  "the unspliced RNA copy of a gene",
                  synonyms=("pre-mRNA", "pre mRNA", "hnRNA"),
                  algebra_binding="sort:primarytranscript"))
    add(make_term("GA:0012", "messenger RNA",
                  "mature, spliced, protein-coding RNA",
                  synonyms=("mRNA", "mature transcript"),
                  algebra_binding="sort:mrna"))
    add(make_term("GA:0013", "protein",
                  "a folded chain of amino acids",
                  synonyms=("polypeptide", "gene product"),
                  xrefs=("SwissProt", "PIR"),
                  algebra_binding="sort:protein"))
    add(make_term("GA:0014", "chromosome",
                  "a DNA molecule carrying genes",
                  algebra_binding="sort:chromosome"))
    add(make_term("GA:0015", "genome",
                  "the complete genetic material of an organism",
                  algebra_binding="sort:genome"))

    # Metadata concepts: the field vocabularies the repositories use.
    # Recording each source's line codes as synonyms is what lets the
    # semantic-heterogeneity matcher align EMBL's "OS" with the
    # warehouse's "organism" column (section 5.2).
    add(make_term("GA:0020", "organism",
                  "the species a record belongs to",
                  synonyms=("OS", "species", "source organism",
                            "organism name")))
    add(make_term("GA:0021", "description",
                  "free-text description of a record",
                  synonyms=("DE", "definition", "title")))
    add(make_term("GA:0022", "accession",
                  "the stable identifier of a repository record",
                  synonyms=("AC", "accession number", "entry id")))
    add(make_term("GA:0023", "gene name",
                  "the symbolic name of a gene",
                  synonyms=("GN", "gene symbol", "locus name")))

    add(make_term("GA:0100", "transcription",
                  "copying a gene into its primary transcript",
                  synonyms=("transcribe",),
                  algebra_binding="op:transcribe:gene->primarytranscript"))
    add(make_term("GA:0101", "splicing",
                  "removing introns from a primary transcript",
                  synonyms=("splice",),
                  algebra_binding="op:splice:primarytranscript->mrna"))
    add(make_term("GA:0102", "translation",
                  "decoding an mRNA into a protein",
                  synonyms=("translate",),
                  algebra_binding="op:translate:mrna->protein"))

    relate = ontology.relate
    relate("GA:0001", "is_a", "GA:0000")
    relate("GA:0002", "is_a", "GA:0001")
    relate("GA:0003", "is_a", "GA:0001")
    relate("GA:0004", "is_a", "GA:0000")
    relate("GA:0010", "is_a", "GA:0000")
    relate("GA:0010", "part_of", "GA:0014")
    relate("GA:0011", "is_a", "GA:0003")
    relate("GA:0012", "is_a", "GA:0003")
    relate("GA:0013", "is_a", "GA:0000")
    relate("GA:0014", "is_a", "GA:0000")
    relate("GA:0014", "part_of", "GA:0015")
    relate("GA:0015", "is_a", "GA:0000")
    return ontology
