"""A small OBO-flavoured flat format for ontologies.

The paper surveys ontology exchange languages (its reference [7]); we
support a minimal, line-oriented format modelled on OBO stanzas so
ontologies can be shipped as text, diffed by the ETL machinery, and
round-tripped::

    [Term]
    id: GA:0001
    name: gene
    def: "a heritable unit of DNA"
    synonym: "cistron"
    xref: GenBank
    is_a: GA:0000
    binding: sort:gene
"""

from __future__ import annotations

from repro.core.ontology.graph import Ontology, OntologyTerm, RELATIONSHIPS
from repro.errors import OntologyError


def dumps(ontology: Ontology) -> str:
    """Serialize an ontology to OBO-flavoured text."""
    blocks: list[str] = [f"format-version: 1.2\nontology: {ontology.name}"]
    for term in sorted(ontology, key=lambda t: t.term_id):
        lines = ["[Term]", f"id: {term.term_id}", f"name: {term.name}"]
        if term.definition:
            lines.append(f'def: "{term.definition}"')
        lines.extend(f'synonym: "{synonym}"' for synonym in term.synonyms)
        lines.extend(f"xref: {xref}" for xref in term.xrefs)
        for relationship in RELATIONSHIPS:
            for parent in ontology.parents(term.term_id, relationship):
                lines.append(f"{relationship}: {parent.term_id}")
        if term.algebra_binding:
            lines.append(f"binding: {term.algebra_binding}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def loads(text: str) -> Ontology:
    """Parse OBO-flavoured text into an :class:`Ontology`."""
    name = "ontology"
    stanzas: list[dict[str, list[str]]] = []
    current: dict[str, list[str]] | None = None

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("!"):
            continue
        if line == "[Term]":
            current = {}
            stanzas.append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            current = None  # unknown stanza kind: ignored
            continue
        if ":" not in line:
            raise OntologyError(f"malformed line {line!r}")
        key, _, value = line.partition(":")
        key = key.strip()
        value = value.strip()
        if current is None:
            if key == "ontology":
                name = value
            continue
        current.setdefault(key, []).append(value)

    def unquote(value: str) -> str:
        if value.startswith('"'):
            closing = value.find('"', 1)
            if closing == -1:
                raise OntologyError(f"unterminated quote in {value!r}")
            return value[1:closing]
        return value

    ontology = Ontology(name)
    edges: list[tuple[str, str, str]] = []
    for stanza in stanzas:
        if "id" not in stanza or "name" not in stanza:
            raise OntologyError("a [Term] stanza needs id: and name:")
        term_id = stanza["id"][0]
        term = OntologyTerm(
            term_id=term_id,
            name=stanza["name"][0],
            definition=unquote(stanza.get("def", [""])[0]),
            synonyms=tuple(unquote(s) for s in stanza.get("synonym", [])),
            xrefs=tuple(stanza.get("xref", [])),
            algebra_binding=stanza.get("binding", [None])[0],
        )
        ontology.add_term(term)
        for relationship in RELATIONSHIPS:
            for parent_id in stanza.get(relationship, []):
                edges.append((term_id, relationship, parent_id))

    for child, relationship, parent in edges:
        ontology.relate(child, relationship, parent)
    return ontology


def load_file(path: str) -> Ontology:
    """Parse an OBO-flavoured file from disk."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())


def dump_file(ontology: Ontology, path: str) -> None:
    """Write an ontology to disk in OBO-flavoured text."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(ontology))
