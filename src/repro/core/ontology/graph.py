"""A controlled vocabulary for molecular biology (section 4.1).

The paper makes an ontology the precondition of the algebra: a set of
uniquely named concepts with agreed semantics, related by ``is_a`` and
``part_of``, from which the algebra's sorts and operators are derived.

:class:`Ontology` is a directed acyclic graph of :class:`OntologyTerm`
nodes.  Each term carries synonyms (the terminological differences the
paper says impede integration) and optional cross-references to the
repositories a concept came from.  Synonym lookup is what the warehouse's
semantic-heterogeneity matcher uses to align differently named columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import OntologyError

IS_A = "is_a"
PART_OF = "part_of"
#: Relationship kinds the DAG accepts.
RELATIONSHIPS = (IS_A, PART_OF)


@dataclass
class OntologyTerm:
    """One concept: unique id, preferred name, synonyms, definition."""

    term_id: str
    name: str
    definition: str = ""
    synonyms: tuple[str, ...] = ()
    xrefs: tuple[str, ...] = ()
    #: Optional sort or operator signature this concept maps to in the
    #: algebra, e.g. ``"sort:gene"`` or ``"op:transcribe:gene->primarytranscript"``.
    algebra_binding: str | None = None

    def __post_init__(self) -> None:
        if not self.term_id or not self.name:
            raise OntologyError("a term needs both an id and a name")
        self.synonyms = tuple(self.synonyms)
        self.xrefs = tuple(self.xrefs)

    def all_names(self) -> tuple[str, ...]:
        """Preferred name plus synonyms, lower-cased for matching."""
        return tuple({self.name.lower(), *(s.lower() for s in self.synonyms)})


class Ontology:
    """A DAG of terms with ``is_a`` / ``part_of`` edges and synonym lookup."""

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._terms: dict[str, OntologyTerm] = {}
        # child id -> [(relationship, parent id)]
        self._parents: dict[str, list[tuple[str, str]]] = {}
        self._children: dict[str, list[tuple[str, str]]] = {}
        self._by_name: dict[str, str] = {}  # lowered name/synonym -> term id

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __iter__(self) -> Iterator[OntologyTerm]:
        return iter(self._terms.values())

    def __repr__(self) -> str:
        return f"Ontology({self.name!r}, {len(self)} terms)"

    # -- construction ---------------------------------------------------------

    def add_term(self, term: OntologyTerm) -> None:
        """Add a term; ids must be unique, names/synonyms unambiguous.

        The paper requires each technical term to carry a unique semantics;
        if a name or synonym is already claimed by another concept the
        addition is rejected, forcing the modeller to coin a distinct term
        (exactly the policy section 4.1 prescribes for homonyms).
        """
        if term.term_id in self._terms:
            raise OntologyError(f"duplicate term id {term.term_id!r}")
        for name in term.all_names():
            owner = self._by_name.get(name)
            if owner is not None and owner != term.term_id:
                raise OntologyError(
                    f"name {name!r} is already bound to term {owner!r}; "
                    f"coin a unique term instead (homonym policy)"
                )
        self._terms[term.term_id] = term
        self._parents.setdefault(term.term_id, [])
        self._children.setdefault(term.term_id, [])
        for name in term.all_names():
            self._by_name[name] = term.term_id

    def relate(self, child_id: str, relationship: str, parent_id: str) -> None:
        """Add an edge ``child —relationship→ parent``; cycles are rejected."""
        if relationship not in RELATIONSHIPS:
            raise OntologyError(
                f"unknown relationship {relationship!r}; "
                f"expected one of {RELATIONSHIPS}"
            )
        for term_id in (child_id, parent_id):
            if term_id not in self._terms:
                raise OntologyError(f"unknown term {term_id!r}")
        if child_id == parent_id:
            raise OntologyError(f"self-loop on {child_id!r}")
        if child_id in self._ancestor_ids(parent_id):
            raise OntologyError(
                f"edge {child_id!r} → {parent_id!r} would create a cycle"
            )
        self._parents[child_id].append((relationship, parent_id))
        self._children[parent_id].append((relationship, child_id))

    # -- lookup ----------------------------------------------------------------

    def term(self, term_id: str) -> OntologyTerm:
        try:
            return self._terms[term_id]
        except KeyError:
            raise OntologyError(f"unknown term {term_id!r}") from None

    def find(self, name: str) -> OntologyTerm | None:
        """Resolve a name **or synonym** (case-insensitive) to its term."""
        term_id = self._by_name.get(name.lower())
        return self._terms[term_id] if term_id else None

    def same_concept(self, first: str, second: str) -> bool:
        """True when two names (or synonyms) denote the same concept."""
        a = self.find(first)
        b = self.find(second)
        return a is not None and b is not None and a.term_id == b.term_id

    # -- graph queries ----------------------------------------------------------

    def parents(self, term_id: str,
                relationship: str | None = None) -> list[OntologyTerm]:
        self.term(term_id)
        return [
            self._terms[parent]
            for rel, parent in self._parents[term_id]
            if relationship is None or rel == relationship
        ]

    def children(self, term_id: str,
                 relationship: str | None = None) -> list[OntologyTerm]:
        self.term(term_id)
        return [
            self._terms[child]
            for rel, child in self._children[term_id]
            if relationship is None or rel == relationship
        ]

    def _ancestor_ids(self, term_id: str) -> set[str]:
        seen: set[str] = set()
        frontier = [term_id]
        while frontier:
            current = frontier.pop()
            for _, parent in self._parents.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return seen

    def ancestors(self, term_id: str) -> list[OntologyTerm]:
        """Every term reachable upward (transitively), unordered."""
        self.term(term_id)
        return [self._terms[t] for t in self._ancestor_ids(term_id)]

    def descendants(self, term_id: str) -> list[OntologyTerm]:
        """Every term reachable downward (transitively), unordered."""
        self.term(term_id)
        seen: set[str] = set()
        frontier = [term_id]
        while frontier:
            current = frontier.pop()
            for _, child in self._children.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return [self._terms[t] for t in seen]

    def is_a(self, term_id: str, ancestor_id: str) -> bool:
        """True when *term_id* is (transitively) a kind of *ancestor_id*."""
        return ancestor_id in self._ancestor_ids(term_id)

    def roots(self) -> list[OntologyTerm]:
        """Terms without parents."""
        return [
            term for term_id, term in self._terms.items()
            if not self._parents[term_id]
        ]

    def merge(self, other: "Ontology",
              on_conflict: str = "error") -> "Ontology":
        """A new ontology combining *self* and *other*.

        ``on_conflict`` is ``"error"`` (duplicate ids raise) or ``"skip"``
        (keep *self*'s term).  Cross-ontology name clashes always raise —
        they are exactly the homonym problem the ontology exists to forbid.
        """
        if on_conflict not in ("error", "skip"):
            raise OntologyError(f"bad on_conflict {on_conflict!r}")
        merged = Ontology(f"{self.name}+{other.name}")
        for term in self:
            merged.add_term(term)
        for term in other:
            if term.term_id in merged:
                if on_conflict == "error":
                    raise OntologyError(
                        f"term {term.term_id!r} exists in both ontologies"
                    )
                continue
            merged.add_term(term)
        for source in (self, other):
            for term in source:
                if term.term_id not in merged:
                    continue
                for rel, parent in source._parents[term.term_id]:
                    if parent in merged:
                        existing = merged._parents[term.term_id]
                        if (rel, parent) not in existing:
                            merged.relate(term.term_id, rel, parent)
        return merged


def make_term(
    term_id: str,
    name: str,
    definition: str = "",
    synonyms: Iterable[str] = (),
    xrefs: Iterable[str] = (),
    algebra_binding: str | None = None,
) -> OntologyTerm:
    """Convenience constructor mirroring :class:`OntologyTerm`."""
    return OntologyTerm(
        term_id=term_id,
        name=name,
        definition=definition,
        synonyms=tuple(synonyms),
        xrefs=tuple(xrefs),
        algebra_binding=algebra_binding,
    )
