"""Compact binary serializers for every GDT (the UDT storage format).

The engine stores opaque-UDT values as bytes it never interprets
(section 6.2).  These serializers define that byte format: packed
sequences use their native :meth:`~repro.core.types.sequence.PackedSequence.to_bytes`
buffer; composite entities (gene, transcript, protein, …) use a JSON
envelope whose sequence fields embed the packed buffers as hex — the
bulky part stays packed, the structure stays debuggable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.types import (
    Alternatives,
    AnnotationSet,
    Feature,
    Gene,
    Interval,
    Location,
    MRna,
    PrimaryTranscript,
    Protein,
    Uncertain,
)
from repro.core.types.sequence import (
    DnaSequence,
    PackedSequence,
    ProteinSequence,
    RnaSequence,
    sequence_from_bytes,
)
from repro.errors import ReproError


class SerializationError(ReproError):
    """A GDT value could not be (de)serialized."""


# -- sequences ---------------------------------------------------------------

def serialize_sequence(sequence: PackedSequence) -> bytes:
    return sequence.to_bytes()


def deserialize_dna(data: bytes) -> DnaSequence:
    return DnaSequence.from_bytes(data)


def deserialize_rna(data: bytes) -> RnaSequence:
    return RnaSequence.from_bytes(data)


def deserialize_protein_sequence(data: bytes) -> ProteinSequence:
    return ProteinSequence.from_bytes(data)


# -- shared fragments -----------------------------------------------------------

def _intervals_to_json(intervals: tuple[Interval, ...]) -> list[list[int]]:
    return [[interval.start, interval.end] for interval in intervals]


def _intervals_from_json(spans: list[list[int]]) -> tuple[Interval, ...]:
    return tuple(Interval(start, end) for start, end in spans)


def _features_to_json(annotations: AnnotationSet) -> list[dict]:
    return [
        {
            "kind": feature.kind,
            "intervals": _intervals_to_json(feature.location.intervals),
            "strand": feature.location.strand,
            "qualifiers": dict(feature.qualifiers),
        }
        for feature in annotations
    ]


def _features_from_json(specs: list[dict]) -> AnnotationSet:
    return AnnotationSet(
        Feature(
            kind=spec["kind"],
            location=Location(_intervals_from_json(spec["intervals"]),
                              spec["strand"]),
            qualifiers=spec["qualifiers"],
        )
        for spec in specs
    )


def _pack(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _unpack(data: bytes, expected_kind: str) -> dict:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt GDT payload: {exc}") from exc
    if payload.get("kind") != expected_kind:
        raise SerializationError(
            f"expected a {expected_kind} payload, got "
            f"{payload.get('kind')!r}"
        )
    return payload


# -- entities --------------------------------------------------------------------

def serialize_gene(gene: Gene) -> bytes:
    return _pack({
        "kind": "gene",
        "name": gene.name,
        "sequence": gene.sequence.to_bytes().hex(),
        "exons": _intervals_to_json(gene.exons),
        "organism": gene.organism,
        "accession": gene.accession,
        "features": _features_to_json(gene.annotations),
    })


def deserialize_gene(data: bytes) -> Gene:
    payload = _unpack(data, "gene")
    return Gene(
        name=payload["name"],
        sequence=DnaSequence.from_bytes(bytes.fromhex(payload["sequence"])),
        exons=_intervals_from_json(payload["exons"]),
        organism=payload["organism"],
        accession=payload["accession"],
        annotations=_features_from_json(payload["features"]),
    )


def serialize_transcript(transcript: PrimaryTranscript) -> bytes:
    return _pack({
        "kind": "primarytranscript",
        "rna": transcript.rna.to_bytes().hex(),
        "exons": _intervals_to_json(transcript.exons),
        "gene_name": transcript.gene_name,
    })


def deserialize_transcript(data: bytes) -> PrimaryTranscript:
    payload = _unpack(data, "primarytranscript")
    return PrimaryTranscript(
        rna=RnaSequence.from_bytes(bytes.fromhex(payload["rna"])),
        exons=_intervals_from_json(payload["exons"]),
        gene_name=payload["gene_name"],
    )


def serialize_mrna(mrna: MRna) -> bytes:
    return _pack({
        "kind": "mrna",
        "rna": mrna.rna.to_bytes().hex(),
        "cds": ([mrna.cds.start, mrna.cds.end]
                if mrna.cds is not None else None),
        "gene_name": mrna.gene_name,
    })


def deserialize_mrna(data: bytes) -> MRna:
    payload = _unpack(data, "mrna")
    cds = payload["cds"]
    return MRna(
        rna=RnaSequence.from_bytes(bytes.fromhex(payload["rna"])),
        cds=Interval(cds[0], cds[1]) if cds is not None else None,
        gene_name=payload["gene_name"],
    )


def serialize_protein(protein: Protein) -> bytes:
    return _pack({
        "kind": "protein",
        "sequence": protein.sequence.to_bytes().hex(),
        "name": protein.name,
        "gene_name": protein.gene_name,
        "organism": protein.organism,
        "accession": protein.accession,
        "features": _features_to_json(protein.annotations),
    })


def deserialize_protein(data: bytes) -> Protein:
    payload = _unpack(data, "protein")
    return Protein(
        sequence=ProteinSequence.from_bytes(
            bytes.fromhex(payload["sequence"])
        ),
        name=payload["name"],
        gene_name=payload["gene_name"],
        organism=payload["organism"],
        accession=payload["accession"],
        annotations=_features_from_json(payload["features"]),
    )


# -- uncertainty --------------------------------------------------------------------

def _value_to_json(value: Any) -> dict:
    """Encode an Uncertain payload: sequences packed, scalars direct."""
    if isinstance(value, PackedSequence):
        return {"t": "seq", "v": value.to_bytes().hex()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"t": "scalar", "v": value}
    raise SerializationError(
        f"Alternatives over {type(value).__name__} are not serializable"
    )


def _value_from_json(spec: dict) -> Any:
    if spec["t"] == "seq":
        return sequence_from_bytes(bytes.fromhex(spec["v"]))
    return spec["v"]


def serialize_alternatives(alternatives: Alternatives) -> bytes:
    return _pack({
        "kind": "alternatives",
        "options": [
            {
                "value": _value_to_json(option.value),
                "confidence": option.confidence,
                "source": option.source,
            }
            for option in alternatives
        ],
    })


def deserialize_alternatives(data: bytes) -> Alternatives:
    payload = _unpack(data, "alternatives")
    return Alternatives(
        Uncertain(
            _value_from_json(option["value"]),
            option["confidence"],
            option["source"],
        )
        for option in payload["options"]
    )
