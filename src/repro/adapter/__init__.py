"""The DBMS-specific adapter: plugs the Genomics Algebra into the engine."""

from repro.adapter.adapter import GenomicsAdapter, install_genomics
from repro.adapter.serializers import SerializationError

__all__ = ["GenomicsAdapter", "install_genomics", "SerializationError"]
