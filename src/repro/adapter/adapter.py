"""The DBMS-specific adapter of Figure 3.

"The adapter provides a DBMS-specific coupling mechanism between the ADTs
together with their operations in the Genomics Algebra and the DBMS
managing the Unifying Database.  The ADTs are plugged into the adapter by
using the user-defined data type (UDT) mechanism of the DBMS."
(section 6.2)

:class:`GenomicsAdapter.install` does exactly that against our engine:

- every GDT becomes an **opaque UDT** with its compact serializer, so
  columns can be declared ``fragment DNA`` or ``g GENE``;
- every algebra operation becomes a **UDF** usable anywhere an expression
  may occur (section 6.3), with selectivity estimates for the predicates
  so the optimizer can price genomic access paths (section 6.5);
- constructor functions (``dna('ATTG…')``) let SQL text create GDT values.

After installation the paper's example runs verbatim::

    SELECT id FROM dna_fragments WHERE contains(fragment, 'ATTGCCATA')
"""

from __future__ import annotations

from repro.adapter import serializers
from repro.core import ops
from repro.core.algebra import Algebra, genomics_algebra
from repro.core.types import (
    Alternatives,
    DnaSequence,
    Gene,
    MRna,
    PrimaryTranscript,
    Protein,
    ProteinSequence,
    RnaSequence,
)
from repro.db import Database, OpaqueType

#: Selectivity estimates for the genomic predicates (section 6.5).  A
#: short motif is found in most long sequences; these defaults are the
#: calibration the ablation benchmark (A4) sweeps.
CONTAINS_SELECTIVITY = 0.05
RESEMBLES_SELECTIVITY = 0.10


def _sequence_udts() -> list[OpaqueType]:
    return [
        OpaqueType("DNA", DnaSequence,
                   serializers.serialize_sequence,
                   serializers.deserialize_dna),
        OpaqueType("RNA", RnaSequence,
                   serializers.serialize_sequence,
                   serializers.deserialize_rna),
        OpaqueType("PROTEIN_SEQ", ProteinSequence,
                   serializers.serialize_sequence,
                   serializers.deserialize_protein_sequence),
        OpaqueType("GENE", Gene,
                   serializers.serialize_gene,
                   serializers.deserialize_gene),
        OpaqueType("TRANSCRIPT", PrimaryTranscript,
                   serializers.serialize_transcript,
                   serializers.deserialize_transcript),
        OpaqueType("MRNA", MRna,
                   serializers.serialize_mrna,
                   serializers.deserialize_mrna),
        OpaqueType("PROTEIN", Protein,
                   serializers.serialize_protein,
                   serializers.deserialize_protein),
        OpaqueType("ALTERNATIVES", Alternatives,
                   serializers.serialize_alternatives,
                   serializers.deserialize_alternatives),
    ]


class GenomicsAdapter:
    """Registers the Genomics Algebra with a :class:`~repro.db.Database`."""

    def __init__(self, algebra: Algebra | None = None) -> None:
        self.algebra = algebra or genomics_algebra()

    def install(self, database: Database) -> None:
        """Plug every GDT and genomic operation into *database*."""
        for opaque in _sequence_udts():
            database.register_type(opaque)
        self._register_constructors(database)
        self._register_predicates(database)
        self._register_operations(database)
        self._register_accessors(database)

    # -- constructors -------------------------------------------------------------

    def _register_constructors(self, database: Database) -> None:
        register = database.register_function
        register("dna", lambda text: ops.decode(text),
                 description="build a DNA value from text")
        register("rna", lambda text: ops.decode_rna(text),
                 description="build an RNA value from text")
        register("protein_seq", lambda text: ops.decode_protein(text),
                 description="build a protein sequence from text")
        register("uncertain_best",
                 lambda alternatives: alternatives.best().value,
                 description="highest-confidence reading of ALTERNATIVES")
        register("uncertain_count",
                 lambda alternatives: len(alternatives),
                 description="number of conflicting readings")
        register("uncertain_confidence",
                 lambda alternatives: alternatives.best().confidence,
                 description="confidence of the best reading")

    # -- predicates (section 6.3) ---------------------------------------------------

    def _register_predicates(self, database: Database) -> None:
        register = database.register_function
        register(
            "contains",
            lambda sequence, pattern: ops.contains(sequence, pattern),
            selectivity=CONTAINS_SELECTIVITY,
            description="true when the sequence contains the motif "
                        "(IUPAC-ambiguity aware)",
            kernel="contains",
        )
        register(
            "resembles",
            lambda first, second, threshold=0.7:
                ops.resembles(first, second, threshold),
            selectivity=RESEMBLES_SELECTIVITY,
            description="k-mer cosine similarity above threshold",
        )
        register(
            "motif_count",
            lambda sequence, pattern:
                ops.count_occurrences(sequence, pattern),
            description="number of motif occurrences",
        )
        register(
            "motif_position",
            lambda sequence, pattern:
                ops.first_occurrence(sequence, pattern),
            description="first motif position or -1",
        )

    # -- algebra operations ------------------------------------------------------------

    def _register_operations(self, database: Database) -> None:
        register = database.register_function
        register("transcribe", ops.transcribe,
                 description="gene -> primary transcript")
        register("splice", ops.splice,
                 description="primary transcript -> mRNA")
        register("translate", ops.translate,
                 description="mRNA -> protein")
        register("express", ops.express,
                 description="gene -> protein (the composed pipeline)")
        register("reverse_transcribe", ops.reverse_transcribe,
                 description="mRNA -> cDNA")
        register("complement", ops.complement,
                 description="base-wise complement")
        register("reverse_complement", ops.reverse_complement,
                 description="opposite strand, 5'->3'",
                 kernel="reverse_complement")
        register("gc_content", ops.gc_content,
                 description="GC fraction",
                 kernel="gc_content")
        register("melting_temperature", ops.melting_temperature,
                 description="estimated Tm in Celsius")
        register("molecular_weight", ops.molecular_weight,
                 description="average molecular weight (Da)")
        register("isoelectric_point", ops.isoelectric_point,
                 description="pI of a protein sequence")
        register("hydropathy", ops.hydropathy,
                 description="Kyte-Doolittle GRAVY score")
        register("entropy", ops.shannon_entropy,
                 description="per-symbol Shannon entropy (bits)")
        register("orf_count",
                 lambda dna, minimum=20: len(ops.find_orfs(dna, minimum)),
                 description="number of complete ORFs (both strands)")
        register("alignment_score",
                 lambda a, b: ops.global_align(a, b).score,
                 description="Needleman-Wunsch global alignment score")
        register("local_alignment_score",
                 lambda a, b: ops.local_align(a, b).score,
                 description="Smith-Waterman local alignment score")
        register("similarity",
                 lambda a, b, k=4: ops.cosine_similarity(a, b, k),
                 description="k-mer cosine similarity in [0, 1]")

    # -- accessors ----------------------------------------------------------------------

    def _register_accessors(self, database: Database) -> None:
        register = database.register_function
        register("seq_text", lambda value: str(value),
                 description="textual form of any sequence value")
        register("gene_name", lambda gene: gene.name,
                 description="name of a GENE value")
        register("gene_sequence", lambda gene: gene.sequence,
                 description="genomic DNA of a GENE value")
        register("gene_organism", lambda gene: gene.organism,
                 description="organism of a GENE value")
        register("exon_count", lambda gene: len(gene.exons),
                 description="number of exons")
        register("exonic_length", lambda gene: gene.exonic_length,
                 description="summed exon length")
        register("protein_sequence", lambda protein: protein.sequence,
                 description="amino-acid chain of a PROTEIN value")
        register("protein_name",
                 lambda protein: protein.name,
                 description="name of a PROTEIN value")


def install_genomics(database: Database) -> GenomicsAdapter:
    """Convenience: install a fresh adapter into *database* and return it."""
    adapter = GenomicsAdapter()
    adapter.install(database)
    return adapter
