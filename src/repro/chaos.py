"""Chaos harness: the federation-layer fault-injection scenario matrix.

``python -m repro chaos --self-test`` (and ``tests/test_cli.py``) runs
every scenario below against seeded :class:`~repro.sources.faults.
FaultyRepository` proxies and asserts the degraded-answer contract the
mediator and the ETL monitors promise:

1. **intermittent-retry** — a source that fails twice then answers is
   transparently retried; the answer is complete and the retries are
   reported, not hidden.
2. **outage-window** — with one of three sources down, the non-strict
   mediator still returns every answer derivable from the two live
   sources, names the dead one in ``QueryHealth``, and ``strict=True``
   raises instead.
3. **breaker-recovery** — repeated failures open the per-source circuit
   (later queries skip the source without touching it); after the reset
   timeout a half-open probe recloses it and answers are complete again.
4. **corrupt-snapshot** — a monitor fed truncated/garbled dumps
   quarantines what it cannot parse, never fabricates deletions, and
   converges to the true source state once dumps are clean again.
5. **log-channel-loss** — a :class:`~repro.etl.monitors.LogMonitor`
   whose log stops answering degrades to snapshot-diff polling and,
   when the log returns, resyncs without losing or double-delivering a
   single delta.
6. **deadline-exhaustion** — a per-query backoff budget stops retries
   from stretching an answer forever; the health report says the
   deadline was hit and the live sources still answer.
7. **push-channel-loss** — a :class:`~repro.etl.monitors.TriggerMonitor`
   whose push channel goes quiet falls back to snapshot differentials
   and recovers the dropped notifications exactly once.
8. **concurrent-fanout** — concurrent source fan-out returns the same
   rows in the same order as the sequential mediator, shortens modelled
   wall-clock latency, and replays bit for bit across runs.
9. **cache-invalidation-storm** — a delta storm plus an outage window
   against a :class:`~repro.mediator.CachedMediator`: every served
   answer matches the post-delta source state (zero staleness), while
   entries nothing touched survive in cache — precise invalidation,
   no blanket flush.
10. **trace-correlation** — an outage window plus the retry storm it
    provokes, run with :mod:`repro.obs` tracing on: the captured trace
    must contain the breaker-open and degraded-answer annotations, and
    every ``QueryHealth.trace_id`` must name the trace whose spans
    describe that very query.
11. **overload-storm** — a 6× offered-load burst with one source in an
    outage, served through the :mod:`repro.serving` admission layer:
    the server keeps answering in-deadline during the storm, retry
    budgets bound the amplification (denials > 0), the AIMD limiter
    cuts the dead source's width, the brownout ladder steps up and —
    hysteretically — unwinds to NORMAL, and a calm tail is served
    clean, with zero sheds at the end.
12. **replica-failover** — the primary dies mid-stream with unshipped
    statements on disk; the most-caught-up follower is promoted inside
    the promotion window with zero statements lost or doubled, and the
    surviving follower re-follows the new primary.
13. **bit-rot-repair** — seeded byte-flips land in a follower's sealed
    segment, in the primary's checkpoint image, and in an in-flight
    shipment: every flip is detected (CRC / digest), none is applied,
    clean runs raise zero false positives; anti-entropy quarantines
    and re-fetches the rotted segment (byte-identical convergence),
    and promotion refuses the follower whose ledger fails
    verification.
14. **split-brain** — a leased primary is cut off by a one-sided
    partition and keeps acknowledging writes until its lease dies; a
    follower is promoted under a bumped epoch, the zombie's
    post-partition shipments are fenced by every survivor, and on heal
    the zombie demotes, quarantines its diverged tail, and names each
    acknowledged-but-lost statement — while the write-history auditor
    certifies zero acknowledged-and-replicated writes lost, exactly one
    acknowledging primary per epoch, and byte-identical convergence.

Every scenario is deterministic under its fixed seed: same faults, same
retries, same answers, bit for bit.  ``--concurrency N`` re-runs the
mediator-driven scenarios with an explicit fan-out width (default: one
worker per source); ``--only NAME`` runs a single scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MediatorError
from repro.etl.delta import DELETE
from repro.etl.monitors import LogMonitor, SnapshotMonitor, TriggerMonitor
from repro.mediator import (
    BreakerPolicy,
    CachedMediator,
    Mediator,
    RetryPolicy,
)
from repro.mediator.cache import normalize_query
from repro.sources import (
    AceRepository,
    EmblRepository,
    FaultyRepository,
    GenBankRepository,
    RelationalRepository,
    SwissProtRepository,
    Universe,
    VirtualClock,
)


@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario."""

    name: str
    passed: bool
    detail: str

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"  {status:<4} {self.name:<22} {self.detail}"


class _ScenarioFailure(AssertionError):
    """A scenario expectation that did not hold."""


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise _ScenarioFailure(message)


def _federation(seed: int = 101, size: int = 24):
    """Three overlapping faultable sources on one shared timeline."""
    universe = Universe(seed=seed, size=size)
    timeline = VirtualClock()
    sources = [
        FaultyRepository(GenBankRepository(universe), timeline, seed=1),
        FaultyRepository(EmblRepository(universe), timeline, seed=2),
        FaultyRepository(AceRepository(universe), timeline, seed=3),
    ]
    return universe, timeline, sources


def _answer_keys(rows) -> set[tuple[str, str]]:
    return {(row.source, row.accession) for row in rows}


def _baseline_keys(faulty_sources) -> set[tuple[str, str]]:
    """What a fault-free mediator over the same repositories answers."""
    return _answer_keys(
        Mediator([proxy.inner for proxy in faulty_sources]).find_genes()
    )


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------

def scenario_intermittent_retry(concurrency: int | None = None) -> str:
    __, timeline, sources = _federation(seed=201)
    genbank = sources[0]
    genbank.fail_next(2, "snapshot")
    mediator = Mediator(sources, timeline=timeline,
                        max_concurrency=concurrency)
    answers = mediator.find_genes()
    health = answers.health
    _expect(_answer_keys(answers) == _baseline_keys(sources),
            "retried answer differs from the fault-free answer")
    _expect(health.complete, f"health not complete: {health.summary()}")
    _expect(health.sources_retried == ("GenBank",),
            f"expected GenBank retried, got {health.sources_retried}")
    _expect(health.outcome("GenBank").retries == 2,
            f"expected 2 retries, got {health.outcome('GenBank').retries}")
    _expect(mediator.cost.retries == 2 and mediator.cost.source_failures == 2,
            "retry/failure counters not folded into MediationCost")
    return (f"2 injected failures absorbed; "
            f"{len(answers)} rows, {health.summary()}")


def scenario_outage_window(concurrency: int | None = None) -> str:
    __, timeline, sources = _federation(seed=202)
    embl = sources[1]
    embl.schedule_outage(0.0, 1_000.0)
    mediator = Mediator(sources, timeline=timeline,
                        max_concurrency=concurrency)
    answers = mediator.find_genes()
    health = answers.health
    live_keys = _answer_keys(
        Mediator([sources[0].inner, sources[2].inner]).find_genes()
    )
    _expect(_answer_keys(answers) == live_keys,
            "degraded answer lost rows derivable from the live sources")
    _expect(health.sources_failed == ("EMBL",),
            f"expected EMBL failed, got {health.sources_failed}")
    _expect(not health.complete, "health claims completeness in an outage")
    try:
        mediator.find_genes(strict=True)
    except MediatorError as error:
        _expect("EMBL" in str(error), "strict error does not name EMBL")
    else:
        raise _ScenarioFailure("strict=True did not raise on a dead source")
    return (f"{len(answers)} rows from 2 live sources; "
            f"failed={','.join(health.sources_failed)}; strict raised")


def scenario_breaker_recovery(concurrency: int | None = None) -> str:
    __, timeline, sources = _federation(seed=203)
    embl = sources[1]
    embl.schedule_outage(0.0, 60.0)
    mediator = Mediator(
        sources,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=1.0,
                                 multiplier=2.0, jitter=0.0),
        breaker_policy=BreakerPolicy(failure_threshold=3, reset_timeout=20.0),
        timeline=timeline, max_concurrency=concurrency,
    )
    breaker = mediator.breaker_for("EMBL")
    mediator.find_genes()          # 2 failures: breaker still closed
    _expect(breaker.state == "closed", "breaker opened below its threshold")
    mediator.find_genes()          # 3rd failure opens the circuit
    _expect(breaker.state == "open",
            f"breaker should be open, is {breaker.state}")
    skipped = mediator.find_genes()
    _expect(skipped.health.sources_skipped == ("EMBL",),
            "open breaker did not short-circuit the source")
    _expect(mediator.cost.breaker_rejections >= 1,
            "breaker rejection not folded into MediationCost")
    timeline.advance(100.0)        # outage over, reset timeout elapsed
    recovered = mediator.find_genes()
    _expect(breaker.state == "closed",
            f"half-open probe did not reclose, state={breaker.state}")
    _expect(recovered.health.complete
            and _answer_keys(recovered) == _baseline_keys(sources),
            "post-recovery answer incomplete")
    return (f"closed→open after 3 failures, skipped while open, "
            f"half-open probe reclosed at t={timeline.now():.0f}")


def scenario_corrupt_snapshot(concurrency: int | None = None) -> str:
    del concurrency                    # monitor-only scenario, no fan-out
    universe = Universe(seed=204, size=24)
    timeline = VirtualClock()
    genbank = FaultyRepository(GenBankRepository(universe), timeline, seed=7)
    monitor = SnapshotMonitor(genbank)
    baseline = set(genbank.accessions())
    genbank.corrupt_with_rate(1.0)
    delivered = []
    for __ in range(3):
        genbank.advance(3)
        delivered.extend(monitor.poll())
    truly_deleted = baseline - set(genbank.accessions())
    fabricated = {delta.accession for delta in delivered
                  if delta.operation == DELETE} - truly_deleted
    _expect(not fabricated,
            f"corrupt dumps fabricated deletions: {sorted(fabricated)}")
    _expect(monitor.health.quarantined > 0,
            "three corrupt dumps produced no quarantined record")
    genbank.corrupt_with_rate(0.0)
    monitor.poll()
    clean_state = monitor._split_snapshot(genbank.inner.snapshot())
    _expect(monitor._images == clean_state,
            "monitor did not converge to the true state after a clean poll")
    return (f"{monitor.health.quarantined} quarantined, "
            f"0 fabricated deletes, converged after clean poll")


def scenario_log_channel_loss(concurrency: int | None = None) -> str:
    del concurrency                    # monitor-only scenario, no fan-out
    universe = Universe(seed=205, size=24)
    timeline = VirtualClock()
    relational = FaultyRepository(RelationalRepository(universe),
                                  timeline, seed=9)
    monitor = LogMonitor(relational)
    delivered = []
    relational.advance(4)
    delivered.extend(monitor.poll())            # healthy log poll
    relational.drop_log_channel()
    relational.advance(4)
    fallback = monitor.poll()                   # snapshot-diff fallback
    delivered.extend(fallback)
    _expect(monitor.health.degraded_polls == 1,
            "log loss did not degrade to snapshot polling")
    _expect(fallback, "fallback poll missed the outage-window changes")
    relational.restore_log_channel()
    relational.advance(4)
    delivered.extend(monitor.poll())            # log again; no re-delivery
    ids = [delta.delta_id for delta in delivered]
    _expect(len(ids) == len(set(ids)),
            "a delta was delivered twice across the fallback boundary")
    expected = {
        accession: monitor._normalize(relational.render_record(
            relational.record_state(accession)))
        for accession in relational.accessions()
    }
    _expect(monitor._images == expected,
            "monitor images diverged from the source after resync")
    return (f"{len(delivered)} deltas across log loss + resync, "
            f"0 lost, 0 double-delivered")


def scenario_deadline_exhaustion(concurrency: int | None = None) -> str:
    __, timeline, sources = _federation(seed=206)
    embl = sources[1]
    embl.schedule_outage(0.0, 100_000.0)
    mediator = Mediator(
        sources,
        retry_policy=RetryPolicy(max_attempts=10, base_delay=30.0,
                                 multiplier=2.0, jitter=0.0, deadline=40.0),
        timeline=timeline, max_concurrency=concurrency,
    )
    answers = mediator.find_genes()
    health = answers.health
    _expect(health.deadline_hit, "deadline budget was never enforced")
    _expect("EMBL" in health.sources_failed,
            f"expected EMBL failed on deadline, got {health.sources_failed}")
    _expect(health.outcome("EMBL").attempts < 10,
            "deadline did not cap the attempt count")
    _expect(health.elapsed <= 40.0 + 30.0,
            f"query overshot its budget: t+{health.elapsed:.0f}")
    live_keys = _answer_keys(
        Mediator([sources[0].inner, sources[2].inner]).find_genes()
    )
    _expect(_answer_keys(answers) == live_keys,
            "deadline-degraded answer lost live-source rows")
    return (f"budget 40.0 capped EMBL at "
            f"{health.outcome('EMBL').attempts} attempts; "
            f"{len(answers)} rows, t+{health.elapsed:.0f}")


def scenario_push_channel_loss(concurrency: int | None = None) -> str:
    del concurrency                    # monitor-only scenario, no fan-out
    universe = Universe(seed=207, size=24)
    timeline = VirtualClock()
    swissprot = FaultyRepository(SwissProtRepository(universe),
                                 timeline, seed=11)
    monitor = TriggerMonitor(swissprot)
    delivered = []
    swissprot.advance(3)
    delivered.extend(monitor.poll())            # push delivery
    _expect(len(delivered) == 3, "healthy push channel lost notifications")
    swissprot.drop_push_channel()
    swissprot.advance(4)                        # notifications dropped
    _expect(swissprot.stats.dropped_notifications == 4,
            "proxy failed to drop notifications while the channel was down")
    recovered = monitor.poll()                  # snapshot-diff fallback
    delivered.extend(recovered)
    _expect(monitor.health.degraded_polls >= 1,
            "dead push channel did not degrade the monitor")
    _expect(recovered, "fallback poll missed the dropped notifications")
    swissprot.restore_push_channel()
    swissprot.advance(2)
    delivered.extend(monitor.poll())            # resync + fresh pushes
    ids = [delta.delta_id for delta in delivered]
    _expect(len(ids) == len(set(ids)),
            "a notification was re-delivered after the channel recovered")
    expected = {
        accession: monitor._normalize(swissprot.render_record(
            swissprot.record_state(accession)))
        for accession in swissprot.accessions()
    }
    _expect(monitor._images == expected,
            "monitor images diverged from the source after resync")
    return (f"4 dropped notifications recovered via snapshot diff, "
            f"{len(delivered)} deltas total, none doubled")


def scenario_concurrent_fanout(concurrency: int | None = None) -> str:
    def run(width: int):
        __, timeline, sources = _federation(seed=208)
        for source in sources:
            source.add_latency(2.0)
            source.fail_with_rate(0.05)
        mediator = Mediator(
            sources,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0,
                                     multiplier=2.0, jitter=0.0),
            timeline=timeline, max_concurrency=width,
        )
        answers = mediator.find_genes()
        rows = [(row.source, row.accession, row.sequence_text)
                for row in answers]
        return rows, answers.health.elapsed

    width = concurrency if concurrency is not None else 3
    sequential_rows, sequential_elapsed = run(1)
    rows, elapsed = run(width)
    _expect(rows == sequential_rows,
            "concurrent fusion changed the rows or their order")
    _expect(run(width) == (rows, elapsed),
            "a concurrent run did not replay bit for bit")
    if width > 1:
        _expect(elapsed < sequential_elapsed,
                f"fan-out did not shorten modelled latency "
                f"(t+{elapsed:.0f} vs t+{sequential_elapsed:.0f})")
    return (f"width {width}: rows bit-identical to sequential, "
            f"latency t+{sequential_elapsed:.0f}→t+{elapsed:.0f}, "
            f"replay exact")


def scenario_cache_invalidation_storm(concurrency: int | None = None) -> str:
    __, timeline, sources = _federation(seed=209)
    genbank = sources[0]
    cached = CachedMediator(
        sources,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=1.0,
                                 multiplier=2.0, jitter=0.0),
        breaker_policy=BreakerPolicy(failure_threshold=99,
                                     reset_timeout=25.0),
        timeline=timeline, max_concurrency=concurrency,
    )

    # Prime the cache: one extent scan plus a spread of point lookups.
    cached.find_genes()
    lookups = sorted({accession
                      for source in sources
                      for accession in source.accessions()})[:8]
    for accession in lookups:
        cached.gene(accession)

    # The storm: every source churns while GenBank sits in an outage.
    outage_start = timeline.now()
    genbank.schedule_outage(outage_start, outage_start + 50.0)
    touched = set()
    for source in sources:
        for entry in source.advance(5):
            touched.add(entry.accession)

    # Mid-storm sweep: GenBank's poll dies inside the outage, so it goes
    # suspect — its dependent entries are bypassed, never flushed.
    cached.sync()
    _expect("GenBank" in cached.suspect_sources,
            "a failed poll did not mark GenBank suspect")
    _expect(len(cached.cache) > 0,
            "the mid-storm sweep flushed the whole cache")
    probe = cached.gene(lookups[0])
    _expect(probe.from_cache is False,
            "an entry depending on a suspect source was served from cache")

    timeline.advance(60.0)             # outage over
    cached.sync()                      # clean sweep: snapshot diff lands
    _expect(not cached.suspect_sources, "suspicion survived a clean sweep")
    _expect(cached.staleness_bound() == 0.0,
            "a clean sweep did not reset the staleness bound")

    # Precision: entries the storm never touched are still cached.
    untouched = [accession for accession in lookups
                 if accession not in touched]
    _expect(untouched, "the storm touched every primed lookup (seed)")
    for accession in untouched:
        _expect(normalize_query("gene", accession=accession) in cached.cache,
                f"untouched entry {accession} was flushed")

    # Zero staleness: every served answer matches a fault-free mediation
    # over the post-storm sources.
    truth = Mediator([source.inner for source in sources])
    stale = []
    if (_answer_keys(cached.find_genes())
            != _answer_keys(truth.find_genes())):
        stale.append("find_genes")
    hits = 0
    for accession in lookups:
        served = cached.gene(accession)
        hits += served.from_cache
        if ([(view.source, view.sequence_text) for view in served]
                != [(view.source, view.sequence_text)
                    for view in truth.gene(accession)]):
            stale.append(accession)
    _expect(not stale, f"stale cached answers served: {stale}")
    _expect(hits >= len(untouched),
            "surviving entries were not served from cache")
    return (f"storm touched {len(touched)} accessions; "
            f"{cached.cost.cache_invalidations} precise evictions, "
            f"{len(untouched)} untouched entries survived, 0 stale")


def scenario_trace_correlation(concurrency: int | None = None) -> str:
    from repro import obs

    __, timeline, sources = _federation(seed=210)
    embl = sources[1]
    embl.schedule_outage(0.0, 1_000.0)        # outage spanning the storm
    mediator = Mediator(
        sources,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=1.0,
                                 multiplier=2.0, jitter=0.0),
        breaker_policy=BreakerPolicy(failure_threshold=3,
                                     reset_timeout=10_000.0),
        timeline=timeline, max_concurrency=concurrency,
    )
    sink = obs.InMemorySink()
    obs.enable(sample_rate=1.0, clock=timeline, sink=sink)
    try:
        storm = mediator.find_genes()         # retry storm: 2 attempts fail
        mediator.find_genes()                 # 3rd failure opens the breaker
        skipped = mediator.find_genes()       # breaker-open short-circuit
    finally:
        obs.disable()

    _expect(len(sink.traces) == 3, f"expected 3 traces, got {len(sink.traces)}")
    for answers in (storm, skipped):
        _expect(answers.health.trace_id is not None,
                "a traced query's health carries no trace id")
    trace_of = {trace[0]["trace"]: trace for trace in sink.traces}
    _expect(storm.health.trace_id != skipped.health.trace_id
            and {storm.health.trace_id,
                 skipped.health.trace_id} <= trace_of.keys(),
            "health.trace_id does not name a captured trace")

    def attempts(trace, source):
        return [span for span in trace
                if span["name"] == "source.attempt"
                and span["attrs"].get("source") == source]

    storm_trace = trace_of[storm.health.trace_id]
    (storm_attempt,) = attempts(storm_trace, "EMBL")
    _expect(storm_attempt["status"] == "error"
            and storm_attempt["attrs"].get("status") == "failed"
            and storm_attempt["attrs"].get("retries") == 1,
            f"retry storm not annotated: {storm_attempt['attrs']}")

    skipped_trace = trace_of[skipped.health.trace_id]
    (skip_attempt,) = attempts(skipped_trace, "EMBL")
    _expect(skip_attempt["attrs"].get("status") == "skipped"
            and skip_attempt["attrs"].get("breaker") == "open",
            f"breaker-open not annotated: {skip_attempt['attrs']}")
    degraded = [span for span in skipped_trace
                if span["attrs"].get("degraded") is True]
    _expect(degraded and all("EMBL" in span["attrs"]["unavailable"]
                             for span in degraded),
            "degraded answer not annotated on the mediator span")
    live = attempts(skipped_trace, "GenBank") + attempts(skipped_trace,
                                                         "AceDB")
    _expect(len(live) == 2
            and all(span["attrs"].get("status") == "ok" for span in live),
            "live-source attempts missing from the skipped query's trace")
    return (f"3 traces captured; retry storm, breaker-open and "
            f"degraded-answer annotations all on "
            f"{skipped.health.trace_id}")


def scenario_overload_storm(concurrency: int | None = None) -> str:
    from repro.serving import (
        NORMAL,
        ServingPolicy,
        overload_federation,
        summarize,
        synthetic_workload,
    )

    policy = ServingPolicy(capacity=4, deadline=25.0,
                           brownout_enter_pressure=0.3,
                           brownout_exit_pressure=0.1)
    server, mediator, sources, accessions = overload_federation(
        policy=policy, max_concurrency=concurrency)
    sources[1].schedule_outage(0.0, 60.0)      # EMBL dead under the storm
    storm = synthetic_workload(accessions, count=100, load_factor=6.0,
                               capacity=4, mean_service=3.0, seed=11)
    calm = synthetic_workload(accessions, count=40, load_factor=0.5,
                              capacity=4, mean_service=3.0, seed=12,
                              start=storm[-1].arrival + 30.0)
    results = server.serve(storm + calm)
    stats = summarize(results, budget=policy.deadline)

    storm_good = sum(1 for result in results[:len(storm)]
                     if not result.shed
                     and result.in_deadline(policy.deadline))
    _expect(storm_good > 0,
            "the protected server answered nothing during the storm")
    _expect(stats["shed"] > 0, "a 6x overload storm shed nothing")
    _expect(mediator.cost.retry_budget_denials > 0,
            "the retry budget never denied a retry under the storm")
    _expect(mediator.cost.retries < len(results),
            f"retry amplification unbounded: {mediator.cost.retries} "
            f"retries for {len(results)} requests")
    limiter = server.limiters["EMBL"]
    _expect(limiter.decreases > 0 and limiter.limit < policy.capacity,
            "the AIMD limiter never cut the dead source's width")
    ladder = server.brownout
    _expect(ladder.transitions, "queue pressure never tripped brownout")
    _expect(max(level for __, level in ladder.transitions) >= 1,
            "brownout never stepped above NORMAL")
    _expect(ladder.level == NORMAL,
            f"brownout stuck at {ladder.level_name} after the storm")
    tail = results[-20:]
    _expect(all(not result.shed and result.in_deadline(policy.deadline)
                for result in tail),
            "the calm tail was not served clean after recovery")
    peak = max(level for __, level in ladder.transitions)
    return (f"storm: {storm_good}/{len(storm)} good in-deadline, "
            f"shed {stats['shed_by_reason']}, "
            f"{mediator.cost.retry_budget_denials} retries denied; "
            f"brownout peaked at level {peak}, unwound to NORMAL; "
            f"calm tail clean")


def scenario_replica_failover(concurrency: int | None = None) -> str:
    """Scenario 12: the primary dies mid-stream; a follower takes over.

    A replication group ships WAL segments across a rotation boundary,
    loses its primary with unshipped statements still on disk, and must
    promote the most-caught-up follower inside the promotion window —
    with zero statements lost or applied twice, proven by comparing
    the promoted database against a reference that replayed everything.
    """
    del concurrency                    # single-writer scenario, no fan-out
    import os
    import tempfile

    from repro.db import Database
    from repro.db.recovery import databases_equal
    from repro.federation import FollowerNode, PrimaryNode, ReplicationGroup

    def fresh() -> Database:
        database = Database()
        database.execute(
            "CREATE TABLE events (id INTEGER PRIMARY KEY, note TEXT)")
        return database

    with tempfile.TemporaryDirectory() as workdir:
        timeline = VirtualClock()
        primary = PrimaryNode("alpha", os.path.join(workdir, "alpha"),
                              fresh(), timeline=timeline)
        bravo = FollowerNode("bravo", os.path.join(workdir, "bravo"),
                             fresh(), timeline=timeline)
        charlie = FollowerNode("charlie", os.path.join(workdir, "charlie"),
                               fresh(), timeline=timeline)
        group = ReplicationGroup(primary, [bravo, charlie],
                                 promotion_window=5.0)

        total = 20
        for index in range(12):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        group.sync()
        primary.rotate()
        for index in range(12, total):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        bravo.catch_up(primary)        # bravo alone sees the new segment
        timeline.advance(2.0)
        _expect(charlie.staleness_bound() > bravo.staleness_bound(),
                "catch-up should reset bravo's staleness below charlie's")
        for index in range(total, total + 5):
            # Nobody ships these: promotion must salvage them from the
            # dead primary's disk.
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        total += 5

        group.fail_primary()
        promoted = group.promote()
        _expect(promoted.name == "bravo",
                f"most-caught-up follower is bravo, promoted "
                f"{promoted.name!r}")
        _expect(group.last_promotion is not None
                and group.last_promotion <= group.promotion_window,
                f"promotion took {group.last_promotion!r} virtual s, "
                f"window is {group.promotion_window}")

        reference = fresh()
        for index in range(total):
            reference.execute("INSERT INTO events VALUES (?, ?)",
                              [index, f"n{index}"])
        _expect(databases_equal(promoted.database, reference),
                "promoted database lost or duplicated statements")
        _expect(promoted.wal.generation >= 1,
                "promoted WAL must continue the generation sequence")

        promoted.execute("INSERT INTO events VALUES (?, ?)",
                         [total, "post-failover"])
        group.sync()
        reference.execute("INSERT INTO events VALUES (?, ?)",
                          [total, "post-failover"])
        _expect(databases_equal(group.followers[0].database, reference),
                "surviving follower failed to catch up from new primary")
    return (f"{total} stmts across a rotation; bravo promoted in "
            f"{group.last_promotion:.2f} virtual s (window 5.0); "
            f"0 lost / 0 duplicated; charlie re-follows the new primary")


def scenario_bit_rot_repair(concurrency: int | None = None) -> str:
    """Scenario 13: seeded bit rot across the replication topology.

    Byte-flips are injected at three points — a follower's sealed
    segment, the primary's checkpoint image, and an in-flight shipment
    payload — and every one must be *detected* (per-record CRC32,
    whole-file digest, shipment digest) and *contained* (nothing
    corrupt applied, the rotted follower refused promotion).  Clean
    state must scrub clean first (zero false positives), and after
    anti-entropy read-repair the replicas must converge byte-identical
    to the primary.
    """
    del concurrency                    # single-writer scenario, no fan-out
    import os
    import tempfile

    from repro.db import Database
    from repro.db.recovery import databases_equal
    from repro.db.scrub import _flip_byte
    from repro.db.storage import read_image
    from repro.errors import FederationError, StorageError
    from repro.federation import (
        FollowerNode,
        PrimaryNode,
        ReplicationGroup,
        Shipment,
        sealed_digests,
    )

    def fresh() -> Database:
        database = Database()
        database.execute(
            "CREATE TABLE events (id INTEGER PRIMARY KEY, note TEXT)")
        return database

    injected = detected = 0
    with tempfile.TemporaryDirectory() as workdir:
        timeline = VirtualClock()
        primary = PrimaryNode("alpha", os.path.join(workdir, "alpha"),
                              fresh(), timeline=timeline)
        bravo = FollowerNode("bravo", os.path.join(workdir, "bravo"),
                             fresh(), timeline=timeline)
        charlie = FollowerNode("charlie", os.path.join(workdir, "charlie"),
                               fresh(), timeline=timeline)
        group = ReplicationGroup(primary, [bravo, charlie],
                                 promotion_window=5.0)

        for index in range(8):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        primary.rotate()
        for index in range(8, 16):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        image_path = os.path.join(workdir, "alpha", "image.json")
        primary.checkpoint(image_path)     # rotates, then writes the image
        for index in range(16, 20):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        group.sync()

        # -- phase 0: clean state, zero false positives --------------------
        _expect(bravo.verify_ledger() == [] and charlie.verify_ledger() == [],
                "clean follower ledgers must verify with zero defects")
        _expect(bravo.anti_entropy(primary).clean
                and charlie.anti_entropy(primary).clean,
                "clean anti-entropy round must report no divergence")
        read_image(image_path)             # digest must verify
        _expect(bravo.rejected_shipments == 0
                and charlie.rejected_shipments == 0,
                "clean shipping must reject nothing")

        # -- phase 1: bit rot in a follower's sealed segment ---------------
        rotted_path = bravo.wal_path + ".000000"
        _flip_byte(rotted_path, fraction=0.5)
        injected += 1
        defects = bravo.verify_ledger()
        _expect(len(defects) == 1 and defects[0].kind == "bit_rot"
                and defects[0].path == rotted_path
                and defects[0].offset is not None,
                f"sealed-segment rot must verify as localized bit_rot, "
                f"got {[(d.kind, d.path) for d in defects]}")
        detected += 1
        repair = bravo.anti_entropy(primary)
        _expect(repair.mismatched == [0] and repair.repaired == [0]
                and len(repair.quarantined) == 1
                and os.path.exists(repair.quarantined[0]),
                f"anti-entropy must quarantine and re-fetch generation 0, "
                f"got {repair.summary()}")
        _expect(bravo.verify_ledger() == [],
                "repaired ledger must verify clean again")

        # -- phase 2: bit rot in the primary's checkpoint image ------------
        _flip_byte(image_path, fraction=0.5)
        injected += 1
        try:
            read_image(image_path)
            _expect(False, "rotted image must fail its digest check")
        except StorageError as error:
            _expect(error.kind == "digest_mismatch",
                    f"image rot must read as digest_mismatch, "
                    f"got {error.kind!r}")
            detected += 1

        # -- phase 3: bit rot in an in-flight shipment ---------------------
        shipment = primary.ship()[0]
        flipped = shipment.payload.replace("n1", "nX", 1)
        corrupt = Shipment(shipment.generation, flipped,
                           shipment.sealed, shipment.digest)
        injected += 1
        before = charlie.applied_total()
        try:
            charlie.apply_shipment(corrupt)
            _expect(False, "corrupt in-flight shipment must be rejected")
        except FederationError:
            detected += 1
        _expect(charlie.rejected_shipments == 1
                and charlie.applied_total() == before,
                "rejection must be counted and apply nothing")
        _expect(charlie.verify_ledger() == [],
                "a rejected shipment must not touch the local ledger")

        # -- phase 4: promotion refuses the rotted candidate ---------------
        for index in range(20, 26):
            primary.execute("INSERT INTO events VALUES (?, ?)",
                            [index, f"n{index}"])
        primary.rotate()
        charlie.catch_up(primary)          # charlie alone pulls ahead
        rotted_charlie = charlie.wal_path + ".000002"
        _flip_byte(rotted_charlie, fraction=0.5)
        injected += 1
        group.fail_primary()
        promoted = group.promote()
        _expect(promoted.name == "bravo",
                f"promotion must refuse rotted charlie and elect bravo, "
                f"elected {promoted.name!r}")
        _expect(len(group.refused) == 1
                and group.refused[0].startswith("charlie: bit_rot"),
                f"the refusal ledger must name charlie's bit rot, "
                f"got {group.refused!r}")
        detected += 1

        reference = fresh()
        for index in range(26):
            reference.execute("INSERT INTO events VALUES (?, ?)",
                              [index, f"n{index}"])
        _expect(databases_equal(promoted.database, reference),
                "promoted database lost or duplicated statements")

        # -- phase 5: the rotted survivor repairs and converges ------------
        repair = charlie.anti_entropy(promoted)
        _expect(repair.mismatched == [2] and repair.repaired == [2],
                f"charlie must repair generation 2 from the new primary, "
                f"got {repair.summary()}")
        charlie.catch_up(promoted)
        _expect(charlie.verify_ledger() == [],
                "repaired survivor must verify clean")
        _expect(databases_equal(charlie.database, reference),
                "repaired survivor must converge to the reference")
        mine, theirs = (sealed_digests(charlie.wal_path),
                        sealed_digests(promoted.wal_path))
        shared = set(mine) & set(theirs)
        _expect(shared and all(mine[gen] == theirs[gen] for gen in shared),
                f"sealed segments must converge byte-identical, "
                f"digests differ on {sorted(shared)!r}")
    _expect(injected == detected == 4,
            f"every injected flip must be detected: "
            f"{detected}/{injected}")
    return (f"{injected} seeded flips (sealed segment, image, in-flight, "
            f"promote-time) — {detected} detected, 0 applied, 0 false "
            f"positives; quarantine + re-fetch converged byte-identical; "
            f"rotted charlie refused promotion")


def scenario_split_brain(concurrency: int | None = None) -> str:
    """Scenario 14: a partitioned zombie primary versus the epoch fence.

    A leased primary is partitioned away mid-stream.  While its lease
    is still live it keeps acknowledging writes nobody will ever
    replicate; once the lease dies its writes are refused with a
    structured error (never silently accepted).  A follower is promoted
    under a bumped epoch.  When the partition heals, the zombie's
    shipments — claiming the deposed epoch — must be fenced by every
    survivor, and the zombie must demote: quarantine its diverged tail
    and name every acknowledged-but-lost statement.  The write-history
    auditor then certifies the whole run from the outside: no
    acknowledged-and-replicated write lost, exactly one acknowledging
    primary per epoch, all survivors byte-identical.
    """
    del concurrency                    # single-writer scenario, no fan-out
    import os
    import tempfile

    from repro.db import Database
    from repro.db.recovery import databases_equal
    from repro.errors import FederationError, LeaseError
    from repro.federation import (
        FaultyChannel,
        FollowerNode,
        MembershipService,
        PrimaryNode,
        ReplicationGroup,
        WriteHistoryAuditor,
    )

    def fresh() -> Database:
        database = Database()
        database.execute(
            "CREATE TABLE events (id INTEGER PRIMARY KEY, note TEXT)")
        return database

    with tempfile.TemporaryDirectory() as workdir:
        timeline = VirtualClock()
        membership = MembershipService(timeline, lease_timeout=2.0)
        auditor = WriteHistoryAuditor()
        alpha_net = FaultyChannel(timeline, name="alpha-net", seed=14)
        primary = PrimaryNode("alpha", os.path.join(workdir, "alpha"),
                              fresh(), timeline=timeline,
                              membership=membership, channel=alpha_net,
                              auditor=auditor)
        bravo = FollowerNode("bravo", os.path.join(workdir, "bravo"),
                             fresh(), timeline=timeline, auditor=auditor)
        charlie = FollowerNode("charlie", os.path.join(workdir, "charlie"),
                               fresh(), timeline=timeline, auditor=auditor)
        group = ReplicationGroup(primary, [bravo, charlie],
                                 membership=membership,
                                 promotion_window=5.0)
        _expect(primary.epoch == 1, "the first election must open epoch 1")

        # -- phase 1: healthy replication under epoch 1 --------------------
        replicated = 8
        for index in range(replicated):
            primary.execute(
                f"INSERT INTO events VALUES ({index}, 'n{index}')", [])
        group.sync()

        # -- phase 2: the partition opens; the zombie keeps promising ------
        alpha_net.partition(timeline.now(), timeline.now() + 100.0)
        zombie_acks = 3
        for index in range(replicated, replicated + zombie_acks):
            primary.execute(
                f"INSERT INTO events VALUES ({index}, 'zombie{index}')",
                [])
        _expect(len(primary.acked) == replicated + zombie_acks,
                "the zombie must still ack under its live lease")

        # -- phase 3: the lease dies; refusal is loud, never silent --------
        timeline.advance(3.0)
        refused = False
        try:
            primary.execute("INSERT INTO events VALUES (99, 'late')", [])
        except LeaseError as error:
            refused = error.kind == "expired"
        _expect(refused, "an expired, unrenewable lease must refuse "
                         "writes with a structured error")
        _expect(primary.writes_refused == 1,
                "the refusal must be counted")

        # -- phase 4: failover bumps the epoch over the zombie -------------
        promoted = group.promote()
        _expect(promoted.name == "bravo" and promoted.epoch == 2,
                f"bravo must take epoch 2, got {promoted.name!r} at "
                f"epoch {promoted.epoch!r}")
        post_failover = 4
        for index in range(20, 20 + post_failover):
            promoted.execute(
                f"INSERT INTO events VALUES ({index}, 'e2-{index}')", [])
        group.sync()

        # -- phase 5: heal; the zombie's claim is fenced everywhere --------
        survivor = group.followers[0]
        fenced_before = survivor.shipments_fenced
        survivor.catch_up(primary)     # the zombie still ships epoch 1
        _expect(survivor.shipments_fenced > fenced_before,
                "the survivor must fence the zombie's stale-epoch "
                "shipments")
        _expect(survivor.applied != {} and survivor.last_fence is not None,
                "fencing must leave an audit trail")

        # -- phase 6: the zombie demotes and owns its divergence -----------
        rejoined, divergence = primary.demote(promoted, database=fresh())
        _expect(primary.demoted and not primary.alive,
                "a demoted primary must stop accepting writes")
        lost = divergence.acknowledged_lost
        _expect(len(lost) == zombie_acks,
                f"the divergence report must name all {zombie_acks} "
                f"acknowledged-but-lost statements, got {len(lost)}")
        _expect(all(entry.acknowledged for entry in lost)
                and divergence.quarantined,
                "lost acks must be flagged and the diverged files "
                "quarantined")
        rejoined.catch_up(promoted)

        # -- phase 7: the outside judge certifies the run ------------------
        reference = fresh()
        for index in range(replicated):
            reference.execute(
                f"INSERT INTO events VALUES ({index}, 'n{index}')", [])
        for index in range(20, 20 + post_failover):
            reference.execute(
                f"INSERT INTO events VALUES ({index}, 'e2-{index}')", [])
        _expect(databases_equal(promoted.database, reference),
                "the surviving history must hold exactly the replicated "
                "plus post-failover writes")
        for node in (survivor, rejoined):
            _expect(databases_equal(node.database, reference),
                    f"{node.name} must converge to the survivors' "
                    f"history")
        verdict = auditor.certify(promoted, [survivor, rejoined])
        _expect(verdict.ok,
                f"the write-history audit must certify the run, got: "
                f"{verdict.violations!r}")
        _expect(all(len(nodes) == 1 for nodes
                    in verdict.epochs_with_acks.values()),
                "at most one primary may acknowledge per epoch")
        _expect([ack.position() for ack in verdict.lost_unreplicated]
                == [(0, index) for index in
                    range(replicated, replicated + zombie_acks)],
                "every lost ack must be unreplicated and accounted for")
    return (f"epoch 1→2 under a 100s partition: {zombie_acks} zombie "
            f"acks fenced ({survivor.shipments_fenced} shipments), "
            f"expired lease refused loudly, zombie demoted and reported "
            f"{len(lost)} lost acks; audit certified: one writer per "
            f"epoch, 0 replicated acks lost, survivors byte-identical")


_SCENARIOS = (
    ("intermittent-retry", scenario_intermittent_retry),
    ("outage-window", scenario_outage_window),
    ("breaker-recovery", scenario_breaker_recovery),
    ("corrupt-snapshot", scenario_corrupt_snapshot),
    ("log-channel-loss", scenario_log_channel_loss),
    ("deadline-exhaustion", scenario_deadline_exhaustion),
    ("push-channel-loss", scenario_push_channel_loss),
    ("concurrent-fanout", scenario_concurrent_fanout),
    ("cache-invalidation-storm", scenario_cache_invalidation_storm),
    ("trace-correlation", scenario_trace_correlation),
    ("overload-storm", scenario_overload_storm),
    ("replica-failover", scenario_replica_failover),
    ("bit-rot-repair", scenario_bit_rot_repair),
    ("split-brain", scenario_split_brain),
)


def run_chaos_matrix(
    concurrency: int | None = None,
    only: str | None = None,
) -> list[ScenarioResult]:
    """Run every scenario (or just *only*); never raises — failures
    land in the results."""
    if only is not None and only not in dict(_SCENARIOS):
        known = ", ".join(name for name, __ in _SCENARIOS)
        raise ValueError(f"unknown scenario {only!r}; one of: {known}")
    results = []
    for name, scenario in _SCENARIOS:
        if only is not None and name != only:
            continue
        try:
            detail = scenario(concurrency)
        except _ScenarioFailure as failure:
            results.append(ScenarioResult(name, False, str(failure)))
        except Exception as error:  # a crash is also a failed scenario
            results.append(ScenarioResult(
                name, False, f"crashed: {type(error).__name__}: {error}"
            ))
        else:
            results.append(ScenarioResult(name, True, detail))
    return results


def self_test(verbose: bool = True, concurrency: int | None = None,
              only: str | None = None) -> bool:
    """The ``python -m repro chaos --self-test`` smoke target."""
    results = run_chaos_matrix(concurrency, only)
    if verbose:
        print("federation fault-injection scenario matrix:")
        for result in results:
            print(result.line())
        passed = sum(result.passed for result in results)
        print(f"{passed}/{len(results)} scenarios degraded and "
              f"recovered correctly")
    return all(result.passed for result in results)
