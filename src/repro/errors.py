"""Exception hierarchy for the Genomics Algebra reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystems narrow it:
the algebra raises :class:`AlgebraError` subclasses, the database engine
:class:`DatabaseError` subclasses, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Genomic data types and operations
# ---------------------------------------------------------------------------

class SequenceError(ReproError):
    """Invalid sequence content or operation on a sequence."""


class AlphabetError(SequenceError):
    """A symbol does not belong to the alphabet of a sequence."""


class TranslationError(ReproError):
    """Translation (or transcription / splicing) cannot proceed."""


class FeatureError(ReproError):
    """Invalid feature or annotation (e.g. location out of bounds)."""


# ---------------------------------------------------------------------------
# Algebra kernel
# ---------------------------------------------------------------------------

class AlgebraError(ReproError):
    """Base class for many-sorted algebra errors."""


class UnknownSortError(AlgebraError):
    """A sort name is not declared in the signature."""


class UnknownOperatorError(AlgebraError):
    """An operator name is not declared in the signature."""


class SortMismatchError(AlgebraError):
    """A term is not well-sorted (argument sorts do not match the operator)."""


class EvaluationError(AlgebraError):
    """Evaluating a term failed (missing carrier function or runtime error)."""


# ---------------------------------------------------------------------------
# Ontology
# ---------------------------------------------------------------------------

class OntologyError(ReproError):
    """Invalid ontology structure (duplicate terms, cycles, bad references)."""


# ---------------------------------------------------------------------------
# Database engine
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for database-engine errors."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""


class CatalogError(DatabaseError):
    """Unknown or duplicate table / column / index / type / function."""


class TypeCheckError(DatabaseError):
    """A value or expression does not match the expected column/SQL type."""


class ConstraintError(DatabaseError):
    """A constraint (NOT NULL, PRIMARY KEY, UNIQUE) was violated."""


class TransactionError(DatabaseError):
    """Invalid transaction state (e.g. commit without begin)."""


class StorageError(DatabaseError):
    """Persistence failed (corrupt image, bad WAL record).

    Mirrors :class:`SourceError`'s structured context: ``path`` names
    the damaged file, ``record_index`` the 1-based line of the bad WAL
    record (``None`` for whole-file damage), ``offset`` the byte offset
    where the damage starts, and ``kind`` classifies it —
    ``torn_tail`` (crashed append, recoverable), ``corrupt_middle``
    (unparseable record followed by valid ones), ``bit_rot`` (parseable
    record whose CRC32 does not match), ``digest_mismatch`` (image
    whole-file digest failed), or ``malformed`` (structurally wrong
    record/spec).  Scrub and recovery reports localize damage from
    these fields instead of parsing message strings.
    """

    def __init__(
        self,
        message: str,
        *,
        path: "str | None" = None,
        record_index: "int | None" = None,
        offset: "int | None" = None,
        kind: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.record_index = record_index
        self.offset = offset
        self.kind = kind


# ---------------------------------------------------------------------------
# ETL / sources / warehouse / mediator / languages
# ---------------------------------------------------------------------------

class WrapperError(ReproError):
    """A source wrapper could not parse a record."""


class SourceError(ReproError):
    """A (simulated) external repository refused or failed an operation.

    Carries structured context — which source, which operation, which
    attempt — so retry loops, circuit breakers, and quarantine reports
    can be asserted on without parsing message strings.  When the error
    happens inside a traced query, ``trace_id`` names the trace whose
    JSONL spans tell the full story of the failed attempts.
    """

    def __init__(
        self,
        message: str,
        *,
        source: "str | None" = None,
        operation: "str | None" = None,
        attempt: "int | None" = None,
        trace_id: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.operation = operation
        self.attempt = attempt
        self.trace_id = trace_id


class IntegrationError(ReproError):
    """The warehouse integrator could not reconcile or load data."""


class MediatorError(ReproError):
    """The query-driven mediator could not decompose or answer a query."""


class FederationError(MediatorError):
    """Invalid shard topology, routing, or replication state."""


class OverloadError(MediatorError):
    """The serving layer shed a query to protect the federation.

    ``reason`` is one of the shed reasons the admission machinery
    reports (``queue_full`` / ``deadline`` / ``brownout``), so callers
    can distinguish "come back later" from "lower your deadline".
    """

    def __init__(
        self,
        message: str,
        *,
        reason: "str | None" = None,
        priority: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.priority = priority


class BiqlError(ReproError):
    """A BiQL query could not be parsed or translated."""


class GenAlgXmlError(ReproError):
    """GenAlgXML import/export failed."""
