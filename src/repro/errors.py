"""Exception hierarchy for the Genomics Algebra reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystems narrow it:
the algebra raises :class:`AlgebraError` subclasses, the database engine
:class:`DatabaseError` subclasses, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Genomic data types and operations
# ---------------------------------------------------------------------------

class SequenceError(ReproError):
    """Invalid sequence content or operation on a sequence."""


class AlphabetError(SequenceError):
    """A symbol does not belong to the alphabet of a sequence."""


class TranslationError(ReproError):
    """Translation (or transcription / splicing) cannot proceed."""


class FeatureError(ReproError):
    """Invalid feature or annotation (e.g. location out of bounds)."""


# ---------------------------------------------------------------------------
# Algebra kernel
# ---------------------------------------------------------------------------

class AlgebraError(ReproError):
    """Base class for many-sorted algebra errors."""


class UnknownSortError(AlgebraError):
    """A sort name is not declared in the signature."""


class UnknownOperatorError(AlgebraError):
    """An operator name is not declared in the signature."""


class SortMismatchError(AlgebraError):
    """A term is not well-sorted (argument sorts do not match the operator)."""


class EvaluationError(AlgebraError):
    """Evaluating a term failed (missing carrier function or runtime error)."""


# ---------------------------------------------------------------------------
# Ontology
# ---------------------------------------------------------------------------

class OntologyError(ReproError):
    """Invalid ontology structure (duplicate terms, cycles, bad references)."""


# ---------------------------------------------------------------------------
# Database engine
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for database-engine errors."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed."""


class CatalogError(DatabaseError):
    """Unknown or duplicate table / column / index / type / function."""


class TypeCheckError(DatabaseError):
    """A value or expression does not match the expected column/SQL type."""


class ConstraintError(DatabaseError):
    """A constraint (NOT NULL, PRIMARY KEY, UNIQUE) was violated."""


class TransactionError(DatabaseError):
    """Invalid transaction state (e.g. commit without begin)."""


class StorageError(DatabaseError):
    """Persistence failed (corrupt image, bad WAL record).

    Mirrors :class:`SourceError`'s structured context: ``path`` names
    the damaged file, ``record_index`` the 1-based line of the bad WAL
    record (``None`` for whole-file damage), ``offset`` the byte offset
    where the damage starts, and ``kind`` classifies it —
    ``torn_tail`` (crashed append, recoverable), ``corrupt_middle``
    (unparseable record followed by valid ones), ``bit_rot`` (parseable
    record whose CRC32 does not match), ``digest_mismatch`` (image
    whole-file digest failed), or ``malformed`` (structurally wrong
    record/spec).  Scrub and recovery reports localize damage from
    these fields instead of parsing message strings.
    """

    def __init__(
        self,
        message: str,
        *,
        path: "str | None" = None,
        record_index: "int | None" = None,
        offset: "int | None" = None,
        kind: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.record_index = record_index
        self.offset = offset
        self.kind = kind


# ---------------------------------------------------------------------------
# ETL / sources / warehouse / mediator / languages
# ---------------------------------------------------------------------------

class WrapperError(ReproError):
    """A source wrapper could not parse a record."""


class SourceError(ReproError):
    """A (simulated) external repository refused or failed an operation.

    Carries structured context — which source, which operation, which
    attempt — so retry loops, circuit breakers, and quarantine reports
    can be asserted on without parsing message strings.  When the error
    happens inside a traced query, ``trace_id`` names the trace whose
    JSONL spans tell the full story of the failed attempts.
    """

    def __init__(
        self,
        message: str,
        *,
        source: "str | None" = None,
        operation: "str | None" = None,
        attempt: "int | None" = None,
        trace_id: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.source = source
        self.operation = operation
        self.attempt = attempt
        self.trace_id = trace_id


class IntegrationError(ReproError):
    """The warehouse integrator could not reconcile or load data."""


class MediatorError(ReproError):
    """The query-driven mediator could not decompose or answer a query."""


class FederationError(MediatorError):
    """Invalid shard topology, routing, or replication state."""


class LeaseError(FederationError):
    """A write lease could not authorize the operation.

    Split-brain safety hinges on never *silently* accepting a write
    without a live lease, so the refusal carries structured context:
    ``holder`` names the lease holder, ``epoch`` the lease's epoch,
    ``current_epoch`` the membership service's epoch when they differ,
    ``expires_at`` / ``now`` the virtual instants that decided the
    outcome, and ``kind`` classifies it — ``expired`` (the holder's
    lease ran out and renewal failed), ``stale_epoch`` (a newer epoch
    was issued to someone else; the holder is a zombie), or
    ``lease_live`` (an election was refused because another holder's
    lease has not expired yet).
    """

    def __init__(
        self,
        message: str,
        *,
        holder: "str | None" = None,
        epoch: "int | None" = None,
        current_epoch: "int | None" = None,
        expires_at: "float | None" = None,
        now: "float | None" = None,
        kind: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.holder = holder
        self.epoch = epoch
        self.current_epoch = current_epoch
        self.expires_at = expires_at
        self.now = now
        self.kind = kind


class ChannelError(FederationError):
    """A replication-channel round-trip was lost in transit.

    ``kind`` is ``dropped`` (seeded message loss) or ``partitioned``
    (an injected partition window covered the call); ``direction``
    tells one-way partitions apart — ``request`` means the call never
    reached the remote side, ``response`` means the remote side did the
    work but the answer was lost on the way back.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: "str | None" = None,
        direction: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.direction = direction


class OverloadError(MediatorError):
    """The serving layer shed a query to protect the federation.

    ``reason`` is one of the shed reasons the admission machinery
    reports (``queue_full`` / ``deadline`` / ``brownout``), so callers
    can distinguish "come back later" from "lower your deadline".
    """

    def __init__(
        self,
        message: str,
        *,
        reason: "str | None" = None,
        priority: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.priority = priority


class BiqlError(ReproError):
    """A BiQL query could not be parsed or translated."""


class GenAlgXmlError(ReproError):
    """GenAlgXML import/export failed."""
