"""The delta representation (section 5.2, "Change detection").

"At the very least, each delta must be uniquely identifiable and contain
(a) information about the data item to which it belongs and (b) the a
priori and a posteriori data and the time stamp for when the update
became effective."  :class:`Delta` carries exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"

_OPERATIONS = (INSERT, UPDATE, DELETE)


@dataclass(frozen=True)
class Delta:
    """One detected source change, in transmissible form."""

    source: str
    accession: str
    operation: str
    before: str | None     # a-priori record text (native format)
    after: str | None      # a-posteriori record text
    timestamp: int

    def __post_init__(self) -> None:
        if self.operation not in _OPERATIONS:
            raise ReproError(f"unknown delta operation {self.operation!r}")
        if self.operation == INSERT and self.after is None:
            raise ReproError("an insert delta needs an after-image")
        if self.operation == DELETE and self.before is None:
            raise ReproError("a delete delta needs a before-image")

    @property
    def delta_id(self) -> str:
        """Unique identifier: source, item, and effective timestamp."""
        return f"{self.source}:{self.accession}:{self.timestamp}"
