"""Wrapper infrastructure: native record text → GDT-bearing parsed records.

"Extracting relevant new or changed data from the sources and
restructuring the data into the corresponding types provided by the
Genomics Algebra.  This is done by the sources wrappers." (section 5.1)

Each concrete wrapper understands one source format and produces
:class:`ParsedRecord` objects whose sequence fields are already packed
GDT values (``DnaSequence`` / ``ProteinSequence``) and whose structure
is expressed with :class:`~repro.core.types.Interval` — the "transfer of
these data into high-level, structured, and object-based GDT values" the
abstract promises.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.types import DnaSequence, Gene, Interval, ProteinSequence
from repro.errors import WrapperError


@dataclass
class ParsedRecord:
    """A source record after wrapping: identity + GDT values."""

    source_format: str
    accession: str
    version: int = 1
    name: str | None = None
    organism: str | None = None
    description: str | None = None
    dna: DnaSequence | None = None
    protein: ProteinSequence | None = None
    exons: tuple[Interval, ...] = field(default_factory=tuple)
    raw: str = ""

    def __post_init__(self) -> None:
        if not self.accession:
            raise WrapperError("a parsed record needs an accession")
        self.exons = tuple(self.exons)

    def to_gene(self) -> Gene:
        """Build the GENE GDT value for a DNA-bearing record."""
        if self.dna is None:
            raise WrapperError(
                f"record {self.accession} carries no DNA sequence"
            )
        exons = self.exons
        if exons and exons[-1].end > len(self.dna):
            # Defensive: corrupt annotations must not crash the pipeline;
            # fall back to a single-exon reading of the whole span.
            exons = ()
        return Gene(
            name=self.name or self.accession,
            sequence=self.dna,
            exons=exons,
            organism=self.organism,
            accession=self.accession,
        )


_SPAN = re.compile(r"(\d+)\.\.(\d+)")


def parse_location(text: str) -> tuple[Interval, ...]:
    """Parse ``12..340`` / ``join(1..120,181..456)`` into intervals.

    Source coordinates are 1-based inclusive; the result is 0-based
    half-open.  Complement/order decorations are not produced by our
    simulated sources and are rejected explicitly.
    """
    text = text.strip()
    if text.startswith("complement") or text.startswith("order"):
        raise WrapperError(f"unsupported location decoration in {text!r}")
    spans = _SPAN.findall(text)
    if not spans:
        raise WrapperError(f"no spans found in location {text!r}")
    intervals = tuple(
        Interval(int(start) - 1, int(end)) for start, end in spans
    )
    for before, after in zip(intervals, intervals[1:]):
        if after.start < before.end:
            raise WrapperError(f"non-ascending location {text!r}")
    return intervals


class Wrapper:
    """Base class of all source wrappers."""

    format_name: str = "abstract"
    record_terminator: str = "//"

    def parse_record(self, text: str) -> ParsedRecord:
        raise NotImplementedError

    def split_snapshot(self, text: str) -> list[str]:
        """Split a full dump into individual record texts."""
        records: list[str] = []
        current: list[str] = []
        for line in text.splitlines():
            current.append(line)
            if line.strip() == self.record_terminator:
                records.append("\n".join(current) + "\n")
                current = []
        return records

    def parse_snapshot(self, text: str) -> list[ParsedRecord]:
        """Parse every record of a full dump."""
        return [self.parse_record(record)
                for record in self.split_snapshot(text)]


def required_line(lines: list[str], prefix: str, record: str) -> str:
    """The first line starting with *prefix* (payload only), or raise."""
    for line in lines:
        if line.startswith(prefix):
            return line[len(prefix):].strip()
    raise WrapperError(f"missing {prefix.strip()!r} line in {record} record")
