"""Wrappers for the flat-file formats: GenBank, EMBL, SwissProt, FASTA."""

from __future__ import annotations

import re

from repro.core.ops.basic import decode, decode_protein
from repro.errors import WrapperError
from repro.etl.wrappers.base import (
    ParsedRecord,
    Wrapper,
    parse_location,
    required_line,
)

_GENE_QUALIFIER = re.compile(r'/gene="([^"]+)"')


class GenBankWrapper(Wrapper):
    """Parses GenBank flat-file records (LOCUS … ORIGIN … //)."""

    format_name = "genbank"

    def parse_record(self, text: str) -> ParsedRecord:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("LOCUS"):
            raise WrapperError("not a GenBank record (no LOCUS line)")

        accession = required_line(lines, "ACCESSION", "GenBank").split()[0]
        version_text = required_line(lines, "VERSION", "GenBank")
        version = 1
        if "." in version_text:
            try:
                version = int(version_text.rsplit(".", 1)[1])
            except ValueError:
                raise WrapperError(
                    f"bad VERSION line {version_text!r}"
                ) from None
        definition = required_line(lines, "DEFINITION", "GenBank").rstrip(".")
        organism = None
        for line in lines:
            if line.strip().startswith("ORGANISM"):
                organism = line.strip()[len("ORGANISM"):].strip()
                break

        gene_match = _GENE_QUALIFIER.search(text)
        name = gene_match.group(1) if gene_match else None

        exons = ()
        for line in lines:
            stripped = line.strip()
            if stripped.startswith("CDS"):
                exons = parse_location(stripped[len("CDS"):])
                break

        # Sequence: everything between ORIGIN and //.
        try:
            origin_at = next(i for i, line in enumerate(lines)
                             if line.startswith("ORIGIN"))
        except StopIteration:
            raise WrapperError(
                f"GenBank record {accession} has no ORIGIN block"
            ) from None
        sequence_lines = []
        for line in lines[origin_at + 1:]:
            if line.strip() == "//":
                break
            sequence_lines.append(line)
        dna = decode("".join(sequence_lines))

        return ParsedRecord(
            source_format=self.format_name,
            accession=accession,
            version=version,
            name=name,
            organism=organism,
            description=definition,
            dna=dna,
            exons=exons,
            raw=text,
        )


class EmblWrapper(Wrapper):
    """Parses EMBL flat-file records (ID / AC / DE / FT / SQ … //)."""

    format_name = "embl"

    def parse_record(self, text: str) -> ParsedRecord:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("ID"):
            raise WrapperError("not an EMBL record (no ID line)")

        id_line = lines[0][2:].strip()
        accession = id_line.split(";")[0].strip()
        version = 1
        sv_match = re.search(r"SV (\d+)", id_line)
        if sv_match:
            version = int(sv_match.group(1))
        description = required_line(lines, "DE", "EMBL").rstrip(".")
        organism = required_line(lines, "OS", "EMBL")

        gene_match = _GENE_QUALIFIER.search(text)
        name = gene_match.group(1) if gene_match else None

        exons = ()
        for line in lines:
            if line.startswith("FT") and "CDS" in line.split():
                exons = parse_location(line.split("CDS", 1)[1])
                break

        try:
            sq_at = next(i for i, line in enumerate(lines)
                         if line.startswith("SQ"))
        except StopIteration:
            raise WrapperError(
                f"EMBL record {accession} has no SQ block"
            ) from None
        sequence_lines = []
        for line in lines[sq_at + 1:]:
            if line.strip() == "//":
                break
            # Trailing position counters are digits; decode() strips them.
            sequence_lines.append(line)
        dna = decode("".join(sequence_lines))

        return ParsedRecord(
            source_format=self.format_name,
            accession=accession,
            version=version,
            name=name,
            organism=organism,
            description=description,
            dna=dna,
            exons=exons,
            raw=text,
        )


class SwissProtWrapper(Wrapper):
    """Parses SwissProt-style protein records."""

    format_name = "swissprot"

    def parse_record(self, text: str) -> ParsedRecord:
        lines = text.splitlines()
        if not lines or not lines[0].startswith("ID"):
            raise WrapperError("not a SwissProt record (no ID line)")

        accession = required_line(lines, "AC", "SwissProt").rstrip(";")
        de_line = required_line(lines, "DE", "SwissProt")
        name = None
        name_match = re.search(r"Full=([^;]+)", de_line)
        description = name_match.group(1) if name_match else de_line
        gn_match = re.search(r"Name=([^;]+)", text)
        if gn_match:
            name = gn_match.group(1).strip()
        organism = required_line(lines, "OS", "SwissProt").rstrip(".")

        try:
            sq_at = next(i for i, line in enumerate(lines)
                         if line.startswith("SQ"))
        except StopIteration:
            raise WrapperError(
                f"SwissProt record {accession} has no SQ block"
            ) from None
        sequence_lines = []
        for line in lines[sq_at + 1:]:
            if line.strip() == "//":
                break
            sequence_lines.append(line)
        protein = decode_protein("".join(sequence_lines))

        return ParsedRecord(
            source_format=self.format_name,
            accession=accession,
            name=name,
            organism=organism,
            description=description,
            protein=protein,
            raw=text,
        )


class FastaWrapper(Wrapper):
    """Parses FASTA text (the lingua franca of self-generated data, C13)."""

    format_name = "fasta"

    def __init__(self, molecule: str = "dna") -> None:
        if molecule not in ("dna", "protein"):
            raise WrapperError(f"unknown molecule kind {molecule!r}")
        self.molecule = molecule

    def split_snapshot(self, text: str) -> list[str]:
        records: list[str] = []
        current: list[str] = []
        for line in text.splitlines():
            if line.startswith(">") and current:
                records.append("\n".join(current) + "\n")
                current = []
            if line.strip():
                current.append(line)
        if current:
            records.append("\n".join(current) + "\n")
        return records

    def parse_record(self, text: str) -> ParsedRecord:
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines or not lines[0].startswith(">"):
            raise WrapperError("not a FASTA record (no '>' header)")
        header = lines[0][1:].strip()
        parts = header.split(None, 1)
        accession = parts[0]
        description = parts[1] if len(parts) > 1 else None
        body = "".join(lines[1:])
        record = ParsedRecord(
            source_format=self.format_name,
            accession=accession,
            description=description,
            raw=text,
        )
        if self.molecule == "dna":
            record.dna = decode(body)
        else:
            record.protein = decode_protein(body)
        return record


def write_fasta(records: "list[tuple[str, str, str]]") -> str:
    """Render (accession, description, sequence text) triples as FASTA."""
    blocks = []
    for accession, description, sequence in records:
        header = f">{accession} {description}".rstrip()
        body = "\n".join(sequence[i:i + 70]
                         for i in range(0, len(sequence), 70))
        blocks.append(f"{header}\n{body}\n")
    return "".join(blocks)
