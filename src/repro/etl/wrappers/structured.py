"""Wrappers for hierarchical (AceDB-style) and relational (CSV) sources."""

from __future__ import annotations

import csv
import io

from repro.core.ops.basic import decode
from repro.core.types import Interval
from repro.errors import WrapperError
from repro.etl.wrappers.base import ParsedRecord, Wrapper


class AceWrapper(Wrapper):
    """Parses AceDB-style hierarchical object dumps."""

    format_name = "acedb"

    def split_snapshot(self, text: str) -> list[str]:
        return [block.strip() + "\n"
                for block in text.split("\n\n") if block.strip()]

    def parse_record(self, text: str) -> ParsedRecord:
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines or ":" not in lines[0]:
            raise WrapperError("not an AceDB object (no class header)")
        header_class, _, header_name = lines[0].partition(":")
        if header_class.strip() != "Gene":
            raise WrapperError(
                f"unsupported AceDB class {header_class.strip()!r}"
            )
        name = header_name.strip().strip('"')

        fields: dict[str, str] = {}
        exons: list[Interval] = []
        for line in lines[1:]:
            parts = line.split("\t")
            tag = parts[0].strip()
            values = [part.strip().strip('"') for part in parts[1:]]
            if tag == "Exon":
                if len(values) != 2:
                    raise WrapperError(f"malformed Exon line {line!r}")
                exons.append(Interval(int(values[0]) - 1, int(values[1])))
            elif values:
                fields[tag] = values[0]

        if "Accession" not in fields:
            raise WrapperError(f"AceDB object {name!r} has no Accession tag")
        if "DNA" not in fields:
            raise WrapperError(f"AceDB object {name!r} has no DNA tag")

        return ParsedRecord(
            source_format=self.format_name,
            accession=fields["Accession"],
            version=int(fields.get("Version", 1)),
            name=name,
            organism=fields.get("Organism"),
            description=fields.get("Description"),
            dna=decode(fields["DNA"]),
            exons=tuple(sorted(exons, key=lambda e: e.start)),
            raw=text,
        )


class RelationalWrapper(Wrapper):
    """Parses CSV dumps/rows of the relational source archetype."""

    format_name = "relational"

    _COLUMNS = ("accession", "version", "name", "organism", "description",
                "sequence", "exons")

    def _record_from_row(self, row: list[str], raw: str) -> ParsedRecord:
        if len(row) != len(self._COLUMNS):
            raise WrapperError(
                f"expected {len(self._COLUMNS)} columns, got {len(row)}"
            )
        values = dict(zip(self._COLUMNS, row))
        exons = []
        if values["exons"]:
            for span in values["exons"].split(";"):
                start, _, end = span.partition("-")
                exons.append(Interval(int(start), int(end)))
        return ParsedRecord(
            source_format=self.format_name,
            accession=values["accession"],
            version=int(values["version"]),
            name=values["name"],
            organism=values["organism"],
            description=values["description"],
            dna=decode(values["sequence"]),
            exons=tuple(exons),
            raw=raw,
        )

    def split_snapshot(self, text: str) -> list[str]:
        lines = [line for line in text.splitlines() if line.strip()]
        if lines and lines[0].startswith("accession"):
            lines = lines[1:]  # header row
        return [line + "\n" for line in lines]

    def parse_record(self, text: str) -> ParsedRecord:
        rows = list(csv.reader(io.StringIO(text)))
        rows = [row for row in rows if row]
        if not rows:
            raise WrapperError("empty relational record")
        return self._record_from_row(rows[0], text)

    def parse_snapshot(self, text: str) -> list[ParsedRecord]:
        reader = csv.reader(io.StringIO(text))
        rows = [row for row in reader if row]
        if not rows:
            return []
        if rows[0] and rows[0][0] == "accession":  # header row
            rows = rows[1:]
        buffer = io.StringIO()
        records = []
        for row in rows:
            buffer.seek(0)
            buffer.truncate()
            csv.writer(buffer).writerow(row)
            records.append(self._record_from_row(row, buffer.getvalue()))
        return records
