"""Source wrappers: native formats → GDT-bearing parsed records."""

from repro.etl.wrappers.base import ParsedRecord, Wrapper, parse_location
from repro.etl.wrappers.flatfile import (
    EmblWrapper,
    FastaWrapper,
    GenBankWrapper,
    SwissProtWrapper,
    write_fasta,
)
from repro.etl.wrappers.structured import AceWrapper, RelationalWrapper

#: Repository name → the wrapper that understands its native format.
WRAPPER_BY_SOURCE = {
    "GenBank": GenBankWrapper,
    "EMBL": EmblWrapper,
    "SwissProt": SwissProtWrapper,
    "TrEMBL": SwissProtWrapper,  # same flat format, uncurated content
    "AceDB": AceWrapper,
    "RelationalDB": RelationalWrapper,
}


def wrapper_for(source_name: str) -> Wrapper:
    """Instantiate the wrapper matching a simulated repository's name."""
    try:
        return WRAPPER_BY_SOURCE[source_name]()
    except KeyError:
        raise KeyError(f"no wrapper registered for source {source_name!r}")


__all__ = [
    "ParsedRecord",
    "Wrapper",
    "parse_location",
    "GenBankWrapper",
    "EmblWrapper",
    "SwissProtWrapper",
    "FastaWrapper",
    "write_fasta",
    "AceWrapper",
    "RelationalWrapper",
    "WRAPPER_BY_SOURCE",
    "wrapper_for",
]
