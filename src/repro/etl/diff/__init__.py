"""Change-detection primitives: LCS diff, tree diff, snapshot differentials."""

from repro.etl.diff.lcs import (
    Edit,
    apply_edits,
    diff_lines,
    diff_texts,
    edit_distance,
    longest_common_subsequence,
)
from repro.etl.diff.snapshot import (
    SnapshotDifferential,
    snapshot_differential,
    split_ace_snapshot,
    split_flat_snapshot,
    split_relational_snapshot,
)
from repro.etl.diff.treediff import (
    TreeEdit,
    TreeNode,
    diff_ace_snapshots,
    diff_trees,
    parse_ace_text,
)

__all__ = [
    "Edit",
    "apply_edits",
    "diff_lines",
    "diff_texts",
    "edit_distance",
    "longest_common_subsequence",
    "SnapshotDifferential",
    "snapshot_differential",
    "split_ace_snapshot",
    "split_flat_snapshot",
    "split_relational_snapshot",
    "TreeEdit",
    "TreeNode",
    "diff_ace_snapshots",
    "diff_trees",
    "parse_ace_text",
]
