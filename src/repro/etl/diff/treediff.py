"""Ordered-tree diff for hierarchical snapshots (Figure 2, top row).

Hierarchical sources (AceDB-style object dumps) are compared as ordered
labelled trees — "for hierarchical data, various diff algorithms for
ordered trees exist … the acediff utility will compute minimal changes
between different snapshots".

The algorithm here is a practical top-down matcher: at each level,
children are aligned by an LCS over their labels; matched children
recurse, unmatched ones become subtree inserts/deletes, and matched
nodes whose values differ become updates.  That is the same family of
algorithm as acediff/XMLTreeDiff (not the full Zhang–Shasha optimum),
and it produces minimal scripts on the realistic case of snapshots that
mostly agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.etl.diff.lcs import longest_common_subsequence

INSERT = "insert"
DELETE = "delete"
UPDATE = "update"


@dataclass
class TreeNode:
    """An ordered, labelled tree node with an optional scalar value."""

    label: str
    value: str | None = None
    children: list["TreeNode"] = field(default_factory=list)

    def add(self, child: "TreeNode") -> "TreeNode":
        self.children.append(child)
        return child

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def find(self, label: str) -> "TreeNode | None":
        for child in self.children:
            if child.label == label:
                return child
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeNode):
            return NotImplemented
        return (self.label == other.label and self.value == other.value
                and self.children == other.children)

    def render(self, indent: int = 0) -> str:
        value = f" = {self.value}" if self.value is not None else ""
        lines = [f"{'  ' * indent}{self.label}{value}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass(frozen=True)
class TreeEdit:
    """One tree edit: path to the affected node, operation, payloads."""

    operation: str
    path: tuple[str, ...]
    old_value: str | None = None
    new_value: str | None = None


def parse_ace_text(text: str) -> TreeNode:
    """Parse an AceDB-style dump into a tree.

    Objects are blank-line-separated blocks; the first line is
    ``Class : "name"``, subsequent lines are tab-separated tag/value
    rows that become children of the object node.
    """
    root = TreeNode("root")
    for block in text.split("\n\n"):
        lines = [line for line in block.splitlines() if line.strip()]
        if not lines:
            continue
        header = lines[0]
        if ":" not in header:
            raise ReproError(f"malformed object header {header!r}")
        class_name, _, object_name = header.partition(":")
        node = root.add(TreeNode(
            f"{class_name.strip()} {object_name.strip().strip(chr(34))}"
        ))
        for line in lines[1:]:
            parts = line.split("\t")
            tag = parts[0].strip()
            values = [part.strip().strip('"') for part in parts[1:]]
            child = node.add(TreeNode(tag, " ".join(values) or None))
            del child  # appended; nothing further to do
    return root


def diff_trees(old: TreeNode, new: TreeNode,
               path: tuple[str, ...] = ()) -> list[TreeEdit]:
    """Edit script (inserts/deletes/updates) turning *old* into *new*."""
    edits: list[TreeEdit] = []
    here = path + (old.label,)
    if old.label != new.label:
        # Different labels at the same position: replace the subtree.
        return [
            TreeEdit(DELETE, here, old_value=old.render()),
            TreeEdit(INSERT, path + (new.label,), new_value=new.render()),
        ]
    if old.value != new.value:
        edits.append(TreeEdit(UPDATE, here, old.value, new.value))

    old_labels = [child.label for child in old.children]
    new_labels = [child.label for child in new.children]
    common = longest_common_subsequence(old_labels, new_labels)

    i = j = k = 0
    while k < len(common):
        anchor = common[k]
        while old.children[i].label != anchor:
            child = old.children[i]
            edits.append(TreeEdit(DELETE, here + (child.label,),
                                  old_value=child.render()))
            i += 1
        while new.children[j].label != anchor:
            child = new.children[j]
            edits.append(TreeEdit(INSERT, here + (child.label,),
                                  new_value=child.render()))
            j += 1
        edits.extend(diff_trees(old.children[i], new.children[j], here))
        i += 1
        j += 1
        k += 1
    for child in old.children[i:]:
        edits.append(TreeEdit(DELETE, here + (child.label,),
                              old_value=child.render()))
    for child in new.children[j:]:
        edits.append(TreeEdit(INSERT, here + (child.label,),
                              new_value=child.render()))
    return edits


def diff_ace_snapshots(old_text: str, new_text: str) -> list[TreeEdit]:
    """Tree-diff two AceDB-style dumps (the acediff role)."""
    return diff_trees(parse_ace_text(old_text), parse_ace_text(new_text))
