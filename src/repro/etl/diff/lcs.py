"""Longest-common-subsequence diff for flat files.

Figure 2 prescribes, for non-queryable flat-file sources, "the longest
common subsequence approach, which is used in the UNIX diff command".
This module implements it from scratch: an O(n·m) dynamic program over
lines (with a common prefix/suffix trim that makes the typical
snapshot-to-snapshot case nearly linear), producing classic
equal/insert/delete edit scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

EQUAL = "equal"
INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class Edit:
    """One edit-script step: keep, add, or drop one line."""

    operation: str
    line: str


def longest_common_subsequence(
    first: Sequence[str], second: Sequence[str]
) -> list[str]:
    """The LCS of two sequences of items (classic DP, O(n·m))."""
    n, m = len(first), len(second)
    if n == 0 or m == 0:
        return []
    # One-row-at-a-time DP keeps memory at O(m).
    lengths = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        row = lengths[i]
        previous = lengths[i - 1]
        item = first[i - 1]
        for j in range(1, m + 1):
            if item == second[j - 1]:
                row[j] = previous[j - 1] + 1
            else:
                row[j] = max(previous[j], row[j - 1])
    # Backtrack.
    result: list[str] = []
    i, j = n, m
    while i > 0 and j > 0:
        if first[i - 1] == second[j - 1]:
            result.append(first[i - 1])
            i -= 1
            j -= 1
        elif lengths[i - 1][j] >= lengths[i][j - 1]:
            i -= 1
        else:
            j -= 1
    result.reverse()
    return result


def _trim_common(first: Sequence[str], second: Sequence[str]
                 ) -> tuple[int, int, Sequence[str], Sequence[str]]:
    """Strip shared prefix/suffix; returns (prefix_len, suffix_len, a, b)."""
    prefix = 0
    limit = min(len(first), len(second))
    while prefix < limit and first[prefix] == second[prefix]:
        prefix += 1
    suffix = 0
    while (suffix < limit - prefix
           and first[len(first) - 1 - suffix]
           == second[len(second) - 1 - suffix]):
        suffix += 1
    return (prefix, suffix,
            first[prefix:len(first) - suffix],
            second[prefix:len(second) - suffix])


def diff_lines(old: Sequence[str], new: Sequence[str]) -> list[Edit]:
    """A UNIX-diff-style edit script turning *old* into *new*."""
    prefix, suffix, middle_old, middle_new = _trim_common(old, new)
    script: list[Edit] = [Edit(EQUAL, line) for line in old[:prefix]]

    common = longest_common_subsequence(middle_old, middle_new)
    i = j = k = 0
    while k < len(common):
        anchor = common[k]
        while middle_old[i] != anchor:
            script.append(Edit(DELETE, middle_old[i]))
            i += 1
        while middle_new[j] != anchor:
            script.append(Edit(INSERT, middle_new[j]))
            j += 1
        script.append(Edit(EQUAL, anchor))
        i += 1
        j += 1
        k += 1
    script.extend(Edit(DELETE, line) for line in middle_old[i:])
    script.extend(Edit(INSERT, line) for line in middle_new[j:])

    if suffix:
        script.extend(Edit(EQUAL, line) for line in old[len(old) - suffix:])
    return script


def diff_texts(old: str, new: str) -> list[Edit]:
    """Line-level edit script between two text blobs."""
    return diff_lines(old.splitlines(), new.splitlines())


def edit_distance(old: str, new: str) -> int:
    """Number of non-equal steps in the line-level edit script."""
    return sum(1 for edit in diff_texts(old, new)
               if edit.operation != EQUAL)


def apply_edits(old: Sequence[str], script: Sequence[Edit]) -> list[str]:
    """Replay an edit script against *old* (sanity check / tests)."""
    result: list[str] = []
    position = 0
    for edit in script:
        if edit.operation == EQUAL:
            result.append(old[position])
            position += 1
        elif edit.operation == DELETE:
            position += 1
        else:
            result.append(edit.line)
    return result
