"""Snapshot differentials: keyed record-set comparison (Figure 2).

Both the relational case ("computing snapshot differentials for
relational data") and the record-granular flat-file case reduce to the
same operation: two keyed maps of record images, compared into inserted
/ deleted / updated sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class SnapshotDifferential:
    """The outcome of comparing two snapshots keyed by record id."""

    inserted: tuple[str, ...]
    deleted: tuple[str, ...]
    updated: tuple[str, ...]

    @property
    def total_changes(self) -> int:
        return len(self.inserted) + len(self.deleted) + len(self.updated)

    def is_empty(self) -> bool:
        return self.total_changes == 0


def snapshot_differential(
    old: Mapping[str, str], new: Mapping[str, str]
) -> SnapshotDifferential:
    """Compare two key → record-image maps."""
    old_keys = set(old)
    new_keys = set(new)
    inserted = tuple(sorted(new_keys - old_keys))
    deleted = tuple(sorted(old_keys - new_keys))
    updated = tuple(sorted(
        key for key in old_keys & new_keys if old[key] != new[key]
    ))
    return SnapshotDifferential(inserted, deleted, updated)


def split_flat_snapshot(text: str, terminator: str = "//") -> dict[str, str]:
    """Split a flat-file dump into per-record texts keyed by accession.

    Records end with a *terminator* line (GenBank/EMBL/SwissProt all use
    ``//``).  The accession is taken from the first ``ACCESSION`` /
    ``AC`` line found in the record.
    """
    records: dict[str, str] = {}
    current: list[str] = []
    for line in text.splitlines():
        current.append(line)
        if line.strip() == terminator:
            record_text = "\n".join(current) + "\n"
            accession = _accession_of(current)
            if accession is not None:
                records[accession] = record_text
            current = []
    return records


def _accession_of(lines: list[str]) -> str | None:
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("ACCESSION"):
            return stripped.split()[1]
        if stripped.startswith("AC "):
            return stripped.split()[1].rstrip(";")
    return None


def split_ace_snapshot(text: str) -> dict[str, str]:
    """Split an AceDB-style dump into per-object texts keyed by accession."""
    records: dict[str, str] = {}
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        accession = None
        for line in block.splitlines():
            if line.startswith("Accession"):
                accession = line.split("\t", 1)[1].strip().strip('"')
                break
        if accession is not None:
            records[accession] = block.strip() + "\n"
    return records


def split_relational_snapshot(text: str) -> dict[str, str]:
    """Split a CSV dump into per-row texts keyed by the first column."""
    records: dict[str, str] = {}
    lines = text.splitlines()
    for line in lines[1:]:  # skip the header
        if not line.strip():
            continue
        key = line.split(",", 1)[0].strip('"')
        records[key] = line + "\n"
    return records
