"""ETL machinery: deltas, change detection, diff algorithms, wrappers."""

from repro.etl.delta import DELETE, INSERT, UPDATE, Delta
from repro.etl.monitors import (
    LogMonitor,
    MonitorCost,
    MonitorHealth,
    PollingMonitor,
    QuarantinedRecord,
    SnapshotMonitor,
    SourceMonitor,
    TriggerMonitor,
    choose_monitor,
)
from repro.etl.wrappers import (
    ParsedRecord,
    Wrapper,
    wrapper_for,
)

__all__ = [
    "Delta",
    "INSERT",
    "UPDATE",
    "DELETE",
    "SourceMonitor",
    "TriggerMonitor",
    "LogMonitor",
    "PollingMonitor",
    "SnapshotMonitor",
    "MonitorCost",
    "MonitorHealth",
    "QuarantinedRecord",
    "choose_monitor",
    "ParsedRecord",
    "Wrapper",
    "wrapper_for",
]
