"""Source monitors: one change-detection strategy per Figure 2 cell.

"Monitoring the data sources and detecting changes to their contents.
This is done by the source monitors." (section 5.1)

Four strategies, matching the capability axis of Figure 2:

- :class:`TriggerMonitor` — *active* sources push notifications
  (database triggers, SwissProt-style alerts); zero detection cost.
- :class:`LogMonitor` — *logged* sources expose an inspectable change
  log; the monitor reads the tail and fetches the changed records.
- :class:`PollingMonitor` — *queryable* sources are polled record by
  record; successive per-record images are compared (the "edit
  sequences for successive snapshots" approach).  Changes between two
  polls coalesce — the polling-frequency trade-off of section 5.2.
- :class:`SnapshotMonitor` — *non-queryable* sources only provide
  periodic full dumps, which are split per representation and compared
  as snapshot differentials (LCS machinery underneath for flat files,
  tree diff for hierarchical ones).

Every monitor accounts its work in a :class:`MonitorCost`, which is what
the Figure 2 benchmark sweeps.

Monitors are the component closest to the unreliable sources, so
``poll()`` is written to *survive* faults rather than propagate them:

- a failed poll leaves the monitor's images and cursors untouched, so
  no delta is ever lost or double-delivered — the changes simply
  coalesce into the next successful poll (:class:`MonitorHealth` counts
  the failure);
- :class:`LogMonitor` keeps a **resumable cursor**: the log position
  only advances past an entry once its after-image has been fetched
  and accepted, so a crash mid-poll resumes exactly where it stopped;
- records that arrive corrupt are **quarantined** (kept, with a
  reason, in ``monitor.quarantine``) instead of silently dropped, and
  a dump that produced quarantines is not trusted about *absences*
  either — suspected deletes are deferred until a clean poll confirms
  them;
- when the premium channel dies (the change log stops answering, the
  push channel goes quiet), :class:`LogMonitor` and
  :class:`TriggerMonitor` **degrade to snapshot-diff polling** — the
  Figure 2 capability ladder walked downwards at run time — and resync
  without double-delivering once the channel returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError, SourceError
from repro.etl.delta import DELETE, INSERT, UPDATE, Delta
from repro.etl.diff.snapshot import (
    snapshot_differential,
    split_ace_snapshot,
    split_flat_snapshot,
    split_relational_snapshot,
)
from repro.etl.wrappers import wrapper_for
from repro.obs.metrics import count as _metric
from repro.obs.trace import span as _span
from repro.sources.base import LogEntry, Repository


@dataclass
class MonitorCost:
    """Work accounting for one monitor."""

    polls: int = 0
    notifications: int = 0
    records_fetched: int = 0
    bytes_scanned: int = 0
    log_entries_read: int = 0

    def total_units(self) -> int:
        """A single comparable cost figure (bytes dominate)."""
        return (self.bytes_scanned
                + 100 * self.records_fetched
                + 10 * self.log_entries_read
                + self.notifications)


@dataclass
class MonitorHealth:
    """How a monitor has coped with its source's failures."""

    failed_polls: int = 0
    degraded_polls: int = 0
    quarantined: int = 0
    last_error: str | None = None


@dataclass(frozen=True)
class QuarantinedRecord:
    """A record image the monitor refused to ingest, and why."""

    source: str
    accession: str | None
    reason: str
    text: str
    timestamp: int


@dataclass(frozen=True)
class IngestReport:
    """What one dump ingest established — and what it had to defer.

    ``deferred_deletes`` are accessions missing from a corrupt/torn dump
    whose old images were kept (the dump is not trusted about absences);
    ``corrupt`` are accessions whose new image failed validation and was
    reverted.  Both sets empty means the dump was ingested cleanly.
    """

    deferred_deletes: frozenset[str] = frozenset()
    corrupt: frozenset[str] = frozenset()

    @property
    def clean(self) -> bool:
        return not (self.deferred_deletes or self.corrupt)


_SPLITTERS = {
    "flat": split_flat_snapshot,
    "hierarchical": split_ace_snapshot,
    "relational": split_relational_snapshot,
}


class SourceMonitor:
    """Base class: detect changes in one repository since the last poll."""

    strategy: str = "abstract"

    def __init__(self, repository: Repository) -> None:
        self.repository = repository
        self.cost = MonitorCost()
        self.health = MonitorHealth()
        self.quarantine: list[QuarantinedRecord] = []
        try:
            self._wrapper = wrapper_for(repository.name)
        except KeyError:
            self._wrapper = None  # unknown format: ingest unvalidated

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.repository.name}, "
                f"{self.cost.polls} polls)")

    def poll(self) -> list[Delta]:
        """Changes since the previous poll (empty when nothing happened).

        The public entry point is concrete: it owns the poll counter,
        the ``monitor.poll`` span, and metrics publication, and
        delegates the strategy-specific work to :meth:`_poll` — so each
        subclass is instrumented identically without repeating itself.
        """
        with _span("monitor.poll", source=self.repository.name,
                   strategy=self.strategy) as spn:
            self.cost.polls += 1
            failed_before = self.health.failed_polls
            degraded_before = self.health.degraded_polls
            deltas = self._poll()
            spn.annotate(deltas=len(deltas))
            if self.health.failed_polls > failed_before:
                spn.annotate(failed=True)
            if self.health.degraded_polls > degraded_before:
                spn.annotate(degraded=True)
            _metric("monitor", "polls")
            if deltas:
                _metric("monitor", "deltas", len(deltas))
            return deltas

    def _poll(self) -> list[Delta]:
        """Strategy-specific change detection (see subclasses)."""
        raise NotImplementedError

    def quarantine_report(self) -> str:
        """Human-readable account of every quarantined record."""
        lines = [f"{self.repository.name}: "
                 f"{len(self.quarantine)} quarantined record(s)"]
        lines.extend(
            f"  {item.accession or '<unkeyed>'} @t{item.timestamp}: "
            f"{item.reason}"
            for item in self.quarantine
        )
        return "\n".join(lines)

    # -- shared helpers -----------------------------------------------------------

    @staticmethod
    def _normalize(text: str) -> str:
        """Canonical line endings, so per-record images compare equal to
        snapshot-split images (CSV renderers emit ``\\r\\n``)."""
        return text.replace("\r\n", "\n")

    def _split_snapshot(self, text: str) -> dict[str, str]:
        splitter = _SPLITTERS[self.repository.representation]
        return splitter(self._normalize(text))

    def _dump_looks_truncated(self, dump: str) -> bool:
        """Heuristic for a transfer that died mid-payload.

        A truncated dump loses its tail records *silently* (the splitter
        just finds fewer of them), which would read as deletions; this
        catches the torn tail so those deletions can be deferred.
        """
        text = self._normalize(dump).rstrip()
        if not text:
            return False
        representation = self.repository.representation
        if representation == "flat":
            return text.splitlines()[-1].strip() != "//"
        if representation == "hierarchical":
            blocks = [block for block in text.split("\n\n") if block.strip()]
            return bool(blocks) and "Accession" not in blocks[-1]
        return False  # relational: a torn row fails per-row validation

    def _ingest_dump(
        self, old: dict[str, str], dump: str
    ) -> tuple[list[Delta], dict[str, str], IngestReport]:
        """Split, truncation-check, validate, and diff one full dump."""
        self.cost.bytes_scanned += len(dump)
        current = self._split_snapshot(dump)
        torn = self._dump_looks_truncated(dump)
        if torn:
            self.quarantine.append(QuarantinedRecord(
                source=self.repository.name,
                accession=None,
                reason="dump truncated mid-record",
                text=dump[-120:],
                timestamp=self.repository.clock,
            ))
            self.health.quarantined += 1
        return self._validated_differential(old, current,
                                            assume_corrupt=torn)

    def _validate(self, accession: str, text: str) -> bool:
        """Parse-check one record image; quarantine it when corrupt."""
        if self._wrapper is None:
            return True
        try:
            parsed = self._wrapper.parse_record(text)
        except (ReproError, ValueError, IndexError, KeyError) as error:
            reason = f"{type(error).__name__}: {error}"
        else:
            if parsed.accession == accession:
                return True
            reason = (f"accession mismatch: record parses as "
                      f"{parsed.accession!r}")
        self.quarantine.append(QuarantinedRecord(
            source=self.repository.name,
            accession=accession,
            reason=reason,
            text=text,
            timestamp=self.repository.clock,
        ))
        self.health.quarantined += 1
        return False

    def _differential_deltas(
        self, old: dict[str, str], new: dict[str, str]
    ) -> list[Delta]:
        differential = snapshot_differential(old, new)
        timestamp = self.repository.clock
        deltas = [
            Delta(self.repository.name, accession, INSERT,
                  None, new[accession], timestamp)
            for accession in differential.inserted
        ]
        deltas.extend(
            Delta(self.repository.name, accession, UPDATE,
                  old[accession], new[accession], timestamp)
            for accession in differential.updated
        )
        deltas.extend(
            Delta(self.repository.name, accession, DELETE,
                  old[accession], None, timestamp)
            for accession in differential.deleted
        )
        return deltas

    def _validated_differential(
        self, old: dict[str, str], new: dict[str, str],
        assume_corrupt: bool = False,
    ) -> tuple[list[Delta], dict[str, str], IngestReport]:
        """Diff *old* → *new* with corrupt new images quarantined.

        A corrupt image reverts to its previous version (or is excluded
        when new), so it produces no delta now and surfaces as an update
        once the source serves it cleanly.  A dump that quarantined
        anything is not trusted about missing records either: suspected
        deletes are deferred until a clean poll confirms them.  The
        returned :class:`IngestReport` names both kinds of deferral so
        callers know whether the ingest fully caught them up.
        """
        sanitized = dict(new)
        corrupt: set[str] = set()
        saw_corruption = assume_corrupt
        for accession, text in new.items():
            if old.get(accession) == text:
                continue
            if not self._validate(accession, text):
                saw_corruption = True
                corrupt.add(accession)
                if accession in old:
                    sanitized[accession] = old[accession]
                else:
                    del sanitized[accession]
        deferred: set[str] = set()
        if saw_corruption:
            for accession, text in old.items():
                if accession not in sanitized:
                    sanitized[accession] = text
                    deferred.add(accession)
        report = IngestReport(frozenset(deferred), frozenset(corrupt))
        return self._differential_deltas(old, sanitized), sanitized, report

    def _failed_poll(self, error: SourceError) -> list[Delta]:
        """Record a poll the source refused; state stays resumable."""
        self.health.failed_polls += 1
        self.health.last_error = str(error)
        return []

    def _snapshot_fallback(
        self, images: dict[str, str], error: SourceError
    ) -> tuple[list[Delta], dict[str, str], IngestReport | None]:
        """Degrade one poll to a snapshot differential against *images*.

        Snapshots are the capability every source guarantees (Figure 2),
        so this is the bottom rung of the degradation ladder; if even
        the snapshot fails, the poll counts as failed, *images* are
        returned unchanged and the report is ``None`` — callers must
        not advance any resync state in that case.
        """
        self.health.degraded_polls += 1
        self.health.last_error = str(error)
        try:
            dump = self.repository.snapshot()
        except SourceError as second:
            return self._failed_poll(second), images, None
        return self._ingest_dump(images, dump)


class TriggerMonitor(SourceMonitor):
    """Push-notification monitor for active sources (zero-cost detection).

    When the push channel goes quiet the monitor cannot know what it
    missed, so any poll that observes (or follows) a dead channel also
    runs a snapshot differential against its record images — which
    already include every delivered notification, so nothing is ever
    double-delivered.
    """

    strategy = "trigger"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        if not repository.capabilities.active:
            raise SourceError(
                f"{repository.name} is not active; TriggerMonitor needs push",
                source=repository.name, operation="subscribe",
            )
        self._buffer: list[Delta] = []
        self._channel_was_down = False
        self._images: dict[str, str] = {
            accession: self._normalize(repository.render_record(
                repository.record_state(accession)
            ))
            for accession in repository.accessions()
        }
        repository.subscribe(self._on_notification)

    def _on_notification(self, entry: LogEntry,
                         rendered: str | None) -> None:
        self.cost.notifications += 1
        if rendered is not None:
            rendered = self._normalize(rendered)
        before = self._images.get(entry.accession)
        self._buffer.append(Delta(
            self.repository.name, entry.accession, entry.operation,
            before, rendered, entry.timestamp,
        ))
        if rendered is None:
            self._images.pop(entry.accession, None)
        else:
            self._images[entry.accession] = rendered

    def _poll(self) -> list[Delta]:
        drained, self._buffer = self._buffer, []
        available = self.repository.push_channel_available()
        if available and not self._channel_was_down:
            return drained
        extra, self._images, report = self._snapshot_fallback(
            self._images,
            SourceError(
                f"{self.repository.name} push channel unavailable",
                source=self.repository.name, operation="subscribe",
            ),
        )
        # The resync debt is paid only once a snapshot was ingested
        # *cleanly* — a failed or corrupt/torn fallback may still owe
        # deltas that were dropped with the channel, and no notification
        # will ever replay them, so keep degrading until a clean sweep.
        self._channel_was_down = (not available
                                  or report is None
                                  or not report.clean)
        return drained + extra


class LogMonitor(SourceMonitor):
    """Log-inspection monitor for logged sources.

    The log cursor is *resumable*: it moves past an entry only once the
    entry has been fully handled, so a poll interrupted by a source
    failure re-reads exactly the unhandled tail next time — no delta is
    lost, none is delivered twice.  When the log channel itself dies,
    the monitor degrades to a snapshot differential and remembers the
    resync clock, so log entries it already covered are skipped once
    the channel returns — but only entries a dump *actually* covered: a
    fallback whose snapshot also failed advances nothing, and DELETE
    entries confirming a delete the torn dump deferred are delivered,
    not skipped.
    """

    strategy = "log"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        if not repository.capabilities.logged:
            raise SourceError(
                f"{repository.name} keeps no log; LogMonitor needs one",
                source=repository.name, operation="read_log",
            )
        self._last_sequence = (
            repository.read_log()[-1].sequence_number
            if repository.read_log() else 0
        )
        self._resync_clock = 0
        self._pending_refetch: set[str] = set()
        self._deferred_deletes: set[str] = set()
        self._images: dict[str, str] = {
            accession: self._normalize(repository.render_record(
                repository.record_state(accession)
            ))
            for accession in repository.accessions()
        }

    def _fetch(self, accession: str) -> str | None:
        if self.repository.capabilities.queryable:
            record = self.repository.query(accession)
            if record is not None:
                record = self._normalize(record)
        else:
            record = self._split_snapshot(
                self.repository.snapshot()
            ).get(accession)
        if record is not None:
            self.cost.records_fetched += 1
            self.cost.bytes_scanned += len(record)
        return record

    def _consume(self, entry: LogEntry) -> None:
        self.cost.log_entries_read += 1
        self._last_sequence = entry.sequence_number

    def _poll(self) -> list[Delta]:
        try:
            entries = self.repository.read_log(self._last_sequence)
        except SourceError as error:
            deltas, self._images, report = self._snapshot_fallback(
                self._images, error)
            if report is not None:
                # Only a resync that actually ingested a dump may later
                # skip the log entries it covered; after a failed
                # fallback the state stays put so the next poll retries.
                self._resync_clock = self.repository.clock
                self._deferred_deletes = set(report.deferred_deletes)
                # The dump covered every record it served cleanly; what
                # it served corrupt is pending again, and what it left
                # out (deferred deletes) keeps its previous status.
                self._pending_refetch = set(report.corrupt) | (
                    self._pending_refetch & report.deferred_deletes
                )
            return deltas
        deltas: list[Delta] = []
        for entry in entries:
            if entry.timestamp <= self._resync_clock:
                if (entry.operation != DELETE
                        or entry.accession not in self._deferred_deletes):
                    # Its effect was already delivered by a snapshot
                    # resync while the log channel was down.
                    self._consume(entry)
                    continue
                # A suspected delete the torn resync deferred: this log
                # entry is exactly the confirmation it was waiting for,
                # so fall through and deliver it.
            before = self._images.get(entry.accession)
            after = None
            if entry.operation == DELETE:
                if before is None:
                    # Inserted and deleted between polls: net effect zero.
                    self._consume(entry)
                    continue
            else:
                try:
                    after = self._fetch(entry.accession)
                except SourceError as error:
                    # Resumable cursor: this entry was NOT consumed, so
                    # the next poll re-reads it — nothing lost, nothing
                    # delivered twice.
                    self.health.failed_polls += 1
                    self.health.last_error = str(error)
                    return deltas
                if after is None:
                    # Updated then deleted before we looked: skip; the
                    # delete entry follows in the log.
                    self._consume(entry)
                    continue
                if not self._validate(entry.accession, after):
                    # Corrupt after-image: quarantined, entry consumed;
                    # the record is re-fetched on later polls until it
                    # reads cleanly (its stored image is left untouched).
                    self._pending_refetch.add(entry.accession)
                    self._consume(entry)
                    continue
            self._consume(entry)
            self._pending_refetch.discard(entry.accession)
            self._deferred_deletes.discard(entry.accession)
            deltas.append(Delta(
                self.repository.name, entry.accession, entry.operation,
                before, after, entry.timestamp,
            ))
            if after is None:
                self._images.pop(entry.accession, None)
            else:
                self._images[entry.accession] = after
        deltas.extend(self._recover_quarantined())
        return deltas

    def _recover_quarantined(self) -> list[Delta]:
        """Re-fetch records whose last after-image was quarantined; each
        surfaces as a fresh delta once the source serves it cleanly."""
        recovered: list[Delta] = []
        for accession in sorted(self._pending_refetch):
            try:
                after = self._fetch(accession)
            except SourceError as error:
                self.health.last_error = str(error)
                break  # still pending; the next poll tries again
            if after is None:
                # Gone: the DELETE log entry delivers the disappearance.
                self._pending_refetch.discard(accession)
                continue
            if not self._validate(accession, after):
                continue  # still corrupt, still pending
            self._pending_refetch.discard(accession)
            before = self._images.get(accession)
            if after == before:
                continue
            recovered.append(Delta(
                self.repository.name, accession,
                UPDATE if before is not None else INSERT,
                before, after, self.repository.clock,
            ))
            self._images[accession] = after
        return recovered


class PollingMonitor(SourceMonitor):
    """Record-polling monitor for queryable sources.

    Each poll fetches the record list and every record image, then
    compares with the previous images.  Multiple source updates between
    two polls coalesce into one delta — the recall/cost trade-off of
    choosing a polling frequency (section 5.2).  If the query interface
    refuses mid-poll, the monitor falls back to the snapshot rung.
    """

    strategy = "polling"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        if not repository.capabilities.queryable:
            raise SourceError(
                f"{repository.name} is not queryable; "
                f"PollingMonitor needs a query API",
                source=repository.name, operation="query",
            )
        self._images = self._fetch_all(charge=False)

    def _fetch_all(self, charge: bool = True) -> dict[str, str]:
        images: dict[str, str] = {}
        for accession in self.repository.query_accessions():
            record = self.repository.query(accession)
            if record is None:
                continue
            record = self._normalize(record)
            images[accession] = record
            if charge:
                self.cost.records_fetched += 1
                self.cost.bytes_scanned += len(record)
        return images

    def _poll(self) -> list[Delta]:
        try:
            current = self._fetch_all()
        except SourceError as error:
            deltas, self._images, _ = self._snapshot_fallback(self._images,
                                                              error)
            return deltas
        deltas, self._images, _ = self._validated_differential(self._images,
                                                               current)
        return deltas


class SnapshotMonitor(SourceMonitor):
    """Full-dump differential monitor for non-queryable sources.

    Already the bottom rung of the ladder: a refused dump simply defers
    detection to the next poll (changes coalesce, nothing is lost)."""

    strategy = "snapshot"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        self._images = self._split_snapshot(repository.snapshot())

    def _poll(self) -> list[Delta]:
        try:
            dump = self.repository.snapshot()
        except SourceError as error:
            return self._failed_poll(error)
        deltas, self._images, _ = self._ingest_dump(self._images, dump)
        return deltas


def choose_monitor(repository: Repository) -> SourceMonitor:
    """Pick the cheapest strategy Figure 2 allows for this source."""
    if repository.capabilities.active:
        return TriggerMonitor(repository)
    if repository.capabilities.logged:
        return LogMonitor(repository)
    if repository.capabilities.queryable:
        return PollingMonitor(repository)
    return SnapshotMonitor(repository)
