"""Source monitors: one change-detection strategy per Figure 2 cell.

"Monitoring the data sources and detecting changes to their contents.
This is done by the source monitors." (section 5.1)

Four strategies, matching the capability axis of Figure 2:

- :class:`TriggerMonitor` — *active* sources push notifications
  (database triggers, SwissProt-style alerts); zero detection cost.
- :class:`LogMonitor` — *logged* sources expose an inspectable change
  log; the monitor reads the tail and fetches the changed records.
- :class:`PollingMonitor` — *queryable* sources are polled record by
  record; successive per-record images are compared (the "edit
  sequences for successive snapshots" approach).  Changes between two
  polls coalesce — the polling-frequency trade-off of section 5.2.
- :class:`SnapshotMonitor` — *non-queryable* sources only provide
  periodic full dumps, which are split per representation and compared
  as snapshot differentials (LCS machinery underneath for flat files,
  tree diff for hierarchical ones).

Every monitor accounts its work in a :class:`MonitorCost`, which is what
the Figure 2 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceError
from repro.etl.delta import DELETE, INSERT, UPDATE, Delta
from repro.etl.diff.snapshot import (
    snapshot_differential,
    split_ace_snapshot,
    split_flat_snapshot,
    split_relational_snapshot,
)
from repro.sources.base import LogEntry, Repository


@dataclass
class MonitorCost:
    """Work accounting for one monitor."""

    polls: int = 0
    notifications: int = 0
    records_fetched: int = 0
    bytes_scanned: int = 0
    log_entries_read: int = 0

    def total_units(self) -> int:
        """A single comparable cost figure (bytes dominate)."""
        return (self.bytes_scanned
                + 100 * self.records_fetched
                + 10 * self.log_entries_read
                + self.notifications)


_SPLITTERS = {
    "flat": split_flat_snapshot,
    "hierarchical": split_ace_snapshot,
    "relational": split_relational_snapshot,
}


class SourceMonitor:
    """Base class: detect changes in one repository since the last poll."""

    strategy: str = "abstract"

    def __init__(self, repository: Repository) -> None:
        self.repository = repository
        self.cost = MonitorCost()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.repository.name}, "
                f"{self.cost.polls} polls)")

    def poll(self) -> list[Delta]:
        """Changes since the previous poll (empty when nothing happened)."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------------

    def _split_snapshot(self, text: str) -> dict[str, str]:
        splitter = _SPLITTERS[self.repository.representation]
        return splitter(text)

    def _differential_deltas(
        self, old: dict[str, str], new: dict[str, str]
    ) -> list[Delta]:
        differential = snapshot_differential(old, new)
        timestamp = self.repository.clock
        deltas = [
            Delta(self.repository.name, accession, INSERT,
                  None, new[accession], timestamp)
            for accession in differential.inserted
        ]
        deltas.extend(
            Delta(self.repository.name, accession, UPDATE,
                  old[accession], new[accession], timestamp)
            for accession in differential.updated
        )
        deltas.extend(
            Delta(self.repository.name, accession, DELETE,
                  old[accession], None, timestamp)
            for accession in differential.deleted
        )
        return deltas


class TriggerMonitor(SourceMonitor):
    """Push-notification monitor for active sources (zero-cost detection)."""

    strategy = "trigger"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        if not repository.capabilities.active:
            raise SourceError(
                f"{repository.name} is not active; TriggerMonitor needs push"
            )
        self._buffer: list[Delta] = []
        self._images: dict[str, str] = {
            accession: repository.render_record(
                repository.record_state(accession)
            )
            for accession in repository.accessions()
        }
        repository.subscribe(self._on_notification)

    def _on_notification(self, entry: LogEntry,
                         rendered: str | None) -> None:
        self.cost.notifications += 1
        before = self._images.get(entry.accession)
        self._buffer.append(Delta(
            self.repository.name, entry.accession, entry.operation,
            before, rendered, entry.timestamp,
        ))
        if rendered is None:
            self._images.pop(entry.accession, None)
        else:
            self._images[entry.accession] = rendered

    def poll(self) -> list[Delta]:
        self.cost.polls += 1
        drained, self._buffer = self._buffer, []
        return drained


class LogMonitor(SourceMonitor):
    """Log-inspection monitor for logged sources."""

    strategy = "log"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        if not repository.capabilities.logged:
            raise SourceError(
                f"{repository.name} keeps no log; LogMonitor needs one"
            )
        self._last_sequence = (
            repository.read_log()[-1].sequence_number
            if repository.read_log() else 0
        )
        self._images: dict[str, str] = {
            accession: repository.render_record(
                repository.record_state(accession)
            )
            for accession in repository.accessions()
        }

    def _fetch(self, accession: str) -> str | None:
        if self.repository.capabilities.queryable:
            record = self.repository.query(accession)
        else:
            record = self._split_snapshot(
                self.repository.snapshot()
            ).get(accession)
        if record is not None:
            self.cost.records_fetched += 1
            self.cost.bytes_scanned += len(record)
        return record

    def poll(self) -> list[Delta]:
        self.cost.polls += 1
        entries = self.repository.read_log(self._last_sequence)
        deltas: list[Delta] = []
        for entry in entries:
            self.cost.log_entries_read += 1
            self._last_sequence = entry.sequence_number
            before = self._images.get(entry.accession)
            after = None
            if entry.operation == DELETE:
                if before is None:
                    # Inserted and deleted between polls: net effect zero.
                    continue
            else:
                after = self._fetch(entry.accession)
                if after is None:
                    # Updated then deleted before we looked: skip; the
                    # delete entry follows in the log.
                    continue
            deltas.append(Delta(
                self.repository.name, entry.accession, entry.operation,
                before, after, entry.timestamp,
            ))
            if after is None:
                self._images.pop(entry.accession, None)
            else:
                self._images[entry.accession] = after
        return deltas


class PollingMonitor(SourceMonitor):
    """Record-polling monitor for queryable sources.

    Each poll fetches the record list and every record image, then
    compares with the previous images.  Multiple source updates between
    two polls coalesce into one delta — the recall/cost trade-off of
    choosing a polling frequency (section 5.2).
    """

    strategy = "polling"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        if not repository.capabilities.queryable:
            raise SourceError(
                f"{repository.name} is not queryable; "
                f"PollingMonitor needs a query API"
            )
        self._images = self._fetch_all(charge=False)

    def _fetch_all(self, charge: bool = True) -> dict[str, str]:
        images: dict[str, str] = {}
        for accession in self.repository.query_accessions():
            record = self.repository.query(accession)
            if record is None:
                continue
            images[accession] = record
            if charge:
                self.cost.records_fetched += 1
                self.cost.bytes_scanned += len(record)
        return images

    def poll(self) -> list[Delta]:
        self.cost.polls += 1
        current = self._fetch_all()
        deltas = self._differential_deltas(self._images, current)
        self._images = current
        return deltas


class SnapshotMonitor(SourceMonitor):
    """Full-dump differential monitor for non-queryable sources."""

    strategy = "snapshot"

    def __init__(self, repository: Repository) -> None:
        super().__init__(repository)
        self._images = self._split_snapshot(repository.snapshot())

    def poll(self) -> list[Delta]:
        self.cost.polls += 1
        dump = self.repository.snapshot()
        self.cost.bytes_scanned += len(dump)
        current = self._split_snapshot(dump)
        deltas = self._differential_deltas(self._images, current)
        self._images = current
        return deltas


def choose_monitor(repository: Repository) -> SourceMonitor:
    """Pick the cheapest strategy Figure 2 allows for this source."""
    if repository.capabilities.active:
        return TriggerMonitor(repository)
    if repository.capabilities.logged:
        return LogMonitor(repository)
    if repository.capabilities.queryable:
        return PollingMonitor(repository)
    return SnapshotMonitor(repository)
