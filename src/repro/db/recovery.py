"""Crash recovery: image + WAL segments → the database that was running.

The durability contract (:mod:`repro.db.storage`) leaves at most three
kinds of files on disk after a crash:

- the last complete checkpoint **image** (atomic rename, so it is either
  the old one or the new one, never half of each), stamped with the WAL
  generation it covers;
- zero or more sealed WAL **segments** (``wal.jsonl.000003`` …), each
  stamped with its generation in a header record;
- the **active** WAL segment, whose final record may be torn.

:func:`recover` deterministically reassembles those pieces: restore the
image, replay every sealed segment the image does not cover in
generation order, then the active segment, dropping only a torn *final*
record.  A torn record in the middle of any file, or a malformed
record, aborts with :class:`~repro.errors.StorageError` — replaying
around a hole would silently diverge from the pre-crash database.

The bottom half of this module is a **fault-injection harness**: it
builds a reference database, kills the write path at configurable byte
offsets (torn tail, torn middle, missing image, image/WAL generation
skew, crash mid-checkpoint, unflushed group-commit window), recovers,
and asserts the result equals the reference.  ``python -m repro recover
--self-test`` runs the whole matrix; the test suite invokes it too.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.db.database import Database
from repro.db.storage import (
    WriteAheadLog,
    apply_wal_records,
    build_image,
    checkpoint,
    read_image,
    read_wal_records,
    restore_image,
    save_database,
    segment_generation,
)
from repro.errors import StorageError
from repro.obs.metrics import count as _metric, observe as _observe
from repro.obs.trace import span as _span


@dataclass
class RecoveryReport:
    """What :func:`recover` found and applied."""

    image_loaded: bool = False
    image_generation: int = 0
    segments_replayed: int = 0
    segments_skipped: int = 0
    statements_applied: int = 0
    torn_tail_dropped: bool = False
    skew_skipped: bool = False
    corruption_kind: "str | None" = None
    corruption_path: "str | None" = None
    elapsed_ms: float = 0.0

    def summary(self) -> str:
        pieces = [
            f"image={'yes' if self.image_loaded else 'no'}"
            f"(gen {self.image_generation})",
            f"segments replayed={self.segments_replayed}"
            f" skipped={self.segments_skipped}",
            f"statements={self.statements_applied}",
        ]
        if self.torn_tail_dropped:
            pieces.append("torn tail dropped")
        if self.skew_skipped:
            pieces.append("stale WAL skipped (generation skew)")
        if self.corruption_kind:
            pieces.append(f"ABORTED: {self.corruption_kind} in "
                          f"{self.corruption_path}")
        pieces.append(f"{self.elapsed_ms:.1f} ms")
        return ", ".join(pieces)


def recover(image_path: str, wal_path: str,
            database: Database | None = None) -> tuple[Database,
                                                       RecoveryReport]:
    """Restore ``image + WAL`` into *database* (fresh one by default).

    Pass a database with the needed UDTs/UDFs already registered, same
    as :func:`~repro.db.storage.load_database`.  A missing image is not
    an error — recovery then replays the WAL from an empty database,
    which reproduces the full state whenever the log reaches back to the
    schema DDL (generation 0).

    Corruption (a torn middle, a bit-rotted record, an image digest
    mismatch) aborts with :class:`~repro.errors.StorageError`; the
    partially-filled report rides on the exception as ``exc.report``
    with ``corruption_kind`` / ``corruption_path`` distinguishing
    torn-tail, corrupt-middle, and bit-rot damage — only a torn *tail*
    is survivable, and that one is recorded in ``torn_tail_dropped``
    on the success path instead.
    """
    report = RecoveryReport()
    started = time.perf_counter()
    database = database or Database()

    try:
        return _recover(image_path, wal_path, database, report, started)
    except StorageError as exc:
        report.corruption_kind = exc.kind or "corrupt"
        report.corruption_path = exc.path
        report.elapsed_ms = (time.perf_counter() - started) * 1000.0
        exc.report = report
        _metric("storage", "recoveries_aborted")
        raise


def _recover(image_path: str, wal_path: str, database: Database,
             report: RecoveryReport,
             started: float) -> tuple[Database, RecoveryReport]:
    with _span("storage.recover") as spn:
        if os.path.exists(image_path):
            image = read_image(image_path)
            restore_image(image, database)
            report.image_loaded = True
            report.image_generation = int(image.get("wal_generation", 0))

        log = WriteAheadLog(wal_path, database)
        replayable: list[str] = []
        for generation, path in log.sealed_segments():
            if generation < report.image_generation:
                report.segments_skipped += 1
                continue
            replayable.append(path)
        if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
            active_generation = segment_generation(wal_path)
            if active_generation is not None \
                    and active_generation < report.image_generation:
                # A stale log left over from before the checkpoint that
                # produced this image: everything in it is already applied.
                report.skew_skipped = True
            else:
                replayable.append(wal_path)

        for position, path in enumerate(replayable):
            final = position == len(replayable) - 1
            records, torn = read_wal_records(path, allow_torn_tail=final)
            report.statements_applied += apply_wal_records(records, database)
            report.segments_replayed += 1
            report.torn_tail_dropped = report.torn_tail_dropped or torn

        report.elapsed_ms = (time.perf_counter() - started) * 1000.0
        _metric("storage", "recoveries")
        _metric("storage", "recovery_statements",
                report.statements_applied)
        _observe("storage", "recovery_ms", report.elapsed_ms)
        spn.annotate(image_loaded=report.image_loaded,
                     segments_replayed=report.segments_replayed,
                     statements=report.statements_applied)
    return database, report


# ---------------------------------------------------------------------------
# State comparison
# ---------------------------------------------------------------------------

def _canonical_image(database: Database) -> Any:
    image = build_image(database)
    image.pop("wal_generation", None)
    image["tables"].sort(key=lambda spec: spec["name"])
    for spec in image["tables"]:
        spec["rows"] = sorted(json.dumps(row, sort_keys=True)
                              for row in spec["rows"])
    image["indexes"].sort(key=lambda spec: spec["name"])
    return image


def databases_equal(first: Database, second: Database) -> bool:
    """True when both databases hold the same schema, rows and indexes
    (row order ignored; the serialized image is the yardstick)."""
    return _canonical_image(first) == _canonical_image(second)


# ---------------------------------------------------------------------------
# Fault-injection harness
# ---------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    name: str
    passed: bool
    detail: str = ""
    statements_applied: int = 0
    elapsed_ms: float = 0.0

    def line(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return (f"  {status} {self.name:<28} "
                f"{self.statements_applied:>4} stmts "
                f"{self.elapsed_ms:>7.1f} ms  {self.detail}")


def _genomic_database() -> Database:
    from repro.adapter import install_genomics

    database = Database()
    install_genomics(database)
    return database


def _seed_statements(count: int) -> list[tuple[str, list[Any]]]:
    """A deterministic mixed workload over a UDT-bearing table."""
    from repro.core.types import DnaSequence

    statements: list[tuple[str, list[Any]]] = [
        ("CREATE TABLE genes (id INTEGER PRIMARY KEY, "
         "name TEXT, seq DNA)", []),
    ]
    bases = "ACGT"
    for index in range(count):
        text = "".join(bases[(index * 7 + offset) % 4]
                       for offset in range(12))
        statements.append((
            "INSERT INTO genes VALUES (?, ?, ?)",
            [index, f"g{index:04d}", DnaSequence(text)],
        ))
        if index and index % 5 == 0:
            statements.append((
                "UPDATE genes SET name = ? WHERE id = ?",
                [f"g{index:04d}x", index],
            ))
        if index and index % 11 == 0:
            statements.append((
                "DELETE FROM genes WHERE id = ?", [index - 1],
            ))
    return statements


def _apply(database: Database,
           statements: list[tuple[str, list[Any]]]) -> None:
    for sql, parameters in statements:
        database.execute(sql, parameters)


def _cut_tail(path: str, keep_fraction: float = 0.5) -> None:
    """Tear the final record: keep only a prefix of its bytes."""
    with open(path, "rb") as handle:
        data = handle.read()
    body = data.rstrip(b"\n")
    cut = body.rfind(b"\n") + 1
    torn = body[cut:]
    keep = max(1, int(len(torn) * keep_fraction))
    with open(path, "wb") as handle:
        handle.write(body[:cut] + torn[:keep])


def _tear_middle(path: str) -> None:
    """Tear a record that has valid records after it."""
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    victim = len(lines) // 2
    lines[victim] = lines[victim][: max(1, len(lines[victim]) // 3)] + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)


def _scenario(name: str):
    def wrap(function: Callable[[str], ScenarioResult]):
        function.scenario_name = name
        return function
    return wrap


@_scenario("torn-final-record")
def _run_torn_tail(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(30)

    database = _genomic_database()
    _apply(database, statements[:1])
    save_database(database, image)
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements[1:])
    log.close()
    _cut_tail(wal_path)

    # The reference state: everything except the torn final statement.
    reference = _genomic_database()
    _apply(reference, statements[:-1])

    recovered, report = recover(image, wal_path,
                                database=_genomic_database())
    passed = databases_equal(recovered, reference) \
        and report.torn_tail_dropped
    return ScenarioResult("torn-final-record", passed,
                          report.summary(), report.statements_applied,
                          report.elapsed_ms)


@_scenario("torn-middle-record")
def _run_torn_middle(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(30)

    database = _genomic_database()
    _apply(database, statements[:1])
    save_database(database, image)
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements[1:])
    log.close()
    _tear_middle(wal_path)

    try:
        recover(image, wal_path, database=_genomic_database())
    except StorageError as exc:
        return ScenarioResult("torn-middle-record", True,
                              f"refused: {exc}")
    return ScenarioResult("torn-middle-record", False,
                          "corrupt log was replayed silently")


@_scenario("missing-image")
def _run_missing_image(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(20)

    database = _genomic_database()
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements)
    log.close()
    # No image was ever written: the WAL alone carries the history.

    reference = _genomic_database()
    _apply(reference, statements)
    recovered, report = recover(image, wal_path,
                                database=_genomic_database())
    passed = databases_equal(recovered, reference) \
        and not report.image_loaded
    return ScenarioResult("missing-image", passed, report.summary(),
                          report.statements_applied, report.elapsed_ms)


@_scenario("image-wal-generation-skew")
def _run_skew(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    stale_copy = os.path.join(workdir, "stale.jsonl")
    statements = _seed_statements(20)

    database = _genomic_database()
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements)
    log.close()
    with open(wal_path, "rb") as src, open(stale_copy, "wb") as dst:
        dst.write(src.read())
    checkpoint(database, image, log)
    # A stale pre-checkpoint log resurfaces (e.g. restored from backup):
    # its records are already inside the image and must NOT be replayed.
    os.replace(stale_copy, wal_path)

    reference = _genomic_database()
    _apply(reference, statements)
    recovered, report = recover(image, wal_path,
                                database=_genomic_database())
    passed = databases_equal(recovered, reference) and report.skew_skipped
    return ScenarioResult("image-wal-generation-skew", passed,
                          report.summary(), report.statements_applied,
                          report.elapsed_ms)


@_scenario("crash-mid-checkpoint")
def _run_mid_checkpoint(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(24)
    split = len(statements) * 2 // 3

    database = _genomic_database()
    _apply(database, statements[:1])
    save_database(database, image, wal_generation=0)
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements[1:split])
    # The checkpoint starts: the segment is sealed ... and then the
    # process dies before the new image lands.  Writers kept going.
    log.rotate()
    _apply(database, statements[split:])
    log.close()

    reference = _genomic_database()
    _apply(reference, statements)
    recovered, report = recover(image, wal_path,
                                database=_genomic_database())
    passed = databases_equal(recovered, reference) \
        and report.segments_replayed == 2
    return ScenarioResult("crash-mid-checkpoint", passed,
                          report.summary(), report.statements_applied,
                          report.elapsed_ms)


@_scenario("unflushed-group-commit")
def _run_group_commit_window(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    crashed = os.path.join(workdir, "crashed.jsonl")
    statements = _seed_statements(10)

    database = _genomic_database()
    _apply(database, statements[:1])
    save_database(database, image)
    log = WriteAheadLog(wal_path, database, flush_every_n=4)
    log.attach()
    _apply(database, statements[1:])
    # Crash without close(): only group-committed records are on disk.
    with open(wal_path, "rb") as handle:
        durable = handle.read()
    with open(crashed, "wb") as handle:
        handle.write(durable)
    log.close()

    recovered, report = recover(image, crashed,
                                database=_genomic_database())
    expected_records, _ = read_wal_records(crashed)
    reference = _genomic_database()
    _apply(reference, statements[:1])
    apply_wal_records(expected_records, reference)
    durable_count = len(expected_records)
    passed = databases_equal(recovered, reference) \
        and durable_count < len(statements) - 1 \
        and durable_count >= len(statements) - 1 - log.flush_every_n
    return ScenarioResult(
        "unflushed-group-commit", passed,
        f"{durable_count}/{len(statements) - 1} records durable; "
        + report.summary(),
        report.statements_applied, report.elapsed_ms)


@_scenario("replay-does-not-grow-log")
def _run_replay_amplification(workdir: str) -> ScenarioResult:
    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(15)

    database = _genomic_database()
    _apply(database, statements[:1])
    save_database(database, image)
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements[1:])
    log.close()

    target = _genomic_database()
    restore_image(read_image(image), target)
    attached = WriteAheadLog(wal_path, target)
    attached.attach()
    before = os.path.getsize(wal_path)
    first = attached.replay()
    attached.flush()
    middle = os.path.getsize(wal_path)
    # A second crash right after recovery: replay again onto a fresh
    # restore — the log must be byte-identical and the result equal.
    second_target = _genomic_database()
    restore_image(read_image(image), second_target)
    WriteAheadLog(wal_path, second_target).replay()
    after = os.path.getsize(wal_path)

    passed = before == middle == after \
        and databases_equal(target, second_target) and first > 0
    return ScenarioResult(
        "replay-does-not-grow-log", passed,
        f"log {before} -> {middle} -> {after} bytes over two recoveries",
        first)


@_scenario("replica-catch-up")
def _run_replica_catch_up(workdir: str) -> ScenarioResult:
    # WAL shipping rides on this module's replay path: a follower that
    # catches up across a rotation boundary AND a torn active tail must
    # apply every complete statement exactly once, and its staleness
    # bound must be honest before and after.
    from repro.federation.replication import FollowerNode, PrimaryNode
    from repro.sources import VirtualClock

    statements = _seed_statements(24)
    split = len(statements) * 2 // 3
    timeline = VirtualClock()
    primary = PrimaryNode("alpha", os.path.join(workdir, "alpha"),
                          _genomic_database(), timeline=timeline)
    follower = FollowerNode("bravo", os.path.join(workdir, "bravo"),
                            _genomic_database(), timeline=timeline,
                            apply_cost=0.0)

    _apply(primary.database, statements[:split])
    first = follower.catch_up(primary)
    timeline.advance(7.0)
    stale_before = follower.staleness_bound()
    primary.rotate()
    _apply(primary.database, statements[split:])
    primary.wal.close()
    _cut_tail(primary.wal_path)  # the primary crashed mid-append
    second = follower.catch_up(primary)

    # Reference: everything except the torn final statement.
    reference = _genomic_database()
    _apply(reference, statements[:-1])
    passed = databases_equal(follower.database, reference) \
        and first + second == len(statements) - 1 \
        and stale_before == 7.0 \
        and follower.staleness_bound() == 0.0
    return ScenarioResult(
        "replica-catch-up", passed,
        f"{first}+{second} stmts over a rotation + torn tail, "
        f"staleness {stale_before:.1f} -> 0.0",
        first + second)


@_scenario("scrub-during-recovery")
def _run_scrub_during_recovery(workdir: str) -> ScenarioResult:
    # A crash leaves a sealed segment plus a torn active tail.  Scrub
    # must map the damage exactly (torn tail on the active file, sealed
    # segment clean), recovery must still succeed through it — and once
    # a sealed record bit-rots, both tools must agree: scrub localizes
    # the record, recovery refuses with the same structured context.
    from repro.db.scrub import BIT_ROT, TORN_TAIL, scrub

    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(24)
    split = len(statements) * 2 // 3

    database = _genomic_database()
    _apply(database, statements[:1])
    save_database(database, image, wal_generation=0)
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements[1:split])
    log.rotate()
    _apply(database, statements[split:])
    log.close()
    _cut_tail(wal_path)                    # crashed mid-append

    crash_report = scrub(image, wal_path)
    active = next(verdict for verdict in crash_report.verdicts
                  if verdict.kind == "wal_active")
    sealed = next(verdict for verdict in crash_report.verdicts
                  if verdict.kind == "wal_sealed")
    reference = _genomic_database()
    _apply(reference, statements[:-1])
    recovered, report = recover(image, wal_path,
                                database=_genomic_database())
    crash_ok = (crash_report.ok and active.verdict == TORN_TAIL
                and sealed.verdict == "ok"
                and databases_equal(recovered, reference)
                and report.torn_tail_dropped)

    # Now a sealed record rots: flip one alphanumeric byte in place.
    sealed_path = sealed.path
    with open(sealed_path, "rb") as handle:
        data = bytearray(handle.read())
    offset = next(index for index in range(len(data) // 2, len(data))
                  if chr(data[index]).isalnum()
                  and chr(data[index] ^ 0x01).isalnum())
    data[offset] ^= 0x01
    with open(sealed_path, "wb") as handle:
        handle.write(data)

    rot_report = scrub(image, wal_path)
    rotted = next((verdict for verdict in rot_report.damaged
                   if verdict.path == sealed_path), None)
    try:
        recover(image, wal_path, database=_genomic_database())
    except StorageError as exc:
        rot_ok = (rotted is not None and rotted.verdict == BIT_ROT
                  and exc.kind == "bit_rot" and exc.path == sealed_path
                  and rotted.bad_offsets
                  and exc.record_index == rotted.bad_offsets[0][0]
                  and exc.offset == rotted.bad_offsets[0][1]
                  and getattr(exc, "report", None) is not None
                  and exc.report.corruption_kind == "bit_rot")
        detail = (f"torn tail scrubbed + recovered; rot at {offset}B "
                  f"-> scrub record #{exc.record_index}@{exc.offset}B, "
                  f"recovery refused in agreement")
    else:
        rot_ok = False
        detail = "bit-rotted sealed segment was replayed silently"
    return ScenarioResult("scrub-during-recovery", crash_ok and rot_ok,
                          detail, report.statements_applied,
                          report.elapsed_ms)


_SCENARIOS = (
    _run_torn_tail,
    _run_torn_middle,
    _run_missing_image,
    _run_skew,
    _run_mid_checkpoint,
    _run_group_commit_window,
    _run_replay_amplification,
    _run_replica_catch_up,
    _run_scrub_during_recovery,
)


def run_crash_matrix(workdir: str | None = None) -> list[ScenarioResult]:
    """Run every fault-injection scenario; returns one result each."""
    results = []
    for scenario in _SCENARIOS:
        if workdir is None:
            with tempfile.TemporaryDirectory() as temporary:
                results.append(scenario(temporary))
        else:
            scenario_dir = os.path.join(workdir, scenario.scenario_name)
            os.makedirs(scenario_dir, exist_ok=True)
            results.append(scenario(scenario_dir))
    return results


def self_test(verbose: bool = True) -> bool:
    """The ``python -m repro recover --self-test`` smoke target."""
    results = run_crash_matrix()
    if verbose:
        print("crash-recovery fault-injection matrix:")
        for result in results:
            print(result.line())
        passed = sum(result.passed for result in results)
        print(f"{passed}/{len(results)} scenarios recovered correctly")
    return all(result.passed for result in results)
