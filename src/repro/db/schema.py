"""Table schemas: typed columns with constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.db.values import NULL, SqlType
from repro.errors import CatalogError, ConstraintError, TypeCheckError


@dataclass
class Column:
    """One column: name, SQL type, constraints, optional default."""

    name: str
    sql_type: SqlType
    not_null: bool = False
    default: Any = NULL

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("a column needs a non-empty name")
        self.name = self.name.lower()
        if self.default is not NULL:
            self.default = self.sql_type.coerce(self.default)


@dataclass
class TableSchema:
    """A table definition: ordered columns plus key constraints.

    ``primary_key`` names at most one column (single-column keys are all
    the engine supports; composite uniqueness can be enforced by the
    caller with an index).  ``unique`` lists further single-column unique
    constraints.
    """

    name: str
    columns: Sequence[Column]
    primary_key: str | None = None
    unique: tuple[str, ...] = ()
    _by_name: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("a table needs a non-empty name")
        self.name = self.name.lower()
        self.columns = list(self.columns)
        if not self.columns:
            raise CatalogError(f"table {self.name!r} needs columns")
        self._by_name = {}
        for position, column in enumerate(self.columns):
            if column.name in self._by_name:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._by_name[column.name] = position
        if self.primary_key is not None:
            self.primary_key = self.primary_key.lower()
            self.require_column(self.primary_key)
        self.unique = tuple(u.lower() for u in self.unique)
        for unique_column in self.unique:
            self.require_column(unique_column)

    # -- lookup ---------------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def require_column(self, name: str) -> None:
        if not self.has_column(name):
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            )

    def position(self, name: str) -> int:
        self.require_column(name)
        return self._by_name[name.lower()]

    def column(self, name: str) -> Column:
        return self.columns[self.position(name)]

    # -- row validation ---------------------------------------------------------

    def complete_row(self, named_values: dict[str, Any]) -> list[Any]:
        """Build a full row from named values, applying defaults."""
        unknown = set(named_values) - set(self._by_name)
        if unknown:
            raise CatalogError(
                f"table {self.name!r} has no column(s) {sorted(unknown)}"
            )
        return [
            named_values.get(column.name, column.default)
            for column in self.columns
        ]

    def validate_row(self, row: Iterable[Any]) -> list[Any]:
        """Type-coerce and constraint-check one row (returns the row)."""
        row = list(row)
        if len(row) != len(self.columns):
            raise TypeCheckError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        for position, (column, value) in enumerate(zip(self.columns, row)):
            coerced = column.sql_type.coerce(value)
            if coerced is NULL and (column.not_null
                                    or column.name == self.primary_key):
                raise ConstraintError(
                    f"column {self.name}.{column.name} may not be NULL"
                )
            row[position] = coerced
        return row
