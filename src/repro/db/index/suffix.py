"""A suffix-array index for exact genomic substring search (section 6.5).

All indexed texts are concatenated (separated by a sentinel below any
alphabet symbol) and one suffix array is built over the corpus with the
**prefix-doubling** algorithm — O(n log² n) time, O(n) memory, no suffix
strings ever materialized.  A substring query binary-searches the array
for the pattern's prefix range and maps the matching corpus positions
back to their owning rows.

Exact for concrete patterns over concrete subjects; rows holding
ambiguity codes are kept as wildcard candidates (the executor's residual
filter re-verifies them), and ambiguous patterns fall back to a scan, so
IUPAC matching stays sound.  The array is rebuilt lazily after
mutations, matching warehouse usage (bulk load, then read-mostly).
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.db.index.base import Index

#: Separator between documents in the corpus; sorts below every symbol
#: and never occurs in sequence data, so matches cannot cross documents.
_SEPARATOR = "\x00"


def build_suffix_array(text: str) -> list[int]:
    """The suffix array of *text* by prefix doubling (O(n log² n))."""
    n = len(text)
    if n == 0:
        return []
    order = list(range(n))
    rank = [ord(ch) for ch in text]
    step = 1
    while True:
        def sort_key(position: int) -> tuple[int, int]:
            tail = rank[position + step] if position + step < n else -1
            return (rank[position], tail)

        order.sort(key=sort_key)
        next_rank = [0] * n
        previous_key = sort_key(order[0])
        for index in range(1, n):
            current_key = sort_key(order[index])
            next_rank[order[index]] = (
                next_rank[order[index - 1]]
                + (1 if current_key != previous_key else 0)
            )
            previous_key = current_key
        rank = next_rank
        if rank[order[-1]] == n - 1:
            return order
        step *= 2


class SuffixArrayIndex(Index):
    """Global suffix array over a sequence-valued column."""

    supports_contains = True

    def __init__(self, name: str, table_name: str, column: str,
                 ambiguous_symbols: str = "RYSWKMBDHVN") -> None:
        super().__init__(name, table_name, column)
        self._ambiguous = frozenset(ambiguous_symbols)
        self._texts: dict[int, str] = {}        # row id -> text
        self._wildcard_rows: set[int] = set()
        self._corpus = ""
        self._suffix_array: list[int] = []
        self._document_starts: list[int] = []   # corpus offset per document
        self._document_rows: list[int] = []     # parallel: owning row id
        self._dirty = True

    def __len__(self) -> int:
        return len(self._texts)

    def clear(self) -> None:
        self._texts.clear()
        self._wildcard_rows.clear()
        self._corpus = ""
        self._suffix_array = []
        self._document_starts = []
        self._document_rows = []
        self._dirty = True

    def insert(self, key: Any, row_id: int) -> None:
        if key is None:
            return
        text = str(key)
        self._texts[row_id] = text
        if set(text) & self._ambiguous:
            self._wildcard_rows.add(row_id)
        self._dirty = True

    def delete(self, key: Any, row_id: int) -> None:
        if self._texts.pop(row_id, None) is not None:
            self._wildcard_rows.discard(row_id)
            self._dirty = True

    def _rebuild(self) -> None:
        pieces: list[str] = []
        starts: list[int] = []
        rows: list[int] = []
        position = 0
        for row_id in sorted(self._texts):
            text = self._texts[row_id]
            starts.append(position)
            rows.append(row_id)
            pieces.append(text)
            pieces.append(_SEPARATOR)
            position += len(text) + 1
        self._corpus = "".join(pieces)
        self._suffix_array = build_suffix_array(self._corpus)
        self._document_starts = starts
        self._document_rows = rows
        self._dirty = False

    def _row_of_position(self, position: int) -> int:
        slot = bisect.bisect_right(self._document_starts, position) - 1
        return self._document_rows[slot]

    def _prefix_range(self, pattern: str) -> tuple[int, int]:
        """[lo, hi) of suffix-array slots whose suffix starts with pattern."""
        corpus = self._corpus
        array = self._suffix_array
        m = len(pattern)

        lo, hi = 0, len(array)
        while lo < hi:
            mid = (lo + hi) // 2
            if corpus[array[mid]:array[mid] + m] < pattern:
                lo = mid + 1
            else:
                hi = mid
        first = lo

        lo, hi = first, len(array)
        while lo < hi:
            mid = (lo + hi) // 2
            if corpus[array[mid]:array[mid] + m] <= pattern:
                lo = mid + 1
            else:
                hi = mid
        return first, lo

    def search_contains(self, pattern: str) -> "set[int] | None":
        pattern = str(pattern)
        if not pattern:
            return set(self._texts)
        if set(pattern) & self._ambiguous:
            # Ambiguous patterns cannot be located literally: fall back.
            return None
        if self._dirty:
            self._rebuild()
        first, last = self._prefix_range(pattern)
        # Matches cannot cross documents: the separator never appears in
        # a pattern, so any suffix starting with the pattern lies wholly
        # inside one document.
        matched = {
            self._row_of_position(self._suffix_array[slot])
            for slot in range(first, last)
        }
        # Ambiguous subjects can match a concrete pattern without a
        # literal occurrence (an N may stand for the needed base).
        return matched | self._wildcard_rows