"""The index interface the engine's optimizer and executor program against.

Section 6.5 of the paper: "As we add the ability to store genomic data, a
need arises for indexing these data by using domain-specific, i.e.,
genomic, indexing techniques … The DBMS must then offer a mechanism to
integrate these user-defined index structures."  That mechanism is this
interface: any object implementing it can be registered with the catalog
and the optimizer will consider it.  Four implementations ship:

- :class:`~repro.db.index.btree.BTreeIndex` — equality + range.
- :class:`~repro.db.index.hashindex.HashIndex` — equality only.
- :class:`~repro.db.index.kmer.KmerIndex` — genomic ``contains`` candidates.
- :class:`~repro.db.index.suffix.SuffixArrayIndex` — exact genomic
  substring search.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import DatabaseError


class Index:
    """Abstract index over one column of one table.

    Row ids are the engine's internal, stable integer handles; an index
    maps column values (or structures derived from them) to row ids.
    """

    #: Class-level capability flags the optimizer reads.
    supports_equality = False
    supports_range = False
    supports_contains = False

    def __init__(self, name: str, table_name: str, column: str) -> None:
        self.name = name.lower()
        self.table_name = table_name.lower()
        self.column = column.lower()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r} on "
                f"{self.table_name}.{self.column})")

    # -- maintenance (called by the table on every mutation) ------------------

    def insert(self, key: Any, row_id: int) -> None:
        raise NotImplementedError

    def delete(self, key: Any, row_id: int) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    # -- lookups ----------------------------------------------------------------

    def search_equal(self, key: Any) -> Iterable[int]:
        """Row ids whose column value equals *key*."""
        raise DatabaseError(f"{type(self).__name__} has no equality search")

    def search_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterable[int]:
        """Row ids whose column value lies in the given range, key order."""
        raise DatabaseError(f"{type(self).__name__} has no range search")

    def search_contains(self, pattern: str) -> "set[int] | None":
        """Row ids whose value may contain *pattern* as a subsequence.

        Returns a **candidate set**: implementations may over-approximate
        (the executor re-checks the predicate) but must never miss a true
        match.  ``None`` means "cannot narrow; scan everything".
        """
        raise DatabaseError(f"{type(self).__name__} has no contains search")
