"""A hash index: O(1) equality lookups, no ordering."""

from __future__ import annotations

from typing import Any, Iterable

from repro.db.index.base import Index


def _hashable(key: Any) -> Any:
    """Make unhashable-but-indexable keys (rare) usable as dict keys."""
    try:
        hash(key)
        return key
    except TypeError:
        return repr(key)


class HashIndex(Index):
    """Dictionary-backed index over one column."""

    supports_equality = True

    def __init__(self, name: str, table_name: str, column: str) -> None:
        super().__init__(name, table_name, column)
        self._buckets: dict[Any, list[int]] = {}
        self._entries = 0

    def __len__(self) -> int:
        return self._entries

    def clear(self) -> None:
        self._buckets.clear()
        self._entries = 0

    def insert(self, key: Any, row_id: int) -> None:
        if key is None:
            return
        self._buckets.setdefault(_hashable(key), []).append(row_id)
        self._entries += 1

    def delete(self, key: Any, row_id: int) -> None:
        if key is None:
            return
        bucket = self._buckets.get(_hashable(key))
        if not bucket:
            return
        try:
            bucket.remove(row_id)
            self._entries -= 1
        except ValueError:
            return
        if not bucket:
            del self._buckets[_hashable(key)]

    def search_equal(self, key: Any) -> Iterable[int]:
        if key is None:
            return ()
        return tuple(self._buckets.get(_hashable(key), ()))
