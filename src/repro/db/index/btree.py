"""A B+ tree index supporting equality and range search.

A textbook B+ tree: inner nodes route by separator keys, leaves hold
``key → [row ids]`` postings and are chained left-to-right so range scans
stream in key order.  Deletion is by tombstone-free removal without
rebalancing (leaves may underflow; search cost is unaffected because the
chain and routing stay valid), which keeps the code honest without the
full rebalance machinery this project never stresses.

Keys are compared through :func:`repro.db.values.sort_key`, giving NULL-free
heterogeneous safety; NULL keys are never indexed (SQL convention).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.db.index.base import Index
from repro.db.values import sort_key
from repro.errors import DatabaseError


class _Leaf:
    __slots__ = ("keys", "postings", "next")

    def __init__(self) -> None:
        self.keys: list = []          # sort_key-wrapped keys
        self.postings: list = []      # parallel: (raw_key, [row_ids])
        self.next: "_Leaf | None" = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self, keys: list, children: list) -> None:
        self.keys = keys              # separator keys (sort_key-wrapped)
        self.children = children      # len(children) == len(keys) + 1


class BTreeIndex(Index):
    """B+ tree over one column; equality and range capable."""

    supports_equality = True
    supports_range = True

    def __init__(self, name: str, table_name: str, column: str,
                 order: int = 32) -> None:
        super().__init__(name, table_name, column)
        if order < 4:
            raise DatabaseError("B+ tree order must be at least 4")
        self._order = order
        self._root: "_Leaf | _Inner" = _Leaf()
        self._entries = 0

    def __len__(self) -> int:
        return self._entries

    def clear(self) -> None:
        self._root = _Leaf()
        self._entries = 0

    # -- descent ---------------------------------------------------------------

    def _find_leaf(self, wrapped: tuple) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            slot = bisect.bisect_right(node.keys, wrapped)
            node = node.children[slot]
        return node

    # -- insertion ---------------------------------------------------------------

    def insert(self, key: Any, row_id: int) -> None:
        if key is None:
            return
        wrapped = sort_key(key)
        split = self._insert_into(self._root, wrapped, key, row_id)
        if split is not None:
            separator, right = split
            self._root = _Inner([separator], [self._root, right])

    def _insert_into(self, node, wrapped, key, row_id):
        """Insert; returns (separator, new right sibling) on split."""
        if isinstance(node, _Leaf):
            slot = bisect.bisect_left(node.keys, wrapped)
            if slot < len(node.keys) and node.keys[slot] == wrapped:
                node.postings[slot][1].append(row_id)
            else:
                node.keys.insert(slot, wrapped)
                node.postings.insert(slot, (key, [row_id]))
            self._entries += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        slot = bisect.bisect_right(node.keys, wrapped)
        split = self._insert_into(node.children[slot], wrapped, key, row_id)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right)
        if len(node.keys) > self._order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.postings = leaf.postings[middle:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:middle]
        leaf.postings = leaf.postings[:middle]
        leaf.next = right
        return right.keys[0], right

    def _split_inner(self, inner: _Inner):
        middle = len(inner.keys) // 2
        separator = inner.keys[middle]
        right = _Inner(inner.keys[middle + 1:], inner.children[middle + 1:])
        inner.keys = inner.keys[:middle]
        inner.children = inner.children[:middle + 1]
        return separator, right

    # -- deletion ---------------------------------------------------------------

    def delete(self, key: Any, row_id: int) -> None:
        if key is None:
            return
        wrapped = sort_key(key)
        leaf = self._find_leaf(wrapped)
        slot = bisect.bisect_left(leaf.keys, wrapped)
        if slot >= len(leaf.keys) or leaf.keys[slot] != wrapped:
            return
        row_ids = leaf.postings[slot][1]
        try:
            row_ids.remove(row_id)
            self._entries -= 1
        except ValueError:
            return
        if not row_ids:
            del leaf.keys[slot]
            del leaf.postings[slot]

    # -- searches ---------------------------------------------------------------

    def search_equal(self, key: Any) -> Iterable[int]:
        if key is None:
            return ()
        wrapped = sort_key(key)
        leaf = self._find_leaf(wrapped)
        slot = bisect.bisect_left(leaf.keys, wrapped)
        if slot < len(leaf.keys) and leaf.keys[slot] == wrapped:
            return tuple(leaf.postings[slot][1])
        return ()

    def search_range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        if low is not None:
            low_wrapped = sort_key(low)
            leaf = self._find_leaf(low_wrapped)
            if include_low:
                slot = bisect.bisect_left(leaf.keys, low_wrapped)
            else:
                slot = bisect.bisect_right(leaf.keys, low_wrapped)
        else:
            node = self._root
            while isinstance(node, _Inner):
                node = node.children[0]
            leaf, slot = node, 0

        high_wrapped = sort_key(high) if high is not None else None
        current: "_Leaf | None" = leaf
        while current is not None:
            while slot < len(current.keys):
                wrapped = current.keys[slot]
                if high_wrapped is not None:
                    if wrapped > high_wrapped:
                        return
                    if wrapped == high_wrapped and not include_high:
                        return
                yield from current.postings[slot][1]
                slot += 1
            current = current.next
            slot = 0

    def items(self) -> Iterator[tuple[Any, list[int]]]:
        """All (key, row ids) pairs in key order (for testing/inspection)."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        leaf: "_Leaf | None" = node
        while leaf is not None:
            yield from ((key, list(ids)) for key, ids in leaf.postings)
            leaf = leaf.next

    def depth(self) -> int:
        """Tree height (a single leaf has depth 1)."""
        levels = 1
        node = self._root
        while isinstance(node, _Inner):
            levels += 1
            node = node.children[0]
        return levels
