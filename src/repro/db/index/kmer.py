"""A k-mer inverted index for genomic ``contains`` queries (section 6.5).

For every indexed sequence, all length-*k* words are recorded in an
inverted index ``word → {row ids}``.  A ``contains(column, pattern)``
query intersects the posting sets of the pattern's k-mers: any row truly
containing the pattern must contain every one of its k-mers, so the
intersection is a sound candidate set.  The executor re-verifies each
candidate against the real predicate, so over-approximation is fine —
what must never happen is a missed true match.

Ambiguity codes (the uncertain data of C9) threaten exactly that, in two
directions, and both are handled:

- **ambiguous subjects**: a stored ``ATN`` matches the pattern ``ATG``
  under IUPAC semantics, but its k-mers differ.  Rows whose text contains
  any symbol from ``ambiguous_symbols`` are kept in a *wildcard set* that
  is always added to the candidates.
- **ambiguous patterns**: a pattern k-mer like ``ATW`` never occurs
  literally in concrete subjects, so only the pattern's fully concrete
  k-mers participate in the intersection; a pattern with no concrete
  k-mer cannot be narrowed (``None`` → scan).

Patterns shorter than *k* cannot be narrowed either.
"""

from __future__ import annotations

from typing import Any

from repro.db.index.base import Index
from repro.errors import DatabaseError

#: IUPAC nucleotide ambiguity codes (the default; pass ``"BZJX"`` for
#: protein columns).
NUCLEOTIDE_AMBIGUITY = "RYSWKMBDHVN"


def _text_of(value: Any) -> str | None:
    """The indexable text of a value: a str or anything str()-able
    sequence-like (PackedSequence)."""
    if value is None:
        return None
    return str(value)


class KmerIndex(Index):
    """Inverted k-mer index over a sequence-valued column."""

    supports_contains = True

    def __init__(self, name: str, table_name: str, column: str,
                 k: int = 8,
                 ambiguous_symbols: str = NUCLEOTIDE_AMBIGUITY) -> None:
        super().__init__(name, table_name, column)
        if k < 2:
            raise DatabaseError("k-mer length must be at least 2")
        self.k = k
        self._ambiguous = frozenset(ambiguous_symbols)
        self._postings: dict[str, set[int]] = {}
        self._rows: set[int] = set()
        self._wildcard_rows: set[int] = set()

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._postings.clear()
        self._rows.clear()
        self._wildcard_rows.clear()

    def _words(self, text: str) -> set[str]:
        k = self.k
        return {text[i:i + k] for i in range(len(text) - k + 1)}

    def _is_concrete(self, text: str) -> bool:
        return not (set(text) & self._ambiguous)

    def insert(self, key: Any, row_id: int) -> None:
        text = _text_of(key)
        if text is None:
            return
        self._rows.add(row_id)
        if not self._is_concrete(text):
            self._wildcard_rows.add(row_id)
        for word in self._words(text):
            self._postings.setdefault(word, set()).add(row_id)

    def delete(self, key: Any, row_id: int) -> None:
        text = _text_of(key)
        if text is None:
            return
        self._rows.discard(row_id)
        self._wildcard_rows.discard(row_id)
        for word in self._words(text):
            bucket = self._postings.get(word)
            if bucket is not None:
                bucket.discard(row_id)
                if not bucket:
                    del self._postings[word]

    def search_contains(self, pattern: str) -> "set[int] | None":
        text = str(pattern)
        if len(text) < self.k:
            return None  # cannot narrow; caller must scan
        concrete_words = [
            word for word in self._words(text) if self._is_concrete(word)
        ]
        if not concrete_words:
            return None  # fully ambiguous pattern: cannot narrow
        # Intersect smallest posting lists first for an early exit.
        postings = sorted(
            (self._postings.get(word, set()) for word in concrete_words),
            key=len,
        )
        candidates: set[int] | None = None
        for posting in postings:
            candidates = (set(posting) if candidates is None
                          else candidates & posting)
            if not candidates:
                break
        matched = candidates if candidates is not None else set()
        # Ambiguous subjects can match without sharing literal k-mers.
        return matched | self._wildcard_rows
