"""Index structures: B+ tree, hash, and the genomic k-mer/suffix indexes."""

from repro.db.index.base import Index
from repro.db.index.btree import BTreeIndex
from repro.db.index.hashindex import HashIndex
from repro.db.index.kmer import KmerIndex
from repro.db.index.suffix import SuffixArrayIndex

#: SQL ``USING <kind>`` names → index classes.
INDEX_KINDS = {
    "btree": BTreeIndex,
    "hash": HashIndex,
    "kmer": KmerIndex,
    "suffix": SuffixArrayIndex,
}

__all__ = [
    "Index",
    "BTreeIndex",
    "HashIndex",
    "KmerIndex",
    "SuffixArrayIndex",
    "INDEX_KINDS",
]
