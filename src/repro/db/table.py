"""Heap tables: row storage with constraint enforcement and index upkeep."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.db.index.base import Index
from repro.db.schema import TableSchema
from repro.db.values import NULL
from repro.errors import ConstraintError, DatabaseError


def _unique_key(value: Any) -> Any:
    """A hashable stand-in for uniqueness checks on any value."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class RowHeap:
    """The legacy heap: a dict of row id → row list, insertion-ordered."""

    def __init__(self) -> None:
        self._rows: dict[int, list[Any]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def append(self, row_id: int, row: list[Any]) -> None:
        self._rows[row_id] = row

    def has(self, row_id: int) -> bool:
        return row_id in self._rows

    def get(self, row_id: int) -> "list[Any] | None":
        return self._rows.get(row_id)

    def replace(self, row_id: int, row: list[Any]) -> None:
        self._rows[row_id] = row

    def remove(self, row_id: int) -> None:
        del self._rows[row_id]

    def clear(self) -> None:
        self._rows.clear()

    def items(self) -> Iterator[tuple[int, list[Any]]]:
        yield from self._rows.items()


class Table:
    """A heap of rows with stable integer row ids.

    The table owns constraint enforcement (primary key / unique) and keeps
    every attached :class:`~repro.db.index.base.Index` synchronized on
    each mutation.  Row storage is pluggable: ``layout="row"`` keeps the
    classic in-memory row-list heap; ``layout="column"`` stores rows as
    sealed column pages (:class:`~repro.db.columnar.store.ColumnStore`)
    behind the same protocol — stable ids, insertion-order iteration,
    in-place updates — so the executor sees identical rows either way.
    """

    def __init__(self, schema: TableSchema, layout: str = "row",
                 runtime=None) -> None:
        self.schema = schema
        self.layout = layout
        if layout == "column":
            if runtime is None:
                raise DatabaseError(
                    "columnar tables need a ColumnarRuntime"
                )
            self._heap = runtime.column_store(schema)
        elif layout == "row":
            self._heap = RowHeap()
        else:
            raise DatabaseError(f"unknown table layout {layout!r}")
        self._next_row_id = 1
        self._indexes: dict[str, Index] = {}
        self._statistics: "dict[str, int] | None" = None
        # Uniqueness bookkeeping: column -> {unique key -> row id}.
        self._unique_columns: dict[str, dict[Any, int]] = {}
        if schema.primary_key:
            self._unique_columns[schema.primary_key] = {}
        for column in schema.unique:
            self._unique_columns.setdefault(column, {})

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"

    @property
    def column_store(self):
        """The backing :class:`ColumnStore` (``None`` for row layout)."""
        return self._heap if self.layout == "column" else None

    # -- reading -----------------------------------------------------------------

    def rows(self) -> Iterator[tuple[int, list[Any]]]:
        """Iterate ``(row_id, row)`` pairs in insertion order."""
        yield from self._heap.items()

    def row(self, row_id: int) -> list[Any]:
        row = self._heap.get(row_id)
        if row is None:
            raise DatabaseError(
                f"table {self.name!r} has no row id {row_id}"
            )
        return row

    def has_row(self, row_id: int) -> bool:
        return self._heap.has(row_id)

    # -- uniqueness ---------------------------------------------------------------

    def _check_unique(self, row: list[Any],
                      ignore_row_id: int | None = None) -> None:
        for column, claimed in self._unique_columns.items():
            value = row[self.schema.position(column)]
            if value is NULL:
                continue
            owner = claimed.get(_unique_key(value))
            if owner is not None and owner != ignore_row_id:
                raise ConstraintError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.name}.{column}"
                )

    def _claim_unique(self, row: list[Any], row_id: int) -> None:
        for column, claimed in self._unique_columns.items():
            value = row[self.schema.position(column)]
            if value is not NULL:
                claimed[_unique_key(value)] = row_id

    def _release_unique(self, row: list[Any], row_id: int) -> None:
        for column, claimed in self._unique_columns.items():
            value = row[self.schema.position(column)]
            if value is not NULL and claimed.get(_unique_key(value)) == row_id:
                del claimed[_unique_key(value)]

    # -- mutation --------------------------------------------------------------------

    def insert(self, row: Iterable[Any]) -> int:
        """Validate and insert one full row; returns its row id."""
        validated = self.schema.validate_row(row)
        self._check_unique(validated)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._heap.append(row_id, validated)
        self._claim_unique(validated, row_id)
        for index in self._indexes.values():
            index.insert(validated[self.schema.position(index.column)], row_id)
        return row_id

    def insert_named(self, **named_values: Any) -> int:
        """Insert from column-name keywords, applying schema defaults."""
        return self.insert(self.schema.complete_row(named_values))

    def delete(self, row_id: int) -> list[Any]:
        """Remove one row; returns the removed row."""
        row = self.row(row_id)
        self._heap.remove(row_id)
        self._release_unique(row, row_id)
        for index in self._indexes.values():
            index.delete(row[self.schema.position(index.column)], row_id)
        return row

    def update(self, row_id: int, new_row: Iterable[Any]) -> None:
        """Replace one row in place (same row id)."""
        old_row = self.row(row_id)
        validated = self.schema.validate_row(new_row)
        self._check_unique(validated, ignore_row_id=row_id)
        self._release_unique(old_row, row_id)
        self._claim_unique(validated, row_id)
        for index in self._indexes.values():
            position = self.schema.position(index.column)
            if old_row[position] != validated[position]:
                index.delete(old_row[position], row_id)
                index.insert(validated[position], row_id)
        self._heap.replace(row_id, validated)

    def truncate(self) -> None:
        """Remove all rows (keeps schema and indexes)."""
        self._heap.clear()
        for claimed in self._unique_columns.values():
            claimed.clear()
        for index in self._indexes.values():
            index.clear()

    # -- indexes -----------------------------------------------------------------------

    def attach_index(self, index: Index) -> None:
        """Register an index and backfill it from current rows."""
        if index.name in self._indexes:
            raise DatabaseError(f"index {index.name!r} already attached")
        self.schema.require_column(index.column)
        position = self.schema.position(index.column)
        for row_id, row in self._heap.items():
            index.insert(row[position], row_id)
        self._indexes[index.name] = index

    def detach_index(self, name: str) -> Index:
        try:
            return self._indexes.pop(name.lower())
        except KeyError:
            raise DatabaseError(f"no index named {name!r}") from None

    @property
    def indexes(self) -> tuple[Index, ...]:
        return tuple(self._indexes.values())

    def indexes_on(self, column: str) -> tuple[Index, ...]:
        column = column.lower()
        return tuple(
            index for index in self._indexes.values()
            if index.column == column
        )

    # -- statistics (ANALYZE) ---------------------------------------------------------

    @property
    def statistics(self) -> "dict[str, int] | None":
        """Per-column distinct counts, or ``None`` before ANALYZE."""
        return self._statistics

    def collect_statistics(self) -> dict[str, int]:
        """Compute distinct-value counts per column (the ANALYZE pass).

        NULLs are excluded (they never match equality predicates).  The
        optimizer uses ``1 / ndistinct`` as the equality selectivity of
        analyzed columns instead of the fixed default.
        """
        distinct: list[set] = [set() for _ in self.schema.columns]
        for _, row in self._heap.items():
            for position, value in enumerate(row):
                if value is not NULL:
                    distinct[position].add(_unique_key(value))
        counts = {
            column.name: len(distinct[position])
            for position, column in enumerate(self.schema.columns)
        }
        self._statistics = counts
        return counts

    # -- snapshots (transaction support) ---------------------------------------------

    def snapshot(self) -> dict:
        """A restorable copy of the row data (indexes are rebuilt on restore)."""
        return {
            "rows": {row_id: list(row) for row_id, row in self._heap.items()},
            "next_row_id": self._next_row_id,
        }

    def restore(self, snapshot: dict) -> None:
        self._heap.clear()
        for row_id, row in snapshot["rows"].items():
            self._heap.append(row_id, list(row))
        self._next_row_id = snapshot["next_row_id"]
        for claimed in self._unique_columns.values():
            claimed.clear()
        for row_id, row in self._heap.items():
            self._claim_unique(row, row_id)
        for index in self._indexes.values():
            index.clear()
            position = self.schema.position(index.column)
            for row_id, row in self._heap.items():
                index.insert(row[position], row_id)
