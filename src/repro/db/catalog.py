"""The system catalog: tables, indexes, UDTs, UDFs and aggregates.

This is the registration surface of the "extensible DBMS" the paper
requires (section 6.2): user-defined opaque types enter through
:meth:`Catalog.register_type`, user-defined functions — usable anywhere an
expression may occur, per section 6.3 — through
:meth:`Catalog.register_function`, and user-defined index structures
through the table's index attachment, driven by ``CREATE INDEX``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.db.values import OpaqueType, SqlType, builtin_type
from repro.errors import CatalogError


@dataclass
class SqlFunction:
    """A scalar user-defined function callable from SQL expressions.

    ``selectivity`` estimates, for boolean functions used as predicates,
    the fraction of rows they keep — the genomic-predicate selectivity
    hook of section 6.5 the optimizer consults.  ``None`` means "returns
    a value, not a predicate" or "unknown" (the optimizer uses a default).

    ``kernel`` names a vectorized page kernel (see
    :mod:`repro.db.columnar.vector`) whose semantics this function is
    known to match.  Only explicitly tagged registrations are ever
    vectorized — a user function that merely reuses a builtin's name
    keeps row-at-a-time evaluation.
    """

    name: str
    function: Callable[..., Any]
    selectivity: float | None = None
    description: str = ""
    kernel: str | None = None

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        if self.selectivity is not None and not 0.0 <= self.selectivity <= 1.0:
            raise CatalogError("selectivity must be in [0, 1]")


@dataclass
class SqlAggregate:
    """An aggregate: initial state, per-row step, final projection."""

    name: str
    initial: Callable[[], Any]
    step: Callable[[Any, Any], Any]
    final: Callable[[Any], Any]

    def __post_init__(self) -> None:
        self.name = self.name.lower()


class Catalog:
    """All schema objects of one database."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._types: dict[str, OpaqueType] = {}
        self._functions: dict[str, SqlFunction] = {}
        self._aggregates: dict[str, SqlAggregate] = {}
        # value class -> OpaqueType (or None), so hot serialization paths
        # don't scan every registered UDT per cell.
        self._opaque_by_class: dict[type, OpaqueType | None] = {}

    # -- tables -----------------------------------------------------------------

    def create_table(self, schema: TableSchema,
                     table: "Table | None" = None) -> Table:
        """Register a table; *table* lets the database pick the heap layout."""
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        if table is None:
            table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # -- types ------------------------------------------------------------------

    def register_type(self, opaque: OpaqueType) -> None:
        if builtin_type(opaque.name) is not None:
            raise CatalogError(
                f"{opaque.name!r} clashes with a built-in type"
            )
        if opaque.name in self._types:
            raise CatalogError(f"type {opaque.name!r} already registered")
        self._types[opaque.name] = opaque
        self._opaque_by_class.clear()

    def resolve_type(self, name: str) -> SqlType:
        """Look up a type name: built-ins first, then registered UDTs."""
        built_in = builtin_type(name)
        if built_in is not None:
            return built_in
        try:
            return self._types[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown type {name!r}") from None

    def opaque_type(self, name: str) -> OpaqueType:
        try:
            return self._types[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown opaque type {name!r}") from None

    def opaque_type_for(self, value: Any) -> OpaqueType | None:
        """The registered UDT containing *value*, or ``None`` — memoised
        per value class (registration order breaks ties, as before)."""
        klass = type(value)
        try:
            return self._opaque_by_class[klass]
        except KeyError:
            pass
        found = None
        for opaque in self._types.values():
            if opaque.contains(value):
                found = opaque
                break
        self._opaque_by_class[klass] = found
        return found

    @property
    def type_names(self) -> tuple[str, ...]:
        return tuple(self._types)

    # -- functions ----------------------------------------------------------------

    def register_function(
        self,
        name: str,
        function: Callable[..., Any],
        selectivity: float | None = None,
        description: str = "",
        replace: bool = False,
        kernel: str | None = None,
    ) -> None:
        """Register a scalar UDF (section 6.3)."""
        descriptor = SqlFunction(name, function, selectivity, description,
                                 kernel)
        if descriptor.name in self._functions and not replace:
            raise CatalogError(
                f"function {descriptor.name!r} already registered"
            )
        self._functions[descriptor.name] = descriptor

    def function(self, name: str) -> SqlFunction:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown function {name!r}") from None

    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    @property
    def function_names(self) -> tuple[str, ...]:
        return tuple(self._functions)

    # -- aggregates -----------------------------------------------------------------

    def register_aggregate(self, aggregate: SqlAggregate,
                           replace: bool = False) -> None:
        if aggregate.name in self._aggregates and not replace:
            raise CatalogError(
                f"aggregate {aggregate.name!r} already registered"
            )
        self._aggregates[aggregate.name] = aggregate

    def aggregate(self, name: str) -> SqlAggregate:
        try:
            return self._aggregates[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown aggregate {name!r}") from None

    def has_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates
