"""Persistence: database images and a write-ahead log.

Section 4.3 requires GDT representations that "be embedded into compact
storage areas which can be efficiently transferred between main memory
and disk".  At the engine level that means:

- **images** (:func:`save_database` / :func:`load_database`): the whole
  database as one JSON document; opaque UDT values are stored as the hex
  of their own compact serializers (the engine never interprets them);
- **WAL** (:class:`WriteAheadLog`): every mutating statement appended as
  one JSON line, replayable after a crash; :func:`checkpoint` writes an
  image and truncates the log.

Because UDTs and UDFs are *code*, images record only type **names**; a
loader must re-register the same types and functions first (the adapter
does this in one call), then :func:`load_database` re-attaches values.
"""

from __future__ import annotations

import json
import os
from typing import Any, Sequence

from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.db.sql import ast
from repro.db.values import NULL, OpaqueType
from repro.errors import StorageError


def _encode_value(value: Any, database: Database) -> Any:
    """JSON-encode one cell value, tagging bytes and UDT payloads."""
    if value is NULL or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    for type_name in database.catalog.type_names:
        opaque = database.catalog.opaque_type(type_name)
        if opaque.contains(value):
            return {"$udt": opaque.name,
                    "data": opaque.serialize(value).hex()}
    raise StorageError(
        f"cannot serialize value of type {type(value).__name__}; "
        f"register an OpaqueType for it first"
    )


def _decode_value(encoded: Any, database: Database) -> Any:
    if isinstance(encoded, dict):
        if "$bytes" in encoded:
            return bytes.fromhex(encoded["$bytes"])
        if "$udt" in encoded:
            opaque = database.catalog.opaque_type(encoded["$udt"])
            return opaque.deserialize(bytes.fromhex(encoded["data"]))
        raise StorageError(f"unknown tagged value {encoded!r}")
    return encoded


def _type_name(column: Column, database: Database) -> str:
    if isinstance(column.sql_type, OpaqueType):
        return column.sql_type.name
    return column.sql_type.name


def save_database(database: Database, path: str) -> None:
    """Write the full database image (schema + data + index defs) to disk."""
    image: dict[str, Any] = {"format": 1, "tables": [], "indexes": []}
    for table_name in database.catalog.table_names:
        table = database.catalog.table(table_name)
        schema = table.schema
        image["tables"].append({
            "name": schema.name,
            "columns": [
                {
                    "name": column.name,
                    "type": _type_name(column, database),
                    "not_null": column.not_null,
                    "default": _encode_value(column.default, database),
                }
                for column in schema.columns
            ],
            "primary_key": schema.primary_key,
            "unique": list(schema.unique),
            "rows": [
                [_encode_value(value, database) for value in row]
                for _, row in table.rows()
            ],
        })
    for definition in database.index_definitions:
        image["indexes"].append({
            "name": definition.name,
            "table": definition.table,
            "column": definition.column,
            "using": definition.using,
            "parameters": definition.parameters,
        })
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(image, handle)
    os.replace(temporary, path)


def load_database(path: str, database: Database | None = None) -> Database:
    """Rebuild a database from an image.

    Pass a *database* that already has the needed UDTs and UDFs
    registered; a fresh one is created otherwise (then only built-in
    column types can be restored).
    """
    database = database or Database()
    try:
        with open(path, encoding="utf-8") as handle:
            image = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read database image {path!r}: {exc}")
    if image.get("format") != 1:
        raise StorageError(f"unsupported image format {image.get('format')!r}")

    for table_spec in image["tables"]:
        columns = [
            Column(
                column_spec["name"],
                database.catalog.resolve_type(column_spec["type"]),
                not_null=column_spec["not_null"],
                default=_decode_value(column_spec["default"], database),
            )
            for column_spec in table_spec["columns"]
        ]
        schema = TableSchema(
            table_spec["name"], columns,
            table_spec["primary_key"], tuple(table_spec["unique"]),
        )
        table = database.catalog.create_table(schema)
        for encoded_row in table_spec["rows"]:
            table.insert([
                _decode_value(value, database) for value in encoded_row
            ])

    for index_spec in image["indexes"]:
        statement = ast.CreateIndex(
            index_spec["name"], index_spec["table"], index_spec["column"],
            index_spec["using"], dict(index_spec["parameters"]),
        )
        database._dispatch(statement, ())
    return database


class WriteAheadLog:
    """A JSON-lines statement log.

    Attach with :meth:`attach`; every mutating statement outside a
    transaction (and every committed transaction's statements) is
    appended with its parameters.  :meth:`replay` re-executes the log
    against a database restored from the last checkpoint image.
    """

    def __init__(self, path: str, database: Database) -> None:
        self.path = path
        self._database = database

    def attach(self) -> None:
        self._database.attach_wal(self._write)

    def _write(self, sql: str, parameters: Sequence[Any]) -> None:
        record = {
            "sql": sql,
            "params": [_encode_value(value, self._database)
                       for value in parameters],
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")

    def replay(self, target: Database | None = None) -> int:
        """Re-execute logged statements; returns how many were applied."""
        target = target or self._database
        if not os.path.exists(self.path):
            return 0
        applied = 0
        with open(self.path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn final record (crash mid-append) ends replay.
                    break
                parameters = [_decode_value(value, target)
                              for value in record["params"]]
                target.execute(record["sql"], parameters)
                applied += 1
        return applied

    def truncate(self) -> None:
        with open(self.path, "w", encoding="utf-8"):
            pass


def checkpoint(database: Database, image_path: str,
               wal: WriteAheadLog | None = None) -> None:
    """Write an image and (if given) truncate the WAL."""
    save_database(database, image_path)
    if wal is not None:
        wal.truncate()
