"""Persistence: database images and a write-ahead log.

Section 4.3 requires GDT representations that "be embedded into compact
storage areas which can be efficiently transferred between main memory
and disk".  At the engine level that means:

- **images** (:func:`save_database` / :func:`load_database`): the whole
  database as one JSON document; opaque UDT values are stored as the hex
  of their own compact serializers (the engine never interprets them);
- **WAL** (:class:`WriteAheadLog`): every mutating statement appended as
  one JSON line through a persistent handle with buffered **group
  commit** (``flush_every_n`` / explicit :meth:`~WriteAheadLog.flush` /
  optional ``fsync``), replayable after a crash;
- **checkpoints** (:func:`checkpoint`): write an image and *rotate* the
  log — the active segment is sealed under its generation number, the
  image records the generation it covers, and only then are covered
  segments purged.  A crash at any point between those steps loses
  nothing: recovery (:mod:`repro.db.recovery`) applies the image plus
  every segment the image does not cover.

Because UDTs and UDFs are *code*, images record only type **names**; a
loader must re-register the same types and functions first (the adapter
does this in one call), then :func:`load_database` re-attaches values.

The durability contract of one WAL file:

- the first line is a header record ``{"$wal": 1, "generation": N}``;
- every other line is ``{"sql": ..., "params": [...]}``;
- a torn **final** line is a crash mid-append and is dropped on replay;
- a torn line **followed by valid lines** cannot be a crashed append and
  is reported as :class:`~repro.errors.StorageError` — silently skipping
  it would replay a history with a hole in the middle.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Sequence

from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.db.sql import ast
from repro.db.values import NULL, OpaqueType
from repro.errors import StorageError
from repro.obs.metrics import count as _metric

#: The keys every image table/column/index spec must carry; a truncated
#: or hand-edited image fails with StorageError, never a bare KeyError.
_TABLE_KEYS = ("name", "columns", "primary_key", "unique", "rows")
_COLUMN_KEYS = ("name", "type", "not_null", "default")
_INDEX_KEYS = ("name", "table", "column", "using", "parameters")

_SEGMENT_SUFFIX = re.compile(r"\.(\d{6})$")


def _require_keys(spec: Any, keys: Sequence[str], what: str) -> None:
    if not isinstance(spec, dict) or any(key not in spec for key in keys):
        missing = ([key for key in keys if key not in spec]
                   if isinstance(spec, dict) else list(keys))
        raise StorageError(
            f"malformed image: {what} is missing {missing!r} "
            f"(truncated or foreign file?)"
        )


def _encode_value(value: Any, database: Database) -> Any:
    """JSON-encode one cell value, tagging bytes and UDT payloads."""
    if value is NULL or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    opaque = database.catalog.opaque_type_for(value)
    if opaque is not None:
        return {"$udt": opaque.name, "data": opaque.serialize(value).hex()}
    raise StorageError(
        f"cannot serialize value of type {type(value).__name__}; "
        f"register an OpaqueType for it first"
    )


def _decode_value(encoded: Any, database: Database) -> Any:
    if isinstance(encoded, dict):
        if "$bytes" in encoded:
            return bytes.fromhex(encoded["$bytes"])
        if "$udt" in encoded:
            opaque = database.catalog.opaque_type(encoded["$udt"])
            return opaque.deserialize(bytes.fromhex(encoded["data"]))
        raise StorageError(f"unknown tagged value {encoded!r}")
    return encoded


def _type_name(column: Column) -> str:
    return column.sql_type.name


def build_image(database: Database,
                wal_generation: int | None = None) -> dict[str, Any]:
    """The image of *database* as a JSON-ready dict (what gets saved)."""
    image: dict[str, Any] = {"format": 1, "tables": [], "indexes": []}
    if wal_generation is not None:
        image["wal_generation"] = wal_generation
    for table_name in database.catalog.table_names:
        table = database.catalog.table(table_name)
        schema = table.schema
        image["tables"].append({
            "name": schema.name,
            "columns": [
                {
                    "name": column.name,
                    "type": _type_name(column),
                    "not_null": column.not_null,
                    "default": _encode_value(column.default, database),
                }
                for column in schema.columns
            ],
            "primary_key": schema.primary_key,
            "unique": list(schema.unique),
            "rows": [
                [_encode_value(value, database) for value in row]
                for _, row in table.rows()
            ],
        })
    for definition in database.index_definitions:
        image["indexes"].append({
            "name": definition.name,
            "table": definition.table,
            "column": definition.column,
            "using": definition.using,
            "parameters": definition.parameters,
        })
    return image


def save_database(database: Database, path: str,
                  wal_generation: int | None = None) -> None:
    """Write the full database image (schema + data + index defs) to disk.

    The write is atomic (temp file + rename), so a crash mid-save leaves
    the previous image intact.  ``wal_generation`` records which WAL
    generation this image covers; recovery skips older sealed segments.
    """
    image = build_image(database, wal_generation)
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(image, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    _metric("storage", "images_saved")


def read_image(path: str) -> dict[str, Any]:
    """Read and format-check an image document without restoring it."""
    try:
        with open(path, encoding="utf-8") as handle:
            image = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(
            f"cannot read database image {path!r}: {exc}"
        ) from exc
    if not isinstance(image, dict) or image.get("format") != 1:
        raise StorageError(
            f"unsupported image format "
            f"{image.get('format') if isinstance(image, dict) else image!r}"
        )
    _require_keys(image, ("tables", "indexes"), "image")
    return image


def restore_image(image: dict[str, Any],
                  database: Database | None = None) -> Database:
    """Rebuild a database from an already-read image document."""
    database = database or Database()
    for table_spec in image["tables"]:
        _require_keys(table_spec, _TABLE_KEYS, "table spec")
        columns = []
        for column_spec in table_spec["columns"]:
            _require_keys(column_spec, _COLUMN_KEYS,
                          f"column spec of table {table_spec['name']!r}")
            columns.append(Column(
                column_spec["name"],
                database.catalog.resolve_type(column_spec["type"]),
                not_null=column_spec["not_null"],
                default=_decode_value(column_spec["default"], database),
            ))
        schema = TableSchema(
            table_spec["name"], columns,
            table_spec["primary_key"], tuple(table_spec["unique"]),
        )
        table = database.catalog.create_table(schema)
        for encoded_row in table_spec["rows"]:
            table.insert([
                _decode_value(value, database) for value in encoded_row
            ])

    for index_spec in image["indexes"]:
        _require_keys(index_spec, _INDEX_KEYS, "index spec")
        statement = ast.CreateIndex(
            index_spec["name"], index_spec["table"], index_spec["column"],
            index_spec["using"], dict(index_spec["parameters"]),
        )
        database._dispatch(statement, ())
    return database


def load_database(path: str, database: Database | None = None) -> Database:
    """Rebuild a database from an image.

    Pass a *database* that already has the needed UDTs and UDFs
    registered; a fresh one is created otherwise (then only built-in
    column types can be restored).
    """
    return restore_image(read_image(path), database)


def _header_record(generation: int) -> str:
    return json.dumps({"$wal": 1, "generation": generation}) + "\n"


def segment_generation(path: str) -> int | None:
    """The generation stamped in a WAL file's header line, or ``None``."""
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    return None
                if isinstance(record, dict) and "$wal" in record:
                    try:
                        return int(record.get("generation", 0))
                    except (ValueError, TypeError):
                        return None
                return None
    except OSError:
        return None
    return None


def read_wal_records(path: str, *,
                     allow_torn_tail: bool = True) -> tuple[list[dict], bool]:
    """Parse one WAL file into records (headers dropped).

    Returns ``(records, torn_tail)``.  A torn record anywhere but the
    final line — or a torn final line when ``allow_torn_tail`` is false —
    raises :class:`StorageError`: a hole in the middle of the history is
    corruption, not a crashed append.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    records: list[dict] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if any(later.strip() for later in lines[index + 1:]):
                raise StorageError(
                    f"torn WAL record at {path}:{index + 1} is followed "
                    f"by valid records; the log is corrupt, refusing to "
                    f"replay around the hole"
                ) from exc
            if not allow_torn_tail:
                raise StorageError(
                    f"torn WAL record at {path}:{index + 1}"
                ) from exc
            return records, True
        if isinstance(record, dict) and "$wal" in record:
            continue
        if not isinstance(record, dict) or "sql" not in record \
                or "params" not in record:
            raise StorageError(
                f"malformed WAL record at {path}:{index + 1}: {record!r}"
            )
        records.append(record)
    return records, False


def apply_wal_records(records: Sequence[dict], target: Database) -> int:
    """Re-execute parsed WAL records with the target's WAL sink muted."""
    applied = 0
    with target.suppress_wal():
        for record in records:
            parameters = [_decode_value(value, target)
                          for value in record["params"]]
            target.execute(record["sql"], parameters)
            applied += 1
    return applied


class WriteAheadLog:
    """A JSON-lines statement log with group commit and rotation.

    Attach with :meth:`attach`; every mutating statement outside a
    transaction (and every committed transaction's statements) is
    appended with its parameters.  Appends go through one persistent
    handle; ``flush_every_n`` batches them into group commits (an
    explicit :meth:`flush` or :meth:`close` always drains, ``fsync=True``
    additionally forces the records to stable storage on each flush).
    ``reopen_each=True`` restores the legacy open-append-close behaviour
    per statement — kept only as the ablation baseline for
    ``benchmarks/bench_ablation_recovery.py``.

    :meth:`replay` re-executes the log against a database restored from
    the last checkpoint image, with the target's WAL sink suppressed so
    replay never re-appends to the log it is reading.
    """

    def __init__(self, path: str, database: Database, *,
                 flush_every_n: int = 1, fsync: bool = False,
                 reopen_each: bool = False) -> None:
        self.path = path
        self._database = database
        self.flush_every_n = max(1, int(flush_every_n))
        self.fsync = fsync
        self._reopen_each = reopen_each
        self._handle = None
        self._pending = 0
        self._generation = self._initial_generation()

    # -- lifecycle -------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The generation of the active (appendable) segment."""
        return self._generation

    def _initial_generation(self) -> int:
        if os.path.exists(self.path):
            header = segment_generation(self.path)
            if header is not None:
                return header
        sealed = self.sealed_segments()
        if sealed:
            return sealed[-1][0] + 1
        return 0

    def attach(self) -> None:
        self._database.attach_wal(self.append)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def flush(self) -> None:
        """Drain buffered records to the OS (and to disk with ``fsync``)."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            _metric("storage", "wal_flushes")
        self._pending = 0

    def close(self) -> None:
        """Flush and release the persistent handle."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    # -- appending -------------------------------------------------------------

    def _file_is_blank(self) -> bool:
        return (not os.path.exists(self.path)
                or os.path.getsize(self.path) == 0)

    def append(self, sql: str, parameters: Sequence[Any]) -> None:
        """Log one mutating statement (the attached sink entry point)."""
        record = {
            "sql": sql,
            "params": [_encode_value(value, self._database)
                       for value in parameters],
        }
        line = json.dumps(record) + "\n"
        _metric("storage", "wal_appends")
        if self._reopen_each:
            blank = self._file_is_blank()
            with open(self.path, "a", encoding="utf-8") as handle:
                if blank:
                    handle.write(_header_record(self._generation))
                handle.write(line)
            return
        if self._handle is None:
            blank = self._file_is_blank()
            self._handle = open(self.path, "a", encoding="utf-8")
            if blank:
                self._handle.write(_header_record(self._generation))
        self._handle.write(line)
        self._pending += 1
        if self._pending >= self.flush_every_n:
            self.flush()

    # -- segments ---------------------------------------------------------------

    def sealed_segments(self) -> list[tuple[int, str]]:
        """Sealed segment files next to the log, ``(generation, path)``
        in ascending generation order."""
        directory, base = os.path.split(self.path)
        directory = directory or "."
        segments: list[tuple[int, str]] = []
        try:
            entries = os.listdir(directory)
        except OSError:
            return []
        for entry in entries:
            if not entry.startswith(base + "."):
                continue
            match = _SEGMENT_SUFFIX.search(entry)
            if match and entry == f"{base}.{match.group(1)}":
                segments.append((int(match.group(1)),
                                 os.path.join(directory, entry)))
        segments.sort()
        return segments

    def rotate(self) -> str | None:
        """Seal the active segment and start a fresh one.

        Returns the sealed segment's path, or ``None`` when the active
        log holds no records (nothing to seal).  Statements appended
        after rotation land in the new segment, so a checkpoint image
        written *after* :meth:`rotate` can never swallow them.
        """
        self.close()
        if self._file_is_blank():
            open(self.path, "a", encoding="utf-8").close()
            return None
        if not read_wal_records(self.path)[0]:
            # Header-only (or blank-line) file: nothing to seal — but
            # truncating must restamp the header, or a reopened log
            # would fall back to generation 0 and recovery would
            # skew-skip everything appended since the last checkpoint.
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(_header_record(self._generation))
            return None
        sealed_path = f"{self.path}.{self._generation:06d}"
        os.replace(self.path, sealed_path)
        self._generation += 1
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(_header_record(self._generation))
        _metric("storage", "wal_rotations")
        return sealed_path

    def purge(self, before_generation: int | None = None) -> list[str]:
        """Delete sealed segments older than *before_generation*
        (default: everything the current image generation covers)."""
        horizon = (self._generation if before_generation is None
                   else before_generation)
        removed = []
        for generation, path in self.sealed_segments():
            if generation < horizon:
                os.remove(path)
                removed.append(path)
        return removed

    # -- replay ------------------------------------------------------------------

    def replay(self, target: Database | None = None, *,
               suppress: bool = True) -> int:
        """Re-execute logged statements; returns how many were applied.

        The target's WAL sink is suppressed for the duration, so replay
        is idempotent with respect to the log file itself.  With
        ``suppress=False`` the call refuses to proceed when the target's
        sink is this log (or another log over the same file): replaying
        into your own sink doubles the log on every recovery.
        """
        target = target or self._database
        if not suppress:
            sink = target.wal_sink
            owner = getattr(sink, "__self__", None)
            if isinstance(owner, WriteAheadLog) and \
                    os.path.abspath(owner.path) == os.path.abspath(self.path):
                raise StorageError(
                    f"refusing to replay {self.path!r} into a database "
                    f"whose WAL sink appends to the same file; replay "
                    f"with suppress=True (the default)"
                )
        self.flush()
        if not os.path.exists(self.path):
            return 0
        records, _ = read_wal_records(self.path, allow_torn_tail=True)
        if suppress:
            return apply_wal_records(records, target)
        applied = 0
        for record in records:
            parameters = [_decode_value(value, target)
                          for value in record["params"]]
            target.execute(record["sql"], parameters)
            applied += 1
        return applied

    def truncate(self) -> None:
        """Reset the active segment in place (generation unchanged)."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass


def checkpoint(database: Database, image_path: str,
               wal: WriteAheadLog | None = None) -> None:
    """Write an image and (if given) rotate-then-purge the WAL.

    The order is crash-safe: (1) the active segment is sealed under its
    generation, so statements logged while the image is being written go
    to the *next* segment; (2) the image records the new generation;
    (3) only segments the image covers are purged.  A crash after any
    single step leaves a state :func:`repro.db.recovery.recover` restores
    exactly — nothing is blindly truncated.
    """
    if wal is None:
        save_database(database, image_path)
        return
    wal.rotate()
    save_database(database, image_path, wal_generation=wal.generation)
    wal.purge(before_generation=wal.generation)
