"""Persistence: database images and a write-ahead log.

Section 4.3 requires GDT representations that "be embedded into compact
storage areas which can be efficiently transferred between main memory
and disk".  At the engine level that means:

- **images** (:func:`save_database` / :func:`load_database`): the whole
  database as one JSON document; opaque UDT values are stored as the hex
  of their own compact serializers (the engine never interprets them);
- **WAL** (:class:`WriteAheadLog`): every mutating statement appended as
  one JSON line through a persistent handle with buffered **group
  commit** (``flush_every_n`` / explicit :meth:`~WriteAheadLog.flush` /
  optional ``fsync``), replayable after a crash;
- **checkpoints** (:func:`checkpoint`): write an image and *rotate* the
  log — the active segment is sealed under its generation number, the
  image records the generation it covers, and only then are covered
  segments purged.  A crash at any point between those steps loses
  nothing: recovery (:mod:`repro.db.recovery`) applies the image plus
  every segment the image does not cover.

Because UDTs and UDFs are *code*, images record only type **names**; a
loader must re-register the same types and functions first (the adapter
does this in one call), then :func:`load_database` re-attaches values.

The durability contract of one WAL file:

- the first line is a header record ``{"$wal": 2, "generation": N,
  "crc": C}`` (version 1 headers — no checksums anywhere in the file —
  are the legacy format and stay readable, verification skipped);
- every other line is ``{"sql": ..., "params": [...], "crc": C}`` where
  ``C`` is the CRC32 of the record's own serialization without the
  ``crc`` field — a flipped bit that still parses as JSON no longer
  replays silently;
- a torn **final** line is a crash mid-append and is dropped on replay
  (``kind="torn_tail"``);
- a torn line **followed by valid lines** cannot be a crashed append and
  is reported as :class:`~repro.errors.StorageError` with
  ``kind="corrupt_middle"`` — silently skipping it would replay a
  history with a hole in the middle;
- a line that parses but fails its CRC is **bit rot**
  (``kind="bit_rot"``), reported with the file, record index, and byte
  offset so :mod:`repro.db.scrub` can localize the damage.

Images carry a whole-file SHA-256 digest in their header (format 2);
:func:`read_image` verifies it on every load and raises
``kind="digest_mismatch"`` when the bytes under the JSON changed.
Format-1 images (pre-digest) load with verification skipped.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zlib
from typing import Any, Sequence

from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.db.sql import ast
from repro.db.values import NULL, OpaqueType
from repro.errors import StorageError
from repro.obs.metrics import count as _metric

#: The keys every image table/column/index spec must carry; a truncated
#: or hand-edited image fails with StorageError, never a bare KeyError.
_TABLE_KEYS = ("name", "columns", "primary_key", "unique", "rows")
_COLUMN_KEYS = ("name", "type", "not_null", "default")
_INDEX_KEYS = ("name", "table", "column", "using", "parameters")

_SEGMENT_SUFFIX = re.compile(r"\.(\d{6})$")

#: Current on-disk format versions.  WAL version 2 adds a per-record
#: CRC32; image format 2 adds a whole-file SHA-256 digest.  Version-1
#: files remain readable with verification skipped (``legacy``).
WAL_FORMAT = 2
IMAGE_FORMAT = 2

#: WAL headers gain a replication ``epoch`` field under version 3
#: (``{"$wal": 3, "generation": N, "epoch": E, "crc": C}``).  The
#: epoch is stamped only when the log belongs to a lease-holding
#: primary (:mod:`repro.federation.membership`); logs without one keep
#: writing version-2 headers byte-for-byte, and version-1/2 files stay
#: readable — :func:`segment_epoch` simply reports ``None`` for them.
WAL_EPOCH_FORMAT = 3


def checksum_line(body: str) -> str:
    """Append a ``crc`` field to one serialized JSON-object line.

    ``body`` must be a ``json.dumps`` of a dict (so it ends in ``}``);
    the CRC32 covers exactly the bytes of *body*, which the verifier
    reconstructs by re-serializing the parsed record without ``crc``.
    """
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{body[:-1]}, "crc": {crc}}}'


def record_checksum_body(record: dict) -> str:
    """The canonical serialization a WAL record's CRC covers.

    Missing fields serialize as ``null`` instead of raising: a record
    whose expected key was damaged away can never match its stored
    CRC, so the caller classifies it as bit rot rather than crashing
    on a bare ``KeyError``.
    """
    if "$wal" in record:
        body = {"$wal": record["$wal"],
                "generation": record.get("generation")}
        # Version-3 headers cover the epoch too; an epoch field that
        # rotted away leaves the CRC unable to match, which is exactly
        # the bit_rot verdict we want.  Version-2 headers never had
        # the key, so their checksum body is unchanged (back-compat).
        if "epoch" in record:
            body["epoch"] = record.get("epoch")
        return json.dumps(body)
    return json.dumps({"sql": record.get("sql"),
                       "params": record.get("params")})


def record_checksum_ok(record: dict) -> bool:
    """Recompute a parsed record's CRC32 and compare it to the stored
    ``crc`` field.  Records without one (legacy format) pass."""
    stored = record.get("crc")
    if stored is None:
        return True
    body = record_checksum_body(record)
    return zlib.crc32(body.encode("utf-8")) == stored


_CRC_MARK = ', "crc": '


def line_checksum_ok(line: str, record: dict) -> bool:
    """Verify one WAL line's CRC32, preferring the raw bytes.

    :func:`checksum_line` always splices ``, "crc": N`` in as the last
    field, so the covered body is the line with that suffix removed —
    one ``crc32`` over the bytes as written, no re-serialization.
    This is both faster than :func:`record_checksum_ok` (the replay
    hot path calls this per record) and byte-exact.  Lines not in
    writer format (foreign serialization, legacy records) fall back
    to the semantic check, so nothing readable regresses.
    """
    mark = line.rfind(_CRC_MARK)
    if mark != -1 and line.endswith("}"):
        digits = line[mark + len(_CRC_MARK):-1]
        if digits.isdigit():
            crc = zlib.crc32(
                b"}", zlib.crc32(line[:mark].encode("utf-8")))
            if crc == int(digits):
                return True
    return record_checksum_ok(record)


def fsync_directory(path: str) -> None:
    """fsync the directory holding *path*, making a rename durable.

    ``os.replace`` is atomic but not durable until the parent
    directory's entry is flushed; a crash right after the rename can
    roll it back.  Platforms that refuse to fsync a directory are
    silently tolerated — the call is best-effort hardening.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _require_keys(spec: Any, keys: Sequence[str], what: str) -> None:
    if not isinstance(spec, dict) or any(key not in spec for key in keys):
        missing = ([key for key in keys if key not in spec]
                   if isinstance(spec, dict) else list(keys))
        raise StorageError(
            f"malformed image: {what} is missing {missing!r} "
            f"(truncated or foreign file?)"
        )


def _encode_value(value: Any, database: Database) -> Any:
    """JSON-encode one cell value, tagging bytes and UDT payloads."""
    if value is NULL or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"$bytes": bytes(value).hex()}
    opaque = database.catalog.opaque_type_for(value)
    if opaque is not None:
        return {"$udt": opaque.name, "data": opaque.serialize(value).hex()}
    raise StorageError(
        f"cannot serialize value of type {type(value).__name__}; "
        f"register an OpaqueType for it first"
    )


def _decode_value(encoded: Any, database: Database) -> Any:
    if isinstance(encoded, dict):
        if "$bytes" in encoded:
            return bytes.fromhex(encoded["$bytes"])
        if "$udt" in encoded:
            opaque = database.catalog.opaque_type(encoded["$udt"])
            return opaque.deserialize(bytes.fromhex(encoded["data"]))
        raise StorageError(f"unknown tagged value {encoded!r}")
    return encoded


def _type_name(column: Column) -> str:
    return column.sql_type.name


def build_image(database: Database,
                wal_generation: int | None = None) -> dict[str, Any]:
    """The image of *database* as a JSON-ready dict (what gets saved)."""
    image: dict[str, Any] = {"format": IMAGE_FORMAT, "tables": [],
                             "indexes": []}
    if wal_generation is not None:
        image["wal_generation"] = wal_generation
    for table_name in database.catalog.table_names:
        table = database.catalog.table(table_name)
        schema = table.schema
        image["tables"].append({
            "name": schema.name,
            "columns": [
                {
                    "name": column.name,
                    "type": _type_name(column),
                    "not_null": column.not_null,
                    "default": _encode_value(column.default, database),
                }
                for column in schema.columns
            ],
            "primary_key": schema.primary_key,
            "unique": list(schema.unique),
            "layout": table.layout,
            "rows": [
                [_encode_value(value, database) for value in row]
                for _, row in table.rows()
            ],
        })
    for definition in database.index_definitions:
        image["indexes"].append({
            "name": definition.name,
            "table": definition.table,
            "column": definition.column,
            "using": definition.using,
            "parameters": definition.parameters,
        })
    return image


def image_digest(image: dict[str, Any]) -> str:
    """SHA-256 over the canonical serialization of an image document,
    excluding its own ``digest`` field."""
    body = {key: value for key, value in image.items() if key != "digest"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


def save_database(database: Database, path: str,
                  wal_generation: int | None = None) -> None:
    """Write the full database image (schema + data + index defs) to disk.

    The write is atomic (temp file + rename) and durable: the temp file
    is fsynced before the rename and the parent directory after it, so
    a crash at any point leaves either the previous image or the new
    one — never half of each, and never a rename the disk forgot.
    The image header carries a whole-file SHA-256 digest
    (:func:`image_digest`) verified on every load.  ``wal_generation``
    records which WAL generation this image covers; recovery skips
    older sealed segments.
    """
    image = build_image(database, wal_generation)
    image["digest"] = image_digest(image)
    temporary = path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(image, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    fsync_directory(path)
    _metric("storage", "images_saved")


def read_image(path: str, *, verify: bool = True) -> dict[str, Any]:
    """Read and format-check an image document without restoring it.

    Format-2 images carry a whole-file digest that is verified here
    (``verify=False`` skips it — scrub does its own pass); format-1
    images predate the digest and load with verification skipped.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            image = json.load(handle)
    except UnicodeDecodeError as exc:
        raise StorageError(
            f"database image {path!r} holds undecodable bytes at "
            f"offset {exc.start}: {exc.reason}",
            path=path, offset=exc.start, kind="bit_rot",
        ) from exc
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(
            f"cannot read database image {path!r}: {exc}",
            path=path, kind="malformed",
        ) from exc
    if not isinstance(image, dict) \
            or image.get("format") not in (1, IMAGE_FORMAT):
        raise StorageError(
            f"unsupported image format "
            f"{image.get('format') if isinstance(image, dict) else image!r}",
            path=path, kind="malformed",
        )
    if verify and image.get("format") == IMAGE_FORMAT:
        stored = image.get("digest")
        if not isinstance(stored, str):
            raise StorageError(
                f"image {path!r} is format {IMAGE_FORMAT} but carries "
                f"no digest", path=path, kind="malformed",
            )
        actual = image_digest(image)
        if actual != stored:
            raise StorageError(
                f"image {path!r} failed its whole-file digest check "
                f"(stored {stored[:12]}…, actual {actual[:12]}…): the "
                f"bytes under this image changed since it was written",
                path=path, kind="digest_mismatch",
            )
        _metric("storage", "images_verified")
    _require_keys(image, ("tables", "indexes"), "image")
    return image


def restore_image(image: dict[str, Any],
                  database: Database | None = None) -> Database:
    """Rebuild a database from an already-read image document."""
    database = database or Database()
    for table_spec in image["tables"]:
        _require_keys(table_spec, _TABLE_KEYS, "table spec")
        columns = []
        for column_spec in table_spec["columns"]:
            _require_keys(column_spec, _COLUMN_KEYS,
                          f"column spec of table {table_spec['name']!r}")
            columns.append(Column(
                column_spec["name"],
                database.catalog.resolve_type(column_spec["type"]),
                not_null=column_spec["not_null"],
                default=_decode_value(column_spec["default"], database),
            ))
        schema = TableSchema(
            table_spec["name"], columns,
            table_spec["primary_key"], tuple(table_spec["unique"]),
        )
        # Format-1 images predate per-table layouts; fall back to the
        # restoring database's default.
        table = database.create_table(
            schema, layout=table_spec.get("layout")
        )
        for encoded_row in table_spec["rows"]:
            table.insert([
                _decode_value(value, database) for value in encoded_row
            ])

    for index_spec in image["indexes"]:
        _require_keys(index_spec, _INDEX_KEYS, "index spec")
        statement = ast.CreateIndex(
            index_spec["name"], index_spec["table"], index_spec["column"],
            index_spec["using"], dict(index_spec["parameters"]),
        )
        database._dispatch(statement, ())
    return database


def load_database(path: str, database: Database | None = None) -> Database:
    """Rebuild a database from an image.

    Pass a *database* that already has the needed UDTs and UDFs
    registered; a fresh one is created otherwise (then only built-in
    column types can be restored).
    """
    return restore_image(read_image(path), database)


def list_sealed_segments(wal_path: str) -> list[tuple[int, str]]:
    """Sealed ``<wal>.NNNNNN`` segment files next to a WAL,
    ``(generation, path)`` in ascending generation order."""
    directory, base = os.path.split(wal_path)
    directory = directory or "."
    segments: list[tuple[int, str]] = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return []
    for entry in entries:
        if not entry.startswith(base + "."):
            continue
        match = _SEGMENT_SUFFIX.search(entry)
        if match and entry == f"{base}.{match.group(1)}":
            segments.append((int(match.group(1)),
                             os.path.join(directory, entry)))
    segments.sort()
    return segments


def _header_record(generation: int, *, checksums: bool = True,
                   epoch: int | None = None) -> str:
    if not checksums:
        record = {"$wal": 1, "generation": generation}
        if epoch is not None:
            record["epoch"] = epoch
        return json.dumps(record) + "\n"
    if epoch is None:
        body = json.dumps({"$wal": WAL_FORMAT, "generation": generation})
    else:
        body = json.dumps({"$wal": WAL_EPOCH_FORMAT,
                           "generation": generation, "epoch": epoch})
    return checksum_line(body) + "\n"


def _read_header(path: str) -> dict | None:
    """The first WAL header record of *path*, or ``None`` when the file
    has no trustworthy header (missing, garbled, or failing its CRC)."""
    try:
        with open(path, "rb") as handle:
            for raw in handle:
                try:
                    line = raw.decode("utf-8").strip()
                except UnicodeDecodeError:
                    return None
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    return None
                if isinstance(record, dict) and "$wal" in record:
                    if not record_checksum_ok(record):
                        return None    # bit-rotted header: don't trust it
                    return record
                return None
    except OSError:
        return None
    return None


def segment_generation(path: str) -> int | None:
    """The generation stamped in a WAL file's header line, or ``None``."""
    header = _read_header(path)
    if header is None:
        return None
    try:
        return int(header.get("generation", 0))
    except (ValueError, TypeError):
        return None


def segment_epoch(path: str) -> int | None:
    """The replication epoch stamped in a WAL file's header, or ``None``.

    Version-1/2 headers never carried one; for them (and for damaged
    headers) the answer is honestly ``None`` — the segment predates
    epoch fencing and carries no leadership claim.
    """
    header = _read_header(path)
    if header is None or "epoch" not in header:
        return None
    try:
        return int(header["epoch"])
    except (ValueError, TypeError):
        return None


def _line_offset(lines: Sequence[str], index: int) -> int:
    """Byte offset where line *index* starts (computed only on error)."""
    return sum(len(line.encode("utf-8")) for line in lines[:index])


def read_wal_records(path: str, *,
                     allow_torn_tail: bool = True,
                     verify: bool = True) -> tuple[list[dict], bool]:
    """Parse one WAL file into records (headers dropped).

    Returns ``(records, torn_tail)``.  Three kinds of damage are told
    apart, each raising :class:`StorageError` with structured context
    (``path`` / ``record_index`` / ``offset`` / ``kind``):

    - an unparseable **final** line is a crashed append
      (``torn_tail``) — dropped when ``allow_torn_tail`` is true;
    - an unparseable line **followed by valid lines** cannot be a
      crashed append (``corrupt_middle``): a hole in the middle of the
      history is corruption, never replayed around;
    - a line that parses but fails its CRC32 is **bit rot**
      (``bit_rot``) — the silent killer this check exists for, since
      a flipped bit that still parses would otherwise be applied,
      shipped to followers, and served.

    Legacy records without a ``crc`` field pass unverified (the
    pre-checksum format stays readable); ``verify=False`` skips CRC
    recomputation entirely.

    Bytes that do not decode as UTF-8 are also ``bit_rot``: every
    writer emits ASCII-only JSON, so an invalid sequence can only be
    media damage — never a crash artifact — and is refused even for
    the active segment.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        payload = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise StorageError(
            f"WAL file {path!r} holds undecodable bytes at offset "
            f"{exc.start}: {exc.reason}",
            path=path, offset=exc.start, kind="bit_rot",
        ) from exc
    return parse_wal_payload(payload, path=path,
                             allow_torn_tail=allow_torn_tail, verify=verify)


def parse_wal_payload(payload: str, *, path: str = "<payload>",
                      allow_torn_tail: bool = True,
                      verify: bool = True) -> tuple[list[dict], bool]:
    """:func:`read_wal_records` over an in-memory payload.

    Replication verifies shipments through this before a byte touches
    the follower's disk; *path* only labels the errors."""
    lines = payload.splitlines(keepends=True)
    records: list[dict] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if any(later.strip() for later in lines[index + 1:]):
                raise StorageError(
                    f"torn WAL record at {path}:{index + 1} is followed "
                    f"by valid records; the log is corrupt, refusing to "
                    f"replay around the hole",
                    path=path, record_index=index + 1,
                    offset=_line_offset(lines, index),
                    kind="corrupt_middle",
                ) from exc
            if not allow_torn_tail:
                raise StorageError(
                    f"torn WAL record at {path}:{index + 1}",
                    path=path, record_index=index + 1,
                    offset=_line_offset(lines, index),
                    kind="torn_tail",
                ) from exc
            return records, True
        is_header = isinstance(record, dict) and "$wal" in record
        if not is_header and (not isinstance(record, dict)
                              or "sql" not in record
                              or "params" not in record):
            raise StorageError(
                f"malformed WAL record at {path}:{index + 1}: {record!r}",
                path=path, record_index=index + 1,
                offset=_line_offset(lines, index),
                kind="malformed",
            )
        if verify and not line_checksum_ok(stripped, record):
            raise StorageError(
                f"WAL record at {path}:{index + 1} fails its CRC32 "
                f"check: the bytes rotted since they were written "
                f"(the record still parses, so without the checksum "
                f"it would have replayed silently)",
                path=path, record_index=index + 1,
                offset=_line_offset(lines, index),
                kind="bit_rot",
            )
        if is_header:
            continue
        records.append(record)
    return records, False


def apply_wal_records(records: Sequence[dict], target: Database) -> int:
    """Re-execute parsed WAL records with the target's WAL sink muted."""
    applied = 0
    with target.suppress_wal():
        for record in records:
            parameters = [_decode_value(value, target)
                          for value in record["params"]]
            target.execute(record["sql"], parameters)
            applied += 1
    return applied


class WriteAheadLog:
    """A JSON-lines statement log with group commit and rotation.

    Attach with :meth:`attach`; every mutating statement outside a
    transaction (and every committed transaction's statements) is
    appended with its parameters.  Appends go through one persistent
    handle; ``flush_every_n`` batches them into group commits (an
    explicit :meth:`flush` or :meth:`close` always drains, ``fsync=True``
    additionally forces the records to stable storage on each flush).
    ``reopen_each=True`` restores the legacy open-append-close behaviour
    per statement — kept only as the ablation baseline for
    ``benchmarks/bench_ablation_recovery.py``.

    Every record (and the header) carries a CRC32 over its own
    serialization, verified on replay; ``checksums=False`` writes the
    legacy version-1 format — kept as the A13 ablation baseline
    (``benchmarks/bench_ablation_integrity.py``) and for
    byte-compatibility tests against pre-checksum files.

    :meth:`replay` re-executes the log against a database restored from
    the last checkpoint image, with the target's WAL sink suppressed so
    replay never re-appends to the log it is reading.
    """

    def __init__(self, path: str, database: Database, *,
                 flush_every_n: int = 1, fsync: bool = False,
                 reopen_each: bool = False, checksums: bool = True,
                 epoch: int | None = None) -> None:
        self.path = path
        self._database = database
        self.flush_every_n = max(1, int(flush_every_n))
        self.fsync = fsync
        self._reopen_each = reopen_each
        self.checksums = checksums
        self.epoch = epoch
        self._handle = None
        self._pending = 0
        self._generation = self._initial_generation()

    # -- lifecycle -------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The generation of the active (appendable) segment."""
        return self._generation

    def _initial_generation(self) -> int:
        if os.path.exists(self.path):
            header = segment_generation(self.path)
            if header is not None:
                return header
        sealed = self.sealed_segments()
        if sealed:
            return sealed[-1][0] + 1
        return 0

    def attach(self) -> None:
        self._database.attach_wal(self.append)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def flush(self) -> None:
        """Drain buffered records to the OS (and to disk with ``fsync``)."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            _metric("storage", "wal_flushes")
        self._pending = 0

    def close(self) -> None:
        """Flush and release the persistent handle."""
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    # -- appending -------------------------------------------------------------

    def _file_is_blank(self) -> bool:
        return (not os.path.exists(self.path)
                or os.path.getsize(self.path) == 0)

    def append(self, sql: str, parameters: Sequence[Any]) -> None:
        """Log one mutating statement (the attached sink entry point)."""
        record = {
            "sql": sql,
            "params": [_encode_value(value, self._database)
                       for value in parameters],
        }
        body = json.dumps(record)
        if self.checksums:
            body = checksum_line(body)
        line = body + "\n"
        _metric("storage", "wal_appends")
        if self._reopen_each:
            blank = self._file_is_blank()
            with open(self.path, "a", encoding="utf-8") as handle:
                if blank:
                    handle.write(_header_record(
                        self._generation, checksums=self.checksums,
                        epoch=self.epoch))
                handle.write(line)
            return
        if self._handle is None:
            blank = self._file_is_blank()
            self._handle = open(self.path, "a", encoding="utf-8")
            if blank:
                self._handle.write(_header_record(
                    self._generation, checksums=self.checksums,
                    epoch=self.epoch))
        self._handle.write(line)
        self._pending += 1
        if self._pending >= self.flush_every_n:
            self.flush()

    # -- segments ---------------------------------------------------------------

    def sealed_segments(self) -> list[tuple[int, str]]:
        """Sealed segment files next to the log, ``(generation, path)``
        in ascending generation order."""
        return list_sealed_segments(self.path)

    def rotate(self) -> str | None:
        """Seal the active segment and start a fresh one.

        Returns the sealed segment's path, or ``None`` when the active
        log holds no records (nothing to seal).  Statements appended
        after rotation land in the new segment, so a checkpoint image
        written *after* :meth:`rotate` can never swallow them.
        """
        self.close()
        if self._file_is_blank():
            open(self.path, "a", encoding="utf-8").close()
            return None
        if not read_wal_records(self.path)[0]:
            # Header-only (or blank-line) file: nothing to seal — but
            # truncating must restamp the header, or a reopened log
            # would fall back to generation 0 and recovery would
            # skew-skip everything appended since the last checkpoint.
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(_header_record(
                    self._generation, checksums=self.checksums,
                    epoch=self.epoch))
            return None
        sealed_path = f"{self.path}.{self._generation:06d}"
        os.replace(self.path, sealed_path)
        if self.fsync:
            # The seal rename must survive a crash just like the
            # records behind it: flush the directory entry too.
            fsync_directory(sealed_path)
        self._generation += 1
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(_header_record(
                self._generation, checksums=self.checksums,
                epoch=self.epoch))
        _metric("storage", "wal_rotations")
        return sealed_path

    def set_epoch(self, epoch: int | None) -> None:
        """Adopt a replication epoch and restamp the active header.

        Called when a node wins (or loses) a lease mid-segment: future
        headers carry *epoch*, and the active file's existing header is
        rewritten in place so the segment a new primary is already
        appending to names the epoch it was written under.  Damaged or
        undecodable active files are left alone — recovery owns those.
        """
        self.epoch = epoch
        if self._file_is_blank():
            return
        self.close()
        try:
            with open(self.path, "rb") as handle:
                payload = handle.read().decode("utf-8")
        except (OSError, UnicodeDecodeError):
            return
        lines = payload.splitlines(keepends=True)
        body = []
        for line in lines:
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, ValueError):
                body.append(line)
                continue
            if not (isinstance(record, dict) and "$wal" in record):
                body.append(line)
        header = _header_record(self._generation, checksums=self.checksums,
                                epoch=self.epoch)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(header)
            handle.writelines(body)
        if self.fsync:
            fsync_directory(self.path)

    def purge(self, before_generation: int | None = None) -> list[str]:
        """Delete sealed segments older than *before_generation*
        (default: everything the current image generation covers)."""
        horizon = (self._generation if before_generation is None
                   else before_generation)
        removed = []
        for generation, path in self.sealed_segments():
            if generation < horizon:
                os.remove(path)
                removed.append(path)
        return removed

    # -- replay ------------------------------------------------------------------

    def replay(self, target: Database | None = None, *,
               suppress: bool = True) -> int:
        """Re-execute logged statements; returns how many were applied.

        The target's WAL sink is suppressed for the duration, so replay
        is idempotent with respect to the log file itself.  With
        ``suppress=False`` the call refuses to proceed when the target's
        sink is this log (or another log over the same file): replaying
        into your own sink doubles the log on every recovery.
        """
        target = target or self._database
        if not suppress:
            sink = target.wal_sink
            owner = getattr(sink, "__self__", None)
            if isinstance(owner, WriteAheadLog) and \
                    os.path.abspath(owner.path) == os.path.abspath(self.path):
                raise StorageError(
                    f"refusing to replay {self.path!r} into a database "
                    f"whose WAL sink appends to the same file; replay "
                    f"with suppress=True (the default)"
                )
        self.flush()
        if not os.path.exists(self.path):
            return 0
        records, _ = read_wal_records(self.path, allow_torn_tail=True)
        if suppress:
            return apply_wal_records(records, target)
        applied = 0
        for record in records:
            parameters = [_decode_value(value, target)
                          for value in record["params"]]
            target.execute(record["sql"], parameters)
            applied += 1
        return applied

    def truncate(self) -> None:
        """Reset the active segment in place (generation unchanged)."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass


def checkpoint(database: Database, image_path: str,
               wal: WriteAheadLog | None = None) -> None:
    """Write an image and (if given) rotate-then-purge the WAL.

    The order is crash-safe: (1) the active segment is sealed under its
    generation, so statements logged while the image is being written go
    to the *next* segment; (2) the image records the new generation;
    (3) only segments the image covers are purged.  A crash after any
    single step leaves a state :func:`repro.db.recovery.recover` restores
    exactly — nothing is blindly truncated.
    """
    if wal is None:
        save_database(database, image_path)
        return
    wal.rotate()
    save_database(database, image_path, wal_generation=wal.generation)
    wal.purge(before_generation=wal.generation)
