"""The database facade: parse → plan → execute, plus transactions and WAL.

A :class:`Database` is a self-contained, extensible relational engine:

>>> db = Database()
>>> db.execute("CREATE TABLE genes (id INTEGER PRIMARY KEY, name TEXT)")
>>> db.execute("INSERT INTO genes VALUES (1, 'lacZ')")
1
>>> db.execute("SELECT name FROM genes WHERE id = 1").scalar()
'lacZ'

Extensibility (sections 6.2–6.3): :meth:`Database.register_type` adds an
opaque UDT, :meth:`Database.register_function` a UDF usable anywhere an
expression may occur, ``CREATE INDEX … USING kmer`` a genomic index.
The adapter (:mod:`repro.adapter`) uses exactly these three hooks to plug
the whole Genomics Algebra in.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.db.catalog import Catalog, SqlAggregate
from repro.db.columnar import ColumnarRuntime
from repro.db.index import INDEX_KINDS
from repro.db.schema import Column, TableSchema
from repro.db.sql import ast
from repro.db.sql.expressions import Evaluator, Frame, RowContext
from repro.db.sql.functions import register_builtin_functions
from repro.db.sql.optimizer import Planner
from repro.db.sql.parser import parse
from repro.db.table import Table
from repro.db.values import NULL, OpaqueType
from repro.errors import (
    CatalogError,
    DatabaseError,
    SqlSyntaxError,
    TransactionError,
)
from repro.obs.trace import span as _span


class ResultSet:
    """The rows of a SELECT, with their output column names."""

    def __init__(self, columns: Sequence[str], rows: Sequence[tuple]) -> None:
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"

    def first(self) -> tuple | None:
        """The first row, or ``None`` when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise DatabaseError(
                f"scalar() needs exactly one row and column, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        """All values of one output column."""
        try:
            position = self.columns.index(name)
        except ValueError:
            raise DatabaseError(f"no output column {name!r}") from None
        return [row[position] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, max_rows: int = 20) -> str:
        """A fixed-width text table (for examples and the BiQL shell)."""
        def fmt(value: Any) -> str:
            if value is NULL:
                return "NULL"
            text = str(value)
            return text if len(text) <= 32 else text[:29] + "..."

        shown = self.rows[:max_rows]
        cells = [[fmt(v) for v in row] for row in shown]
        widths = [
            max(len(self.columns[i]),
                *(len(row[i]) for row in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = " | ".join(
            name.ljust(width) for name, width in zip(self.columns, widths)
        )
        rule = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(cell.ljust(width)
                       for cell, width in zip(row, widths))
            for row in cells
        ]
        lines = [header, rule, *body]
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


class Database:
    """An extensible relational database.

    ``layout`` picks the heap of newly created tables: ``"row"`` (the
    classic row-list, the differential oracle) or ``"column"`` (sealed
    column pages with zone maps and an LRU page cache).  A finite
    ``memory_budget`` (bytes) bounds resident column pages *and* sets
    the spill thresholds of the streaming operators, so queries over
    data larger than the budget still complete; ``None`` disables
    spilling.  ``page_rows`` is the row-group height of columnar
    tables.
    """

    def __init__(self, optimize: bool = True, layout: str = "row",
                 memory_budget: "int | None" = None,
                 page_rows: int = 256) -> None:
        if layout not in ("row", "column"):
            raise DatabaseError(f"unknown table layout {layout!r}")
        self.catalog = Catalog()
        self.optimize = optimize
        self.layout = layout
        self.columnar = ColumnarRuntime(self.catalog, memory_budget,
                                        page_rows)
        self._planner = Planner(self, optimize=optimize)
        self._evaluator = Evaluator(self)
        self._index_owner: dict[str, str] = {}  # index name -> table name
        self._index_definitions: dict[str, ast.CreateIndex] = {}
        self._snapshot: dict | None = None
        self._wal: "Callable[[str, Sequence[Any]], None] | None" = None
        self._transaction_log: list[tuple[str, Sequence[Any]]] = []
        register_builtin_functions(self.catalog)

    # -- extensibility hooks ----------------------------------------------------

    def register_type(self, opaque: OpaqueType) -> None:
        """Register an opaque UDT (section 6.2)."""
        self.catalog.register_type(opaque)

    def register_function(
        self,
        name: str,
        function: Callable[..., Any],
        selectivity: float | None = None,
        description: str = "",
        replace: bool = False,
        kernel: str | None = None,
    ) -> None:
        """Register a scalar UDF usable in any SQL expression (section 6.3)."""
        self.catalog.register_function(
            name, function, selectivity, description, replace, kernel
        )

    def register_aggregate(self, aggregate: SqlAggregate,
                           replace: bool = False) -> None:
        self.catalog.register_aggregate(aggregate, replace)

    def attach_wal(self, writer: Callable[[str, Sequence[Any]], None]) -> None:
        """Attach a write-ahead log sink (called per mutating statement)."""
        self._wal = writer

    def detach_wal(self) -> None:
        """Remove the write-ahead log sink, if any."""
        self._wal = None

    @property
    def wal_sink(self) -> "Callable[[str, Sequence[Any]], None] | None":
        """The currently attached WAL sink (``None`` when detached)."""
        return self._wal

    @contextmanager
    def suppress_wal(self) -> Iterator[None]:
        """Mute the WAL sink for a block — used by WAL replay so recovery
        never re-appends the statements it is reading back to their own
        log."""
        saved, self._wal = self._wal, None
        try:
            yield
        finally:
            self._wal = saved

    # -- transactions --------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._snapshot is not None

    def begin(self) -> None:
        if self.in_transaction:
            raise TransactionError("a transaction is already active")
        self._snapshot = {
            name: self.catalog.table(name).snapshot()
            for name in self.catalog.table_names
        }
        self._transaction_log = []

    def commit(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no active transaction")
        if self._wal is not None:
            for sql, parameters in self._transaction_log:
                self._wal(sql, parameters)
        self._snapshot = None
        self._transaction_log = []

    def rollback(self) -> None:
        if not self.in_transaction:
            raise TransactionError("no active transaction")
        assert self._snapshot is not None
        for name, snapshot in self._snapshot.items():
            if self.catalog.has_table(name):
                self.catalog.table(name).restore(snapshot)
        self._snapshot = None
        self._transaction_log = []

    # -- execution -------------------------------------------------------------------

    def execute(self, sql: str, parameters: Sequence[Any] = ()) -> Any:
        """Run one SQL statement.

        Returns a :class:`ResultSet` for SELECT, the number of affected
        rows for DML, and ``None`` for DDL.
        """
        with _span("sql.parse"):
            statement = parse(sql)
        mutating = not isinstance(statement, ast.Select)
        result = self._dispatch(statement, parameters)
        if mutating:
            self._log_mutation(sql, parameters)
        return result

    def executemany(self, sql: str,
                    parameter_rows: Sequence[Sequence[Any]]) -> int:
        """Run one DML statement once per parameter row; returns total."""
        total = 0
        for parameters in parameter_rows:
            outcome = self.execute(sql, parameters)
            total += outcome if isinstance(outcome, int) else 0
        return total

    def query(self, sql: str, parameters: Sequence[Any] = ()) -> ResultSet:
        """Run a statement that must be a SELECT."""
        result = self.execute(sql, parameters)
        if not isinstance(result, ResultSet):
            raise DatabaseError("query() requires a SELECT statement")
        return result

    def explain(self, sql: str) -> str:
        """The optimizer's plan for a SELECT, as an indented tree."""
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise DatabaseError("EXPLAIN supports only SELECT")
        return self._planner.plan_select(statement).explain()

    def _log_mutation(self, sql: str, parameters: Sequence[Any]) -> None:
        if self.in_transaction:
            self._transaction_log.append((sql, tuple(parameters)))
        elif self._wal is not None:
            self._wal(sql, tuple(parameters))

    def _dispatch(self, statement: ast.Statement,
                  parameters: Sequence[Any]) -> Any:
        if isinstance(statement, ast.Select):
            return self._run_select(statement, parameters)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._create_index(statement)
        if isinstance(statement, ast.DropTable):
            return self._drop_table(statement)
        if isinstance(statement, ast.DropIndex):
            return self._drop_index(statement)
        if isinstance(statement, ast.Insert):
            return self._insert(statement, parameters)
        if isinstance(statement, ast.Update):
            return self._update(statement, parameters)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, parameters)
        if isinstance(statement, ast.Analyze):
            return self.analyze(statement.table)
        raise DatabaseError(
            f"unsupported statement {type(statement).__name__}"
        )

    def analyze(self, table_name: str) -> None:
        """Collect planner statistics for one table (``ANALYZE t``)."""
        self.catalog.table(table_name).collect_statistics()
        return None

    # -- SELECT ----------------------------------------------------------------------

    def _run_select(self, select: ast.Select,
                    parameters: Sequence[Any]) -> ResultSet:
        with _span("sql.plan"):
            plan = self._planner.plan_select(select)
        with _span("sql.execute") as spn:
            rows = list(plan.execute(parameters, None))
            spn.annotate(rows=len(rows))
        columns = [column for _, column in plan.frame.slots]
        return ResultSet(columns, rows)

    def run_subquery(
        self,
        select: ast.Select,
        outer: "RowContext | None",
        limit: int | None = None,
    ) -> list[tuple]:
        """Execute a (possibly correlated) subquery; used by the evaluator."""
        plan = self._planner.plan_select(select)
        parameters = outer.parameters if outer is not None else ()
        rows: list[tuple] = []
        for values in plan.execute(parameters, outer):
            rows.append(values)
            if limit is not None and len(rows) >= limit:
                break
        return rows

    # -- DDL ---------------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> None:
        if statement.if_not_exists and self.catalog.has_table(statement.name):
            return None
        columns: list[Column] = []
        primary_key: str | None = None
        unique: list[str] = []
        for definition in statement.columns:
            sql_type = self.catalog.resolve_type(definition.type_name)
            default = (definition.default.value
                       if definition.default is not None else NULL)
            columns.append(Column(
                definition.name, sql_type,
                not_null=definition.not_null, default=default,
            ))
            if definition.primary_key:
                if primary_key is not None:
                    raise CatalogError(
                        f"table {statement.name!r} has two primary keys"
                    )
                primary_key = definition.name
            if definition.unique:
                unique.append(definition.name)
        schema = TableSchema(statement.name, columns, primary_key,
                             tuple(unique))
        self.create_table(schema)
        return None

    def create_table(self, schema: TableSchema, layout: str | None = None):
        """Create a table with the database's (or an explicit) layout."""
        table = Table(schema, layout=layout or self.layout,
                      runtime=self.columnar)
        return self.catalog.create_table(schema, table)

    def _create_index(self, statement: ast.CreateIndex) -> None:
        name = statement.name.lower()
        if statement.if_not_exists and name in self._index_owner:
            return None
        if name in self._index_owner:
            raise CatalogError(f"index {name!r} already exists")
        table = self.catalog.table(statement.table)
        kind = statement.using.lower()
        try:
            index_class = INDEX_KINDS[kind]
        except KeyError:
            raise CatalogError(
                f"unknown index kind {kind!r}; expected one of "
                f"{sorted(INDEX_KINDS)}"
            ) from None
        keyword_arguments: dict[str, int] = {}
        if kind == "kmer" and "k" in statement.parameters:
            keyword_arguments["k"] = statement.parameters["k"]
        if kind == "btree" and "order" in statement.parameters:
            keyword_arguments["order"] = statement.parameters["order"]
        index = index_class(name, statement.table, statement.column,
                            **keyword_arguments)
        table.attach_index(index)
        self._index_owner[name] = table.name
        self._index_definitions[name] = statement
        return None

    def _drop_table(self, statement: ast.DropTable) -> None:
        name = statement.name.lower()
        if statement.if_exists and not self.catalog.has_table(name):
            return None
        self.catalog.drop_table(name)
        orphaned = [index for index, owner in self._index_owner.items()
                    if owner == name]
        for index in orphaned:
            del self._index_owner[index]
            self._index_definitions.pop(index, None)
        return None

    def _drop_index(self, statement: ast.DropIndex) -> None:
        name = statement.name.lower()
        if statement.if_exists and name not in self._index_owner:
            return None
        if name not in self._index_owner:
            raise CatalogError(f"no index named {name!r}")
        table = self.catalog.table(self._index_owner[name])
        table.detach_index(name)
        del self._index_owner[name]
        self._index_definitions.pop(name, None)
        return None

    @property
    def index_definitions(self) -> tuple[ast.CreateIndex, ...]:
        """The CREATE INDEX statements currently in force (for storage)."""
        return tuple(self._index_definitions.values())

    # -- DML -------------------------------------------------------------------------------

    def _empty_context(self, parameters: Sequence[Any]) -> RowContext:
        return RowContext(Frame(()), (), parameters, None)

    def _insert(self, statement: ast.Insert,
                parameters: Sequence[Any]) -> int:
        table = self.catalog.table(statement.table)
        context = self._empty_context(parameters)
        inserted = 0
        for value_row in statement.rows:
            values = [self._evaluator.evaluate(expression, context)
                      for expression in value_row]
            if statement.columns is not None:
                if len(values) != len(statement.columns):
                    raise SqlSyntaxError(
                        "INSERT column list and VALUES row differ in length"
                    )
                named = dict(zip(
                    (c.lower() for c in statement.columns), values
                ))
                row = table.schema.complete_row(named)
            else:
                row = values
            table.insert(row)
            inserted += 1
        return inserted

    def _matching_row_ids(self, table, where: ast.Expression | None,
                          parameters: Sequence[Any]) -> list[int]:
        frame = Frame.for_table(table.name, table.schema.column_names)
        matches: list[int] = []
        for row_id, row in list(table.rows()):
            if where is None:
                matches.append(row_id)
                continue
            context = RowContext(frame, tuple(row), parameters, None)
            if self._evaluator.evaluate_predicate(where, context):
                matches.append(row_id)
        return matches

    def _update(self, statement: ast.Update,
                parameters: Sequence[Any]) -> int:
        table = self.catalog.table(statement.table)
        frame = Frame.for_table(table.name, table.schema.column_names)
        assignments = [
            (table.schema.position(column), expression)
            for column, expression in statement.assignments
        ]
        updated = 0
        for row_id in self._matching_row_ids(table, statement.where,
                                             parameters):
            old_row = table.row(row_id)
            context = RowContext(frame, tuple(old_row), parameters, None)
            new_row = list(old_row)
            for position, expression in assignments:
                new_row[position] = self._evaluator.evaluate(
                    expression, context
                )
            table.update(row_id, new_row)
            updated += 1
        return updated

    def _delete(self, statement: ast.Delete,
                parameters: Sequence[Any]) -> int:
        table = self.catalog.table(statement.table)
        row_ids = self._matching_row_ids(table, statement.where, parameters)
        for row_id in row_ids:
            table.delete(row_id)
        return len(row_ids)
