"""Integrity scrub: walk images and WAL segments, verify every checksum.

Recovery (:mod:`repro.db.recovery`) verifies files when it *reads* them
— but a warehouse that checkpoints regularly may not read a sealed
segment for days, and bit rot found at recovery time is found at the
worst possible moment.  The scrubber is the proactive half of the
integrity story: walk everything on disk, recompute every CRC32 and
image digest, and report damage **localized** (file, record index, byte
offset) while the primary is still healthy enough to repair from.

Unlike :func:`~repro.db.storage.read_wal_records`, which aborts at the
first corrupt record (replaying around a hole would diverge), the
scrubber keeps scanning past damage so one pass maps *all* of it.

Verdicts, per file:

- ``ok``              — every record parsed and every checksum matched;
- ``legacy``          — a pre-checksum (version-1) file; nothing to
  verify, nothing wrong: old files never regress to "corrupt";
- ``torn_tail``       — unparseable final record.  On the **active**
  segment this is an ordinary crash artifact (recovery drops it) and
  does not damage the report; on a **sealed** segment or anywhere else
  it is damage;
- ``corrupt_middle``  — unparseable record followed by valid ones;
- ``bit_rot``         — a record that parses but fails its CRC32 (the
  corruption that would have been applied silently before checksums);
- ``digest_mismatch`` — an image whose whole-file digest changed;
- ``malformed``       — structurally wrong record or image;
- ``unreadable``      — the file cannot be opened.

``python -m repro scrub --image X --wal Y`` prints the report;
``--self-test`` runs the seeded corruption matrix below.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.db.storage import (
    IMAGE_FORMAT,
    line_checksum_ok,
    list_sealed_segments,
    read_image,
)
from repro.errors import StorageError
from repro.obs.metrics import count as _metric, observe as _observe
from repro.obs.trace import span as _span

OK = "ok"
LEGACY = "legacy"
TORN_TAIL = "torn_tail"
MALFORMED = "malformed"
CORRUPT_MIDDLE = "corrupt_middle"
BIT_ROT = "bit_rot"
DIGEST_MISMATCH = "digest_mismatch"
UNREADABLE = "unreadable"

#: Severity order: a file's verdict is the worst thing found in it.
_SEVERITY = (OK, LEGACY, TORN_TAIL, MALFORMED, CORRUPT_MIDDLE, BIT_ROT,
             DIGEST_MISMATCH, UNREADABLE)
_RANK = {verdict: rank for rank, verdict in enumerate(_SEVERITY)}


def _worse(current: str, candidate: str) -> str:
    return candidate if _RANK[candidate] > _RANK[current] else current


@dataclass
class FileVerdict:
    """One scanned file: what it is, what was found, and where."""

    path: str
    kind: str                     # "image" | "wal_active" | "wal_sealed"
    verdict: str = OK
    records_checked: int = 0
    records_legacy: int = 0
    bad_offsets: list = field(default_factory=list)  # (record_index, offset)
    detail: str = ""

    @property
    def damaged(self) -> bool:
        """True when this verdict means data loss or rot — a torn tail
        on the *active* segment is a crash artifact, not damage."""
        if self.verdict == TORN_TAIL:
            return self.kind != "wal_active"
        return self.verdict not in (OK, LEGACY)

    def line(self) -> str:
        status = "BAD " if self.damaged else "ok  "
        where = ""
        if self.bad_offsets:
            spots = ", ".join(f"#{index}@{offset}B"
                              for index, offset in self.bad_offsets[:3])
            if len(self.bad_offsets) > 3:
                spots += f", … ({len(self.bad_offsets)} total)"
            where = f"  [{spots}]"
        name = os.path.basename(self.path)
        return (f"  {status} {name:<24} {self.kind:<10} "
                f"{self.verdict:<15} {self.records_checked:>5} checked "
                f"{self.records_legacy:>3} legacy{where}  {self.detail}")


@dataclass
class ScrubReport:
    """Everything one scrub pass found."""

    verdicts: list = field(default_factory=list)
    elapsed_ms: float = 0.0

    @property
    def files_scanned(self) -> int:
        return len(self.verdicts)

    @property
    def records_verified(self) -> int:
        return sum(verdict.records_checked for verdict in self.verdicts)

    @property
    def damaged(self) -> "list[FileVerdict]":
        return [verdict for verdict in self.verdicts if verdict.damaged]

    @property
    def ok(self) -> bool:
        return not self.damaged

    def summary(self) -> str:
        state = ("clean" if self.ok
                 else f"{len(self.damaged)} damaged file(s)")
        return (f"{self.files_scanned} files, "
                f"{self.records_verified} records verified, {state}, "
                f"{self.elapsed_ms:.1f} ms")


def scrub_wal_file(path: str, *, active: bool = False) -> FileVerdict:
    """Scan one WAL file end to end, localizing every bad record.

    Keeps going past damage (unlike replay) so a single pass reports
    all of it: each entry in ``bad_offsets`` is ``(record_index,
    byte_offset)`` of a line that failed to parse or failed its CRC.
    """
    kind = "wal_active" if active else "wal_sealed"
    result = FileVerdict(path, kind)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        result.verdict = UNREADABLE
        result.detail = str(exc)
        return result
    # Work on raw bytes so byte offsets stay exact and an undecodable
    # line is localized instead of aborting the whole scan.
    chunks = data.split(b"\n")
    lines = [chunk + b"\n" for chunk in chunks[:-1]]
    if chunks[-1]:
        lines.append(chunks[-1])
    nonempty = [index for index, line in enumerate(lines) if line.strip()]
    last = nonempty[-1] if nonempty else -1
    offset = 0
    for index, line in enumerate(lines):
        if not line.strip():
            offset += len(line)
            continue
        try:
            stripped = line.decode("utf-8").strip()
        except UnicodeDecodeError:
            # Writers emit ASCII-only JSON, so bytes that fail to
            # decode are media damage — bit rot even at the tail,
            # never a torn-tail crash artifact (replay agrees: it
            # refuses undecodable bytes in the active segment too).
            result.bad_offsets.append((index + 1, offset))
            result.verdict = _worse(result.verdict, BIT_ROT)
            offset += len(line)
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            found = TORN_TAIL if index == last else CORRUPT_MIDDLE
            result.bad_offsets.append((index + 1, offset))
            result.verdict = _worse(result.verdict, found)
        else:
            header = isinstance(record, dict) and "$wal" in record
            if not header and (not isinstance(record, dict)
                               or "sql" not in record
                               or "params" not in record):
                result.bad_offsets.append((index + 1, offset))
                result.verdict = _worse(result.verdict, MALFORMED)
            elif not isinstance(record.get("crc"), int):
                result.records_legacy += 1
            elif not line_checksum_ok(stripped, record):
                result.records_checked += 1
                result.bad_offsets.append((index + 1, offset))
                result.verdict = _worse(result.verdict, BIT_ROT)
            else:
                result.records_checked += 1
        offset += len(line)
    if result.verdict == OK and result.records_checked == 0 \
            and result.records_legacy > 0:
        result.verdict = LEGACY
    if result.verdict == TORN_TAIL and active:
        result.detail = "crash artifact; recovery drops it"
    return result


def scrub_image(path: str) -> FileVerdict:
    """Verify one image's whole-file digest (format 2) or report it as
    ``legacy`` (format 1, pre-digest)."""
    result = FileVerdict(path, "image")
    try:
        image = read_image(path)
    except StorageError as exc:
        result.verdict = (exc.kind if exc.kind in _RANK else MALFORMED)
        result.detail = str(exc).splitlines()[0][:100]
        return result
    except OSError as exc:
        result.verdict = UNREADABLE
        result.detail = str(exc)
        return result
    if image.get("format") == IMAGE_FORMAT:
        result.records_checked = 1
        result.detail = f"digest {image.get('digest', '')[:12]}…"
    else:
        result.verdict = LEGACY
        result.records_legacy = 1
    return result


def scrub(image_path: "str | None" = None,
          wal_path: "str | None" = None) -> ScrubReport:
    """Walk an image plus a WAL's sealed segments and active file,
    verifying every checksum; returns the localized verdicts."""
    report = ScrubReport()
    started = time.perf_counter()
    with _span("storage.scrub") as spn:
        if image_path and os.path.exists(image_path):
            report.verdicts.append(scrub_image(image_path))
        if wal_path:
            for __, path in list_sealed_segments(wal_path):
                report.verdicts.append(scrub_wal_file(path, active=False))
            if os.path.exists(wal_path):
                report.verdicts.append(scrub_wal_file(wal_path,
                                                      active=True))
        report.elapsed_ms = (time.perf_counter() - started) * 1000.0
        _metric("scrub", "runs")
        _metric("scrub", "files_scanned", report.files_scanned)
        _metric("scrub", "records_verified", report.records_verified)
        _metric("scrub", "damaged_files", len(report.damaged))
        _observe("scrub", "scrub_ms", report.elapsed_ms)
        spn.annotate(files=report.files_scanned,
                     records=report.records_verified,
                     damaged=len(report.damaged))
    return report


# ---------------------------------------------------------------------------
# Seeded corruption matrix (``python -m repro scrub --self-test``)
# ---------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    name: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return f"  {status} {self.name:<28} {self.detail}"


def _build_checkpointed_state(workdir: str):
    """A genomic database with an image, two sealed segments, and an
    active segment — the full on-disk shape one scrub pass covers."""
    from repro.db.recovery import _apply, _genomic_database, \
        _seed_statements
    from repro.db.storage import WriteAheadLog, checkpoint

    image = os.path.join(workdir, "image.json")
    wal_path = os.path.join(workdir, "wal.jsonl")
    statements = _seed_statements(30)
    database = _genomic_database()
    log = WriteAheadLog(wal_path, database)
    log.attach()
    _apply(database, statements[:8])
    checkpoint(database, image, log)       # image covers the prefix
    _apply(database, statements[8:16])
    log.rotate()                           # sealed, not covered
    _apply(database, statements[16:24])
    log.rotate()                           # sealed, not covered
    _apply(database, statements[24:])      # active tail
    log.close()
    return image, wal_path


def _flip_byte(path: str, *, fraction: float = 0.5) -> int:
    """Flip one byte near *fraction* of the file, keeping it parseable
    JSON where possible (swap a letter, not a structural character);
    returns the flipped offset."""
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    start = int(len(data) * fraction)
    for offset in range(start, len(data)):
        if chr(data[offset]).isalnum():
            original = data[offset]
            flipped = original ^ 0x01
            if chr(flipped).isalnum() and flipped != original:
                data[offset] = flipped
                with open(path, "wb") as handle:
                    handle.write(data)
                return offset
    raise AssertionError(f"no flippable byte in {path}")


def _scenario_clean(workdir: str) -> ScenarioResult:
    image, wal_path = _build_checkpointed_state(workdir)
    report = scrub(image, wal_path)
    passed = (report.ok and not report.damaged
              and report.files_scanned == 4       # image + 2 sealed + active
              and report.records_verified > 0
              and all(not verdict.bad_offsets
                      for verdict in report.verdicts))
    return ScenarioResult("clean-state-no-false-positives", passed,
                          report.summary())


def _scenario_sealed_bit_rot(workdir: str) -> ScenarioResult:
    image, wal_path = _build_checkpointed_state(workdir)
    sealed = list_sealed_segments(wal_path)[0][1]
    flipped_at = _flip_byte(sealed, fraction=0.6)
    report = scrub(image, wal_path)
    damaged = report.damaged
    passed = (len(damaged) == 1
              and damaged[0].path == sealed
              and damaged[0].verdict in (BIT_ROT, TORN_TAIL,
                                         CORRUPT_MIDDLE, MALFORMED)
              and len(damaged[0].bad_offsets) == 1
              and damaged[0].bad_offsets[0][1] <= flipped_at)
    index, offset = damaged[0].bad_offsets[0] if damaged \
        and damaged[0].bad_offsets else (0, 0)
    return ScenarioResult(
        "sealed-segment-bit-rot", passed,
        f"flip@{flipped_at}B -> {damaged[0].verdict if damaged else '?'} "
        f"record #{index} from {offset}B")


def _scenario_image_rot(workdir: str) -> ScenarioResult:
    image, wal_path = _build_checkpointed_state(workdir)
    _flip_byte(image, fraction=0.5)
    report = scrub(image, wal_path)
    damaged = report.damaged
    passed = (len(damaged) == 1 and damaged[0].kind == "image"
              and damaged[0].verdict in (DIGEST_MISMATCH, MALFORMED))
    return ScenarioResult(
        "image-digest-mismatch", passed,
        damaged[0].verdict if damaged else "no damage found")


def _scenario_torn_active_tail(workdir: str) -> ScenarioResult:
    from repro.db.recovery import _cut_tail, recover, _genomic_database

    image, wal_path = _build_checkpointed_state(workdir)
    _cut_tail(wal_path)
    report = scrub(image, wal_path)
    active = next(verdict for verdict in report.verdicts
                  if verdict.kind == "wal_active")
    # A torn active tail is a crash artifact: scrub reports it but the
    # report stays clean, and recovery proceeds right through it.
    __, recovery = recover(image, wal_path,
                           database=_genomic_database())
    passed = (report.ok and active.verdict == TORN_TAIL
              and recovery.torn_tail_dropped)
    return ScenarioResult(
        "torn-active-tail-is-not-damage", passed,
        f"active verdict {active.verdict}, recovery dropped it")


def _scenario_legacy_file(workdir: str) -> ScenarioResult:
    from repro.db.recovery import _apply, _genomic_database, \
        _seed_statements
    from repro.db.storage import WriteAheadLog

    wal_path = os.path.join(workdir, "legacy.jsonl")
    database = _genomic_database()
    log = WriteAheadLog(wal_path, database, checksums=False)
    log.attach()
    _apply(database, _seed_statements(10))
    log.close()
    report = scrub(None, wal_path)
    active = report.verdicts[-1]
    passed = (report.ok and active.verdict == LEGACY
              and active.records_legacy > 0
              and active.records_checked == 0)
    return ScenarioResult(
        "legacy-file-skips-verification", passed,
        f"{active.records_legacy} unchecksummed records accepted")


_SCENARIOS = (
    ("clean-state-no-false-positives", _scenario_clean),
    ("sealed-segment-bit-rot", _scenario_sealed_bit_rot),
    ("image-digest-mismatch", _scenario_image_rot),
    ("torn-active-tail-is-not-damage", _scenario_torn_active_tail),
    ("legacy-file-skips-verification", _scenario_legacy_file),
)


def self_test(verbose: bool = True) -> bool:
    """The ``python -m repro scrub --self-test`` smoke target."""
    import tempfile

    results = []
    for name, scenario in _SCENARIOS:
        with tempfile.TemporaryDirectory() as workdir:
            try:
                results.append(scenario(workdir))
            except Exception as error:
                results.append(ScenarioResult(
                    name, False,
                    f"crashed: {type(error).__name__}: {error}"))
    if verbose:
        print("integrity scrub corruption matrix:")
        for result in results:
            print(result.line())
        passed = sum(result.passed for result in results)
        print(f"{passed}/{len(results)} scenarios verified correctly")
    return all(result.passed for result in results)
