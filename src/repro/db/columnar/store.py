"""Column store: a table heap organized as sealed per-column pages.

Rows arrive row-major into a small **tail**; every ``page_rows`` rows
the tail seals into one **row group** — one encoded column page per
column, admitted to the engine's :class:`~repro.db.columnar.cache.
PageCache` (which may immediately evict cold pages to disk under the
``memory_budget``).  Row ids keep the exact semantics of the legacy
row-dict heap: stable, never reused, iteration in insertion order,
updates in place — so the two layouts are observably identical to the
executor above, row for row.

Deletes tombstone the ordinal (pages are immutable); updates rewrite
the affected column pages in place under fresh page ids, preserving the
row's scan position.  Each sealed page carries its zone map, which
:meth:`ColumnStore.scan` uses to skip whole groups that provably
cannot satisfy a comparison predicate.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator

from repro.db.columnar import pages as page_codec
from repro.db.columnar.pages import ZONE_EMPTY
from repro.db.values import NULL
from repro.obs.metrics import count


class PageRef:
    """One sealed column page: cache handle + zone map + size."""

    __slots__ = ("page_id", "nbytes", "zone")

    def __init__(self, page_id: int, nbytes: int, zone) -> None:
        self.page_id = page_id
        self.nbytes = nbytes
        self.zone = zone


class RowGroup:
    """``count`` consecutive ordinals sealed as one page per column."""

    __slots__ = ("start", "count", "row_ids", "pages")

    def __init__(self, start: int, count: int, row_ids: list,
                 pages: "list[PageRef]") -> None:
        self.start = start
        self.count = count
        self.row_ids = row_ids
        self.pages = pages


def zone_excludes(zone, low, include_low, high, include_high) -> bool:
    """True when no value in *zone* can satisfy ``low <?= v <?= high``.

    Conservative: only prunes when the zone and the bounds are of the
    same totally ordered category (both numeric or both str), so a
    mistyped predicate still reaches the filter and raises exactly as
    the row-at-a-time path would.  A NULL bound excludes everything
    (comparisons with NULL are never true).
    """
    if zone is None:
        return False
    if zone == ZONE_EMPTY:
        return True
    lowest, highest = zone
    numeric = isinstance(lowest, (int, float))
    for bound, opposite, inclusive in (
        (low, highest, include_low), (high, lowest, include_high)
    ):
        if bound is None:
            continue
        if bound is NULL:
            return True
        if isinstance(bound, bool):
            return False
        if numeric != isinstance(bound, (int, float)):
            return False
        if not numeric and not isinstance(bound, str):
            return False
    if low is not None:
        if highest < low or (highest == low and not include_low):
            return True
    if high is not None:
        if lowest > high or (lowest == high and not include_high):
            return True
    return False


class GroupView:
    """One scannable unit: a sealed row group or the unsealed tail."""

    __slots__ = ("_store", "_group", "row_ids", "_columns", "_tail_rows")

    def __init__(self, store: "ColumnStore", group: "RowGroup | None",
                 row_ids: list, tail_rows: "list | None" = None) -> None:
        self._store = store
        self._group = group
        self.row_ids = row_ids  # None entries mark tombstones
        self._columns: "list | None" = None
        self._tail_rows = tail_rows

    @property
    def sealed(self) -> bool:
        return self._group is not None

    def zone(self, position: int):
        if self._group is None:
            return None
        return self._group.pages[position].zone

    def raw_page(self, position: int) -> "bytes | None":
        """Encoded page bytes (sealed groups only)."""
        if self._group is None:
            return None
        ref = self._group.pages[position]
        return self._store.read_page(ref)

    def column_values(self, position: int) -> list:
        """Positional values of one column (tombstones included)."""
        if self._group is None:
            return [NULL if row is None else row[position]
                    for row in self._tail_rows]
        if self._columns is None:
            self._columns = self._store.decode_group(self._group)
        return self._columns[position]

    def enumerate_rows(self) -> Iterator[tuple[int, list]]:
        """Live ``(offset, row)`` pairs — offsets index positional
        per-page result lists (kernel columns) alongside the rows."""
        if self._group is None:
            pairs = zip(self.row_ids, self._tail_rows)
            for offset, (row_id, row) in enumerate(pairs):
                if row_id is not None:
                    yield offset, row
            return
        if self._columns is None:
            self._columns = self._store.decode_group(self._group)
        for offset, row_id in enumerate(self.row_ids):
            if row_id is not None:
                yield offset, [column[offset] for column in self._columns]

    def rows(self) -> Iterator[tuple[int, list]]:
        """Live ``(row_id, row)`` pairs in ordinal order."""
        if self._group is None:
            for row_id, row in zip(self.row_ids, self._tail_rows):
                if row_id is not None:
                    yield row_id, row
            return
        if self._columns is None:
            self._columns = self._store.decode_group(self._group)
        for offset, row_id in enumerate(self.row_ids):
            if row_id is not None:
                yield row_id, [column[offset] for column in self._columns]


class ColumnStore:
    """The columnar heap behind one table (see module docstring)."""

    def __init__(self, schema, runtime) -> None:
        self.schema = schema
        self.runtime = runtime
        self.page_rows = runtime.page_rows
        self._groups: list[RowGroup] = []
        self._starts: list[int] = []  # group start ordinals, for bisect
        self._tail_start = 0
        self._tail: list["list | None"] = []
        self._tail_ids: list["int | None"] = []
        self._ordinal_of: dict[int, int] = {}
        self._live = 0
        self._memo: "tuple[int, list] | None" = None  # (group idx, columns)

    def __len__(self) -> int:
        return self._live

    # -- page plumbing ------------------------------------------------------

    def read_page(self, ref: PageRef) -> bytes:
        count("columnar", "pages_read")
        return self.runtime.cache.get(ref.page_id)

    def decode_group(self, group: RowGroup) -> list:
        index = group.start // self.page_rows
        if self._memo is not None and self._memo[0] == index:
            return self._memo[1]
        columns = [
            page_codec.decode_page(self.read_page(ref), self.runtime.codec,
                                   page_id=ref.page_id)
            for ref in group.pages
        ]
        self._memo = (index, columns)
        return columns

    def _seal_tail(self) -> None:
        codec = self.runtime.codec
        refs = []
        for position, column in enumerate(self.schema.columns):
            values = [NULL if row is None else row[position]
                      for row in self._tail]
            data = page_codec.encode_page(values, column.sql_type.name,
                                          codec)
            page_id = self.runtime.cache.put(data)
            refs.append(PageRef(page_id, len(data),
                                page_codec.zone_map_of(values)))
        group = RowGroup(self._tail_start, len(self._tail),
                         list(self._tail_ids), refs)
        self._groups.append(group)
        self._starts.append(group.start)
        self._tail_start += len(self._tail)
        self._tail = []
        self._tail_ids = []

    def _group_at(self, ordinal: int) -> RowGroup:
        return self._groups[bisect_right(self._starts, ordinal) - 1]

    # -- heap protocol ------------------------------------------------------

    def append(self, row_id: int, row: list) -> None:
        ordinal = self._tail_start + len(self._tail)
        self._tail.append(list(row))
        self._tail_ids.append(row_id)
        self._ordinal_of[row_id] = ordinal
        self._live += 1
        if len(self._tail) >= self.page_rows:
            self._seal_tail()

    def has(self, row_id: int) -> bool:
        return row_id in self._ordinal_of

    def get(self, row_id: int) -> "list | None":
        ordinal = self._ordinal_of.get(row_id)
        if ordinal is None:
            return None
        if ordinal >= self._tail_start:
            return list(self._tail[ordinal - self._tail_start])
        group = self._group_at(ordinal)
        columns = self.decode_group(group)
        offset = ordinal - group.start
        return [column[offset] for column in columns]

    def replace(self, row_id: int, row: list) -> None:
        ordinal = self._ordinal_of[row_id]
        if ordinal >= self._tail_start:
            self._tail[ordinal - self._tail_start] = list(row)
            return
        group = self._group_at(ordinal)
        columns = [list(values) for values in self.decode_group(group)]
        offset = ordinal - group.start
        codec = self.runtime.codec
        for position, column in enumerate(self.schema.columns):
            if columns[position][offset] is row[position] or (
                    columns[position][offset] == row[position]
                    and type(columns[position][offset])
                    is type(row[position])):
                continue
            columns[position][offset] = row[position]
            data = page_codec.encode_page(columns[position],
                                          column.sql_type.name, codec)
            old = group.pages[position]
            self.runtime.cache.drop(old.page_id)
            group.pages[position] = PageRef(
                self.runtime.cache.put(data), len(data),
                page_codec.zone_map_of(columns[position]),
            )
        self._memo = (group.start // self.page_rows, columns)

    def remove(self, row_id: int) -> None:
        ordinal = self._ordinal_of.pop(row_id)
        self._live -= 1
        if ordinal >= self._tail_start:
            offset = ordinal - self._tail_start
            self._tail[offset] = None
            self._tail_ids[offset] = None
            return
        group = self._group_at(ordinal)
        group.row_ids[ordinal - group.start] = None

    def clear(self) -> None:
        for group in self._groups:
            for ref in group.pages:
                self.runtime.cache.drop(ref.page_id)
        self._groups = []
        self._starts = []
        self._tail_start = 0
        self._tail = []
        self._tail_ids = []
        self._ordinal_of = {}
        self._live = 0
        self._memo = None

    def items(self) -> Iterator[tuple[int, list]]:
        for view in self.scan():
            yield from view.rows()

    # -- scanning -----------------------------------------------------------

    def scan(self, bounds=None) -> Iterator[GroupView]:
        """Yield group views; *bounds* prunes groups via zone maps.

        ``bounds`` is a list of ``(position, low, include_low, high,
        include_high)`` with already-evaluated bound values.  A pruned
        group counts one ``pages_skipped`` per column page it avoided
        reading.
        """
        for group in self._groups:
            if all(row_id is None for row_id in group.row_ids):
                continue
            if bounds and any(
                zone_excludes(group.pages[position].zone, low, inc_low,
                              high, inc_high)
                for position, low, inc_low, high, inc_high in bounds
            ):
                count("columnar", "pages_skipped", len(group.pages))
                continue
            yield GroupView(self, group, group.row_ids)
        if self._tail:
            yield GroupView(self, None, self._tail_ids,
                            tail_rows=self._tail)
