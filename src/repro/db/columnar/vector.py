"""Vectorized genomic UDF kernels over packed column pages.

The row-at-a-time path for ``SELECT gc_content(seq) FROM t`` decodes
every cell into a :class:`PackedSequence`, stringifies it, and counts
characters.  The kernels here evaluate the same functions over a whole
SEQ-encoded page at once, reading the packed code buffers exactly as
stored — no sequence objects, no strings — via C-speed ``bytes``
primitives (``translate``, ``count``, ``find``).

Bit-identity contract: every kernel either (a) computes a value provably
equal to calling the registered SQL function on the decoded cell, or
(b) falls back to calling that function for the individual row (NULLs,
ambiguity codes, foreign alphabets, non-SEQ pages).  The differential
suite in ``tests/db/test_columnar_differential.py`` holds the engine to
this.

A kernel is only ever attached to a call when the catalog entry for the
function carries the matching ``kernel=`` tag (see
:class:`repro.db.catalog.SqlFunction`) — a user function that merely
shares a builtin's name is never vectorized.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable

from repro.core.types.alphabet import alphabet_by_name
from repro.core.types.sequence import (
    PackedSequence,
    _unpack4,
    sequence_class_for,
)
from repro.db.columnar import pages
from repro.db.values import NULL


class KernelError:
    """A captured per-row kernel failure, deferred until consumption.

    Vectorized kernels evaluate whole pages — including tombstoned
    ordinals and rows a later filter would discard — which the
    row-at-a-time path never touches.  Failures are captured as values
    and re-raised only when an expression actually reads the cell
    (``Evaluator._eval_columnref``) or an operator consumes it
    directly, preserving the legacy error surface exactly.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


@lru_cache(maxsize=16)
def _tables(alphabet_name: str):
    """Per-alphabet code tables the kernels index by alphabet name."""
    alphabet = alphabet_by_name(alphabet_name)
    gc_codes = bytes(alphabet.code(s) for s in "GCS" if s in alphabet)
    at_codes = bytes(alphabet.code(s) for s in "ATUW" if s in alphabet)
    concrete = bytes(
        alphabet.code(s) for s in alphabet.symbols
        if not alphabet.is_ambiguous(s)
    )
    comp_table = None
    if alphabet.has_complement:
        source = bytes(range(len(alphabet)))
        target = bytes(
            alphabet.code(alphabet.complement(s)) for s in alphabet.symbols
        )
        comp_table = bytes.maketrans(source, target)
    nibble = len(alphabet) <= 16
    return gc_codes, at_codes, concrete, comp_table, nibble


def _codes_of(alphabet_name: str, length: int, packed: bytes) -> bytes:
    _, _, _, _, nibble = _tables(alphabet_name)
    return _unpack4(packed, length) if nibble else packed


def _materialize(alphabet_name: str, length: int,
                 packed: bytes) -> PackedSequence:
    klass = sequence_class_for(alphabet_name)
    instance = klass.__new__(klass)
    instance._length = length
    instance._packed = packed
    return instance


def _seq_rows(raw) -> list:
    """Positional ``(name, length, packed) | NULL`` list of a SEQ page."""
    body, nulls = raw
    triples = pages.iter_seq_raw(body, len(nulls) - sum(nulls))
    out = []
    for null in nulls:
        out.append(NULL if null else next(triples))
    return out


# ---------------------------------------------------------------------------
# kernels — each takes (raw, values_fn, fallback, args) and returns the
# per-row result list.  ``raw`` is the (body, nulls) of a SEQ page or
# None; ``values_fn()`` lazily decodes the page for the fallback path.
# ---------------------------------------------------------------------------

def _row_fallback(values_fn: Callable[[], list],
                  fallback: Callable, args: tuple) -> list:
    return [fallback(value, *args) for value in values_fn()]


def _kernel_length(raw, values_fn, fallback, args) -> list:
    if raw is None or args:
        return _row_fallback(values_fn, fallback, args)
    out = []
    for row in _seq_rows(raw):
        if row is NULL:
            out.append(fallback(NULL))
        else:
            out.append(row[1])
    return out


def _kernel_gc_content(raw, values_fn, fallback, args) -> list:
    if raw is None or args:
        return _row_fallback(values_fn, fallback, args)
    out = []
    for row in _seq_rows(raw):
        if row is NULL:
            out.append(fallback(NULL))
            continue
        name, length, packed = row
        gc_codes, at_codes, _, _, _ = _tables(name)
        codes = _codes_of(name, length, packed)
        gc = sum(codes.count(code) for code in gc_codes)
        at = sum(codes.count(code) for code in at_codes)
        total = gc + at
        out.append(gc / total if total else 0.0)
    return out


def _kernel_reverse_complement(raw, values_fn, fallback, args) -> list:
    if raw is None or args:
        return _row_fallback(values_fn, fallback, args)
    out = []
    for row in _seq_rows(raw):
        if row is NULL:
            out.append(fallback(NULL))
            continue
        name, length, packed = row
        _, _, _, comp_table, _ = _tables(name)
        if comp_table is None:
            # no complement for this alphabet: the registered function
            # raises; reproduce its exact behaviour
            out.append(fallback(_materialize(name, length, packed)))
            continue
        codes = _codes_of(name, length, packed)
        klass = sequence_class_for(name)
        out.append(klass.from_codes(codes.translate(comp_table)[::-1]))
    return out


def _kernel_contains(raw, values_fn, fallback, args) -> list:
    if raw is None or len(args) != 1:
        return _row_fallback(values_fn, fallback, args)
    pattern = args[0]
    if not isinstance(pattern, (str, PackedSequence)):
        return _row_fallback(values_fn, fallback, args)
    needle_cache: dict[str, "bytes | None"] = {}
    missing = object()
    out = []
    for row in _seq_rows(raw):
        if row is NULL:
            out.append(fallback(NULL, pattern))
            continue
        name, length, packed = row
        needle = needle_cache.get(name, missing)
        if needle is missing:
            needle = _exact_needle(name, pattern)
            needle_cache[name] = needle
        if needle is None:
            # ambiguous / foreign-alphabet / invalid pattern: per-row
            out.append(fallback(_materialize(name, length, packed),
                                pattern))
            continue
        if not needle or len(needle) > length:
            out.append(False)
            continue
        codes = _codes_of(name, length, packed)
        _, _, concrete, _, _ = _tables(name)
        if codes.translate(None, delete=concrete):
            # subject carries ambiguity codes: motif semantics apply
            out.append(fallback(_materialize(name, length, packed),
                                pattern))
        else:
            out.append(needle in codes)
    return out


def _exact_needle(alphabet_name: str,
                  pattern: "str | PackedSequence") -> "bytes | None":
    """Pattern codes when the exact scan is valid for this alphabet.

    ``None`` means the kernel must defer to the registered function:
    the pattern has ambiguity codes, belongs to another alphabet, or
    does not encode at all (so the function's error surfaces verbatim).
    """
    try:
        if isinstance(pattern, PackedSequence):
            if pattern.alphabet.name != alphabet_name:
                return None
            codes = pattern.codes()
        else:
            klass = sequence_class_for(alphabet_name)
            codes = klass(pattern.upper()).codes()
    except Exception:
        return None
    _, _, concrete, _, _ = _tables(alphabet_name)
    if codes.translate(None, delete=concrete):
        return None
    return codes


#: Kernel registry: ``SqlFunction.kernel`` tag → page-wise implementation.
KERNELS: "dict[str, Callable]" = {
    "length": _kernel_length,
    "gc_content": _kernel_gc_content,
    "reverse_complement": _kernel_reverse_complement,
    "contains": _kernel_contains,
}


def apply_kernel(kernel_name: str, raw, values_fn: Callable[[], list],
                 fallback: Callable, args: "tuple[Any, ...]") -> list:
    """Evaluate one tagged function over one page; see module docstring."""
    return KERNELS[kernel_name](raw, values_fn, fallback, args)
