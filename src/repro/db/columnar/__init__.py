"""Columnar page storage and out-of-core execution support.

This package is the storage half of ROADMAP item 2: GLU-style
compressed column pages (generalizing the 2-bit ``PackedSequence``
packing to every SQL type), a byte-budgeted LRU page cache that spills
cold pages to disk, spillable row runs for the streaming executor, and
vectorized genomic UDF kernels that evaluate whole pages without
row-by-row decode.

One :class:`ColumnarRuntime` per :class:`~repro.db.database.Database`
owns the shared pieces — the page cache, the spill policy, and the
value codec — so a single ``memory_budget`` governs both resident pages
and operator spill thresholds.
"""

from __future__ import annotations

from repro.db.columnar.cache import PageCache
from repro.db.columnar.pages import (
    PAGE_ROWS,
    ZONE_EMPTY,
    decode_page,
    encode_page,
    zone_map_of,
)
from repro.db.columnar.spill import (
    IndexedRun,
    RowRun,
    SpillManager,
    ValueCodec,
)
from repro.db.columnar.store import ColumnStore, GroupView, zone_excludes
from repro.db.columnar.vector import KERNELS, apply_kernel

__all__ = [
    "PAGE_ROWS",
    "ZONE_EMPTY",
    "ColumnStore",
    "ColumnarRuntime",
    "GroupView",
    "IndexedRun",
    "KERNELS",
    "PageCache",
    "RowRun",
    "SpillManager",
    "ValueCodec",
    "apply_kernel",
    "decode_page",
    "encode_page",
    "zone_excludes",
    "zone_map_of",
]


class ColumnarRuntime:
    """Per-database hub: page cache + spill policy + value codec.

    ``memory_budget`` (bytes) bounds the encoded pages held in memory
    *and* sets the spill threshold of the streaming operators;
    ``None`` means unbounded (nothing ever spills).  ``page_rows`` is
    the row-group height — the number of rows sealed into each set of
    column pages.
    """

    def __init__(self, catalog, memory_budget: "int | None" = None,
                 page_rows: int = PAGE_ROWS) -> None:
        self.memory_budget = memory_budget
        self.page_rows = page_rows
        self.codec = ValueCodec(catalog)
        self.cache = PageCache(memory_budget)
        self.spill = SpillManager(self.codec, memory_budget)

    def column_store(self, schema) -> ColumnStore:
        return ColumnStore(schema, self)

    def close(self) -> None:
        self.cache.close()
