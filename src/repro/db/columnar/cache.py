"""LRU page cache with an explicit memory budget and disk spill.

The cache is the single arbiter of "what is resident": every sealed
column page is admitted here, and once the configured ``memory_budget``
(bytes of encoded page payloads) is exceeded, the least-recently-used
pages are written to a spill file on disk and dropped from memory.  A
later access faults the page back in (re-admitting it may evict other
pages in turn).  With ``budget_bytes=None`` nothing ever spills — the
cache degrades to a plain dict, which is the row-layout-compatible
default.

Spill files are plain per-page temporary files that outlive eviction:
once a page has been written, re-evicting it after a fault is free
(the bytes on disk are immutable — page updates allocate a fresh page
id).  Observable via the metrics registry:

- ``columnar_pages_evicted`` / ``columnar_page_faults`` /
  ``columnar_spill_bytes`` counters,
- ``columnar_resident_bytes`` / ``columnar_resident_peak`` gauges.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict

from repro.errors import StorageError
from repro.obs.metrics import count, gauge


class PageCache:
    """Byte-budgeted LRU over encoded column pages."""

    def __init__(self, budget_bytes: "int | None" = None) -> None:
        self.budget_bytes = budget_bytes
        self._resident: "OrderedDict[int, bytes]" = OrderedDict()
        self._spilled: dict[int, str] = {}
        self._resident_bytes = 0
        self._peak_bytes = 0
        self._spill_dir: "tempfile.TemporaryDirectory | None" = None
        self._next_id = 0
        self._lock = threading.RLock()
        # lifetime totals, mirrored into the metrics registry
        self.pages_evicted = 0
        self.page_faults = 0
        self.spilled_bytes = 0

    # -- bookkeeping --------------------------------------------------------

    def _publish(self) -> None:
        if self._resident_bytes > self._peak_bytes:
            self._peak_bytes = self._resident_bytes
        gauge("columnar", "resident_bytes", self._resident_bytes)
        gauge("columnar", "resident_peak", self._peak_bytes)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def peak_resident_bytes(self) -> int:
        return self._peak_bytes

    def _spill_path(self, page_id: int) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.TemporaryDirectory(
                prefix="repro-pages-")
        return os.path.join(self._spill_dir.name, f"{page_id}.page")

    def _evict_to_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while (self._resident_bytes > self.budget_bytes
               and len(self._resident) > 1):
            page_id, data = self._resident.popitem(last=False)
            self._resident_bytes -= len(data)
            if page_id not in self._spilled:
                path = self._spill_path(page_id)
                with open(path, "wb") as handle:
                    handle.write(data)
                self._spilled[page_id] = path
                self.spilled_bytes += len(data)
                count("columnar", "spill_bytes", len(data))
            self.pages_evicted += 1
            count("columnar", "pages_evicted")

    # -- public API ---------------------------------------------------------

    def put(self, data: bytes) -> int:
        """Admit a freshly sealed page; returns its page id."""
        with self._lock:
            page_id = self._next_id
            self._next_id += 1
            self._resident[page_id] = data
            self._resident_bytes += len(data)
            self._evict_to_budget()
            self._publish()
            return page_id

    def get(self, page_id: int) -> bytes:
        """The encoded bytes of *page_id*, faulting from disk if cold."""
        with self._lock:
            data = self._resident.get(page_id)
            if data is not None:
                self._resident.move_to_end(page_id)
                return data
            path = self._spilled.get(page_id)
            if path is None:
                raise StorageError(
                    f"column page {page_id} is unknown to the cache",
                    kind="malformed",
                )
            with open(path, "rb") as handle:
                data = handle.read()
            self.page_faults += 1
            count("columnar", "page_faults")
            self._resident[page_id] = data
            self._resident_bytes += len(data)
            self._evict_to_budget()
            self._publish()
            return data

    def drop(self, page_id: int) -> None:
        """Forget a page (its slot was rewritten under a new id)."""
        with self._lock:
            data = self._resident.pop(page_id, None)
            if data is not None:
                self._resident_bytes -= len(data)
            path = self._spilled.pop(page_id, None)
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._publish()

    def close(self) -> None:
        with self._lock:
            self._resident.clear()
            self._spilled.clear()
            self._resident_bytes = 0
            if self._spill_dir is not None:
                self._spill_dir.cleanup()
                self._spill_dir = None
