"""Column pages: fixed-capacity packed segments of one table column.

The paper (section 4.3) demands that genomic values "not be realized as
complicated structures in main memory but be embedded into compact
storage areas which can be efficiently transferred between main memory
and disk".  A :class:`~repro.db.columnar.store.ColumnStore` realizes
that for whole tables: every ``page_rows`` inserted rows seal into one
**column page per column** — a self-describing byte string that is the
unit of caching, eviction, disk spill and vectorized evaluation.

Encodings (chosen per page from the column type and the actual values):

==========  =================================================================
``INT``     non-null values packed as little-endian ``int64`` (arbitrary-
            precision ints fall back to a JSON payload, flagged in-band)
``FLOAT``   non-null values packed as little-endian ``float64``
``BOOL``    a second bitmap next to the null bitmap
``DICT``    dictionary-encoded strings: distinct values in first-occurrence
            order + one 1- or 2-byte code per non-null row (the width grows
            with the dictionary, so overflow is representable, never lossy)
``BLOB``    length-prefixed concatenated byte strings
``SEQ``     packed genomic sequences (:class:`PackedSequence` payload bytes
            stored verbatim — the 2/4-bit code buffers vector kernels read
            without constructing sequence objects)
``OBJ``     fallback: any value the engine can serialize (UDTs via their
            :class:`~repro.db.values.OpaqueType`)
==========  =================================================================

Every page carries a null bitmap, a **zone map** (min/max over the
non-null values, when they are totally ordered) and a CRC32 footer in
the same failure taxonomy as the WAL: a page whose checksum does not
match raises :class:`~repro.errors.StorageError` with
``kind="bit_rot"`` instead of silently decoding garbage.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Sequence

from repro.core.types.sequence import PackedSequence, sequence_class_for
from repro.db.values import NULL
from repro.errors import StorageError

#: Default number of rows per sealed page (one row group).
PAGE_ROWS = 256

#: On-page format version.
PAGE_FORMAT = 1

#: Encoding tags (one byte on the wire).
INT, FLOAT, BOOL, DICT, BLOB, SEQ, OBJ = 1, 2, 3, 4, 5, 6, 7

_MAGIC = b"CP"
_HEADER = struct.Struct("<2sBBI")  # magic, format, encoding, row count
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_I64_RANGE = (-(1 << 63), (1 << 63) - 1)

#: Zone-map sentinel for a page with no non-null values: any comparison
#: predicate is provably false over it, so scans may skip it outright.
ZONE_EMPTY = "empty"


def _pack_bitmap(flags: Sequence[bool]) -> bytes:
    out = bytearray((len(flags) + 7) // 8)
    for index, flag in enumerate(flags):
        if flag:
            out[index // 8] |= 1 << (index % 8)
    return bytes(out)


def _unpack_bitmap(data: bytes, count: int) -> list[bool]:
    return [bool(data[index // 8] >> (index % 8) & 1)
            for index in range(count)]


def zone_map_of(values: Sequence[Any]) -> "tuple[Any, Any] | str | None":
    """The (min, max) zone map over *values*, ignoring NULLs.

    Returns :data:`ZONE_EMPTY` when every value is NULL (such a page can
    never satisfy a comparison predicate) and ``None`` when the values
    are not of a totally ordered scalar type (no pruning possible).
    """
    lowest = highest = None
    category = None
    for value in values:
        if value is NULL:
            continue
        if isinstance(value, bool):
            return None
        kind = ("num" if isinstance(value, (int, float))
                else "str" if isinstance(value, str) else None)
        if kind is None or (category is not None and kind != category):
            return None
        category = kind
        if lowest is None:
            lowest = highest = value
        else:
            if value < lowest:
                lowest = value
            if value > highest:
                highest = value
    if lowest is None:
        return ZONE_EMPTY
    return (lowest, highest)


# ---------------------------------------------------------------------------
# body encoders (non-null values only; the null bitmap restores positions)
# ---------------------------------------------------------------------------

def _encode_int(values: list[Any]) -> bytes:
    if all(_I64_RANGE[0] <= value <= _I64_RANGE[1] for value in values):
        return b"\x00" + b"".join(_I64.pack(value) for value in values)
    payload = json.dumps(values).encode("utf-8")
    return b"\x01" + _U32.pack(len(payload)) + payload


def _decode_int(body: bytes, count: int) -> list[Any]:
    if not body:
        raise StorageError("column page INT body truncated",
                           kind="malformed")
    if body[0] == 0:
        return [value for (value,)
                in _I64.iter_unpack(body[1:1 + 8 * count])]
    (size,) = _U32.unpack_from(body, 1)
    return json.loads(body[5:5 + size].decode("utf-8"))


def _encode_seq(values: list[PackedSequence]) -> bytes:
    parts = []
    for value in values:
        name = value.alphabet.name.encode("ascii")
        packed = value._packed
        parts.append(bytes((len(name),)) + name
                     + _U32.pack(len(value)) + _U32.pack(len(packed))
                     + packed)
    return b"".join(parts)


def iter_seq_raw(body: bytes, count: int):
    """Yield ``(alphabet_name, symbol_count, packed_bytes)`` per value.

    This is the raw access path of the vector kernels: the packed code
    buffers exactly as stored, no :class:`PackedSequence` construction.
    """
    offset = 0
    for _ in range(count):
        name_len = body[offset]
        offset += 1
        name = body[offset:offset + name_len].decode("ascii")
        offset += name_len
        (length,) = _U32.unpack_from(body, offset)
        (packed_len,) = _U32.unpack_from(body, offset + 4)
        offset += 8
        yield name, length, body[offset:offset + packed_len]
        offset += packed_len


def _decode_seq(body: bytes, count: int) -> list[PackedSequence]:
    values = []
    for name, length, packed in iter_seq_raw(body, count):
        klass = sequence_class_for(name)
        instance = klass.__new__(klass)
        instance._length = length
        instance._packed = packed
        values.append(instance)
    return values


def _encode_dict(values: list[str]) -> bytes:
    codes: dict[str, int] = {}
    order: list[bytes] = []
    encoded = []
    for value in values:
        code = codes.get(value)
        if code is None:
            code = len(codes)
            codes[value] = code
            order.append(value.encode("utf-8"))
        encoded.append(code)
    width = 1 if len(codes) <= 0xFF else 2
    fmt = "<B" if width == 1 else "<H"
    parts = [_U32.pack(len(order))]
    parts.extend(_U32.pack(len(entry)) + entry for entry in order)
    parts.append(bytes((width,)))
    parts.extend(struct.pack(fmt, code) for code in encoded)
    return b"".join(parts)


def _decode_dict(body: bytes, count: int) -> list[str]:
    (ndict,) = _U32.unpack_from(body, 0)
    offset = 4
    entries = []
    for _ in range(ndict):
        (size,) = _U32.unpack_from(body, offset)
        offset += 4
        entries.append(body[offset:offset + size].decode("utf-8"))
        offset += size
    width = body[offset]
    offset += 1
    fmt = "<B" if width == 1 else "<H"
    step = struct.calcsize(fmt)
    out = []
    for _ in range(count):
        (code,) = struct.unpack_from(fmt, body, offset)
        offset += step
        out.append(entries[code])
    return out


def _encode_blob(values: list[bytes]) -> bytes:
    parts = [b"".join(_U32.pack(len(value)) for value in values)]
    parts.extend(values)
    return b"".join(parts)


def _decode_blob(body: bytes, count: int) -> list[bytes]:
    sizes = [size for (size,) in _U32.iter_unpack(body[:4 * count])]
    offset = 4 * count
    out = []
    for size in sizes:
        out.append(body[offset:offset + size])
        offset += size
    return out


def choose_encoding(type_name: str, nonnull: list[Any]) -> int:
    """Pick the page encoding for one column's sealed values."""
    if type_name == "INTEGER" and all(
            isinstance(v, int) and not isinstance(v, bool) for v in nonnull):
        return INT
    if type_name == "REAL" and all(isinstance(v, float) for v in nonnull):
        return FLOAT
    if type_name == "BOOLEAN" and all(isinstance(v, bool) for v in nonnull):
        return BOOL
    if type_name == "TEXT" and all(isinstance(v, str) for v in nonnull):
        return DICT
    if type_name == "BLOB" and all(isinstance(v, bytes) for v in nonnull):
        return BLOB
    if nonnull and all(isinstance(v, PackedSequence) for v in nonnull):
        return SEQ
    return OBJ


def encode_page(values: Sequence[Any], type_name: str, codec) -> bytes:
    """Seal one column's *values* into a checksummed page byte string."""
    nulls = [value is NULL for value in values]
    nonnull = [value for value in values if value is not NULL]
    encoding = choose_encoding(type_name, nonnull)
    if encoding == INT:
        body = _encode_int(nonnull)
    elif encoding == FLOAT:
        body = b"".join(_F64.pack(value) for value in nonnull)
    elif encoding == BOOL:
        body = _pack_bitmap([value is True for value in values])
    elif encoding == DICT:
        body = _encode_dict(nonnull)
    elif encoding == BLOB:
        body = _encode_blob(nonnull)
    elif encoding == SEQ:
        body = _encode_seq(nonnull)
    else:
        payload = json.dumps(
            [codec.encode_value(value) for value in nonnull]
        ).encode("utf-8")
        body = _U32.pack(len(payload)) + payload
    head = (_HEADER.pack(_MAGIC, PAGE_FORMAT, encoding, len(values))
            + _pack_bitmap(nulls))
    page = head + body
    return page + _U32.pack(zlib.crc32(page))


def page_encoding(data: bytes) -> int:
    """The encoding tag of an encoded page (no checksum verification)."""
    _, _, encoding, _ = _HEADER.unpack_from(data)
    return encoding


def _verify(data: bytes, page_id: "int | None") -> None:
    if len(data) < _HEADER.size + 4 or data[:2] != _MAGIC:
        raise StorageError(
            f"column page {page_id!r} is not a page (truncated or foreign "
            f"bytes)", kind="malformed",
        )
    (stored,) = _U32.unpack_from(data, len(data) - 4)
    if zlib.crc32(data[:-4]) != stored:
        raise StorageError(
            f"column page {page_id!r} failed its CRC32 check",
            kind="bit_rot",
        )


def decode_page(data: bytes, codec, *,
                page_id: "int | None" = None) -> list[Any]:
    """Verify and decode one page back into its positional value list."""
    _verify(data, page_id)
    _, fmt, encoding, count = _HEADER.unpack_from(data)
    if fmt != PAGE_FORMAT:
        raise StorageError(
            f"column page {page_id!r} has unknown format {fmt}",
            kind="malformed",
        )
    bitmap_size = (count + 7) // 8
    nulls = _unpack_bitmap(data[_HEADER.size:_HEADER.size + bitmap_size],
                           count)
    body = data[_HEADER.size + bitmap_size:-4]
    nonnull_count = count - sum(nulls)
    if encoding == INT:
        nonnull = _decode_int(body, nonnull_count)
    elif encoding == FLOAT:
        nonnull = [value for (value,)
                   in _F64.iter_unpack(body[:8 * nonnull_count])]
    elif encoding == BOOL:
        flags = _unpack_bitmap(body, count)
        return [NULL if null else flags[index]
                for index, null in enumerate(nulls)]
    elif encoding == DICT:
        nonnull = _decode_dict(body, nonnull_count)
    elif encoding == BLOB:
        nonnull = _decode_blob(body, nonnull_count)
    elif encoding == SEQ:
        nonnull = _decode_seq(body, nonnull_count)
    elif encoding == OBJ:
        (size,) = _U32.unpack_from(body, 0)
        nonnull = [codec.decode_value(item)
                   for item in json.loads(body[4:4 + size].decode("utf-8"))]
    else:
        raise StorageError(
            f"column page {page_id!r} has unknown encoding {encoding}",
            kind="malformed",
        )
    out = []
    position = 0
    for null in nulls:
        if null:
            out.append(NULL)
        else:
            out.append(nonnull[position])
            position += 1
    return out


def seq_raw_body(data: bytes, *, page_id: "int | None" = None):
    """Raw ``(body, nulls)`` of a verified SEQ page, for vector kernels.

    Returns ``None`` when the page is not SEQ-encoded (the caller falls
    back to the decoded-value path).
    """
    _verify(data, page_id)
    _, _, encoding, count = _HEADER.unpack_from(data)
    if encoding != SEQ:
        return None
    bitmap_size = (count + 7) // 8
    nulls = _unpack_bitmap(data[_HEADER.size:_HEADER.size + bitmap_size],
                           count)
    return data[_HEADER.size + bitmap_size:-4], nulls
