"""Bounded-memory row runs for the streaming SQL executor.

Every pipeline-breaking operator (ORDER BY, GROUP BY, the join build
sides) used to call ``list(child.execute(...))`` — unbounded
materialization.  The runs here are the budgeted replacement: rows
accumulate in memory until the operator's share of the engine's
``memory_budget`` is exhausted, then the whole run flushes to an
anonymous temporary file and further appends go straight to disk.

Two shapes:

- :class:`RowRun` — sequential, re-iterable (block-nested-loop join
  right sides, external-sort runs, spilled aggregate partitions).
- :class:`IndexedRun` — offset-addressed random access (hash-join
  build rows, referenced by ordinal from the bucket table).

Rows cross the memory/disk boundary as JSON lines through
:class:`ValueCodec`, the same ``$bytes`` / ``$udt`` tagging the WAL
uses, so any value the engine can persist can also spill.  Spill
volume is visible as ``executor_spill_rows`` / ``executor_spill_bytes``
/ ``executor_spill_runs`` counters.
"""

from __future__ import annotations

import json
import tempfile
from typing import Any, Iterable, Iterator

from repro.db.columnar.vector import KernelError
from repro.db.values import NULL
from repro.errors import StorageError
from repro.obs.metrics import count

#: In-memory rows an operator may hold before spilling when the engine
#: has a finite budget but the estimated per-row size is still unknown.
DEFAULT_RUN_ROWS = 1024


class ValueCodec:
    """JSON-safe encoding of row tuples (bytes and UDTs tagged in-band).

    Standalone twin of the WAL's value tagging (``repro.db.storage``)
    against a bare catalog, so the columnar layer does not import the
    persistence layer.
    """

    def __init__(self, catalog) -> None:
        self._catalog = catalog

    def encode_value(self, value: Any) -> Any:
        if value is NULL or isinstance(value, (bool, int, float, str)):
            return value
        if type(value) is KernelError:
            # A deferred kernel failure crossed a spill boundary: the
            # query was going to raise this error once the row was
            # consumed; surface it now rather than serialize it.
            raise value.error
        if isinstance(value, (bytes, bytearray)):
            return {"$bytes": bytes(value).hex()}
        opaque = self._catalog.opaque_type_for(value)
        if opaque is not None:
            return {"$udt": opaque.name, "data": opaque.serialize(value).hex()}
        raise StorageError(
            f"cannot spill value of type {type(value).__name__}; "
            f"register an OpaqueType for it first"
        )

    def decode_value(self, encoded: Any) -> Any:
        if isinstance(encoded, dict):
            if "$bytes" in encoded:
                return bytes.fromhex(encoded["$bytes"])
            if "$udt" in encoded:
                opaque = self._catalog.opaque_type(encoded["$udt"])
                return opaque.deserialize(bytes.fromhex(encoded["data"]))
            raise StorageError(f"unknown tagged value {encoded!r}")
        return encoded

    def encode_row(self, row: tuple) -> str:
        return json.dumps([self.encode_value(value) for value in row],
                          separators=(",", ":"))

    def decode_row(self, line: str) -> tuple:
        return tuple(self.decode_value(item) for item in json.loads(line))


class SpillManager:
    """Hands operators their spill policy: budget share and codec."""

    def __init__(self, codec: ValueCodec,
                 budget_bytes: "int | None" = None) -> None:
        self.codec = codec
        self.budget_bytes = budget_bytes

    def run_capacity(self) -> "int | None":
        """Rows an operator may buffer before spilling (None = no cap)."""
        if self.budget_bytes is None:
            return None
        return max(1, min(DEFAULT_RUN_ROWS, self.budget_bytes // 64))

    def row_run(self) -> "RowRun":
        return RowRun(self.codec, self.run_capacity())

    def indexed_run(self) -> "IndexedRun":
        return IndexedRun(self.codec, self.run_capacity())

    def disk_run(self) -> "RowRun":
        """A write-through run: rows destined for disk regardless of
        budget share (sorted external-merge runs, aggregate spill
        partitions — their contents were already counted against the
        operator's in-memory allowance)."""
        return RowRun(self.codec, 0)


class RowRun:
    """A re-iterable sequence of rows that spills past *capacity* rows."""

    def __init__(self, codec: ValueCodec,
                 capacity: "int | None" = None) -> None:
        self._codec = codec
        self._capacity = capacity
        self._rows: "list[tuple] | None" = []
        self._file = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def spilled(self) -> bool:
        return self._file is not None

    def _flush_to_disk(self) -> None:
        self._file = tempfile.TemporaryFile(
            mode="w+", encoding="utf-8", prefix="repro-run-")
        spilled_bytes = 0
        for row in self._rows:
            line = self._codec.encode_row(row)
            self._file.write(line + "\n")
            spilled_bytes += len(line) + 1
        self._rows = None
        count("executor", "spill_runs")
        count("executor", "spill_rows", self._count)
        count("executor", "spill_bytes", spilled_bytes)

    def append(self, row: tuple) -> None:
        if self._rows is not None:
            self._rows.append(row)
            self._count += 1
            if (self._capacity is not None
                    and len(self._rows) > self._capacity):
                self._flush_to_disk()
            return
        line = self._codec.encode_row(row)
        self._file.write(line + "\n")
        self._count += 1
        count("executor", "spill_rows")
        count("executor", "spill_bytes", len(line) + 1)

    def extend(self, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.append(row)

    def __iter__(self) -> Iterator[tuple]:
        if self._rows is not None:
            yield from self._rows
            return
        self._file.seek(0)
        for line in self._file:
            yield self._codec.decode_row(line)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        self._rows = []
        self._count = 0


class IndexedRun:
    """Rows addressable by ordinal; cold rows are read back by offset."""

    def __init__(self, codec: ValueCodec,
                 capacity: "int | None" = None) -> None:
        self._codec = codec
        self._capacity = capacity
        self._rows: "list[tuple] | None" = []
        self._file = None
        self._offsets: "list[int]" = []
        self._tail = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def spilled(self) -> bool:
        return self._file is not None

    def _flush_to_disk(self) -> None:
        self._file = tempfile.TemporaryFile(
            mode="w+b", prefix="repro-irun-")
        spilled_bytes = 0
        for row in self._rows:
            payload = self._codec.encode_row(row).encode("utf-8") + b"\n"
            self._offsets.append(self._tail)
            self._file.write(payload)
            self._tail += len(payload)
            spilled_bytes += len(payload)
        self._rows = None
        count("executor", "spill_runs")
        count("executor", "spill_rows", self._count)
        count("executor", "spill_bytes", spilled_bytes)

    def append(self, row: tuple) -> int:
        """Store *row*; returns its ordinal."""
        ordinal = self._count
        if self._rows is not None:
            self._rows.append(row)
            self._count += 1
            if (self._capacity is not None
                    and len(self._rows) > self._capacity):
                self._flush_to_disk()
            return ordinal
        payload = self._codec.encode_row(row).encode("utf-8") + b"\n"
        self._offsets.append(self._tail)
        self._file.write(payload)
        self._tail += len(payload)
        self._count += 1
        count("executor", "spill_rows")
        count("executor", "spill_bytes", len(payload))
        return ordinal

    def __getitem__(self, ordinal: int) -> tuple:
        if self._rows is not None:
            return self._rows[ordinal]
        self._file.seek(self._offsets[ordinal])
        return self._codec.decode_row(
            self._file.readline().decode("utf-8"))

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        self._rows = []
        self._offsets = []
        self._tail = 0
        self._count = 0
