"""A from-scratch extensible relational engine (the paper's DBMS substrate).

Public surface:

- :class:`~repro.db.database.Database` — parse/plan/execute SQL, register
  opaque UDTs and UDFs, transactions, EXPLAIN.
- :class:`~repro.db.database.ResultSet` — SELECT results.
- :class:`~repro.db.values.OpaqueType` — the UDT mechanism of section 6.2.
- :mod:`repro.db.index` — B-tree/hash plus genomic k-mer and suffix-array
  index structures (section 6.5).
- :mod:`repro.db.storage` — disk images and the write-ahead log.
"""

from repro.db.catalog import SqlAggregate, SqlFunction
from repro.db.database import Database, ResultSet
from repro.db.values import (
    BLOB,
    BOOLEAN,
    INTEGER,
    NULL,
    REAL,
    TEXT,
    OpaqueType,
    SqlType,
)

__all__ = [
    "Database",
    "ResultSet",
    "OpaqueType",
    "SqlType",
    "SqlFunction",
    "SqlAggregate",
    "NULL",
    "INTEGER",
    "REAL",
    "TEXT",
    "BOOLEAN",
    "BLOB",
]
