"""SQL value model: types, NULL, and three-valued logic.

The engine stores plain Python objects in rows; this module defines the
SQL-visible type system used to validate and coerce them, including the
**opaque user-defined types** of section 6.2 — types whose "internal and
mostly complex structure is unknown to the DBMS".  An
:class:`OpaqueType` only gives the engine three capabilities: a membership
test, a serializer and a deserializer.  Everything else about a UDT value
(its operations) enters the engine as user-defined functions.

``NULL`` is a singleton distinct from Python ``None`` in intent (it *is*
``None`` at the storage level, but comparisons and boolean connectives go
through the three-valued-logic helpers here, never through Python's).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TypeCheckError

#: SQL NULL at the storage level.
NULL = None

#: The "unknown" truth value of three-valued logic.
UNKNOWN = None


class SqlType:
    """Base class of all SQL-visible types."""

    name: str = "ANY"

    def contains(self, value: Any) -> bool:
        """Membership test (NULL is always acceptable; checked separately)."""
        raise NotImplementedError

    def coerce(self, value: Any) -> Any:
        """Convert *value* into the type, or raise :class:`TypeCheckError`."""
        if value is NULL or self.contains(value):
            return value
        raise TypeCheckError(
            f"value {value!r} is not a {self.name}"
        )

    def __repr__(self) -> str:
        return f"SqlType({self.name})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SqlType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)


class IntegerType(SqlType):
    name = "INTEGER"

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        if value is NULL:
            return NULL
        if isinstance(value, bool):
            raise TypeCheckError("BOOLEAN is not an INTEGER")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeCheckError(f"value {value!r} is not an INTEGER")


class RealType(SqlType):
    name = "REAL"

    def contains(self, value: Any) -> bool:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))

    def coerce(self, value: Any) -> Any:
        if value is NULL:
            return NULL
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeCheckError(f"value {value!r} is not a REAL")
        return float(value)


class TextType(SqlType):
    name = "TEXT"

    def contains(self, value: Any) -> bool:
        return isinstance(value, str)


class BooleanType(SqlType):
    name = "BOOLEAN"

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)


class BytesType(SqlType):
    name = "BLOB"

    def contains(self, value: Any) -> bool:
        return isinstance(value, (bytes, bytearray))

    def coerce(self, value: Any) -> Any:
        if value is NULL:
            return NULL
        if isinstance(value, bytearray):
            return bytes(value)
        if isinstance(value, bytes):
            return value
        raise TypeCheckError(f"value {value!r} is not a BLOB")


class OpaqueType(SqlType):
    """A user-defined type the engine treats as a black box (section 6.2).

    Parameters
    ----------
    name:
        The SQL-level type name (``DNA``, ``PROTEIN``, ``GENE`` ...).
    python_type:
        The in-memory class (or tuple of classes) of values.
    serialize / deserialize:
        Compact byte-level round-trip, used by persistence and the WAL.
        The engine never interprets the bytes.
    """

    def __init__(
        self,
        name: str,
        python_type: "type | tuple[type, ...]",
        serialize: Callable[[Any], bytes],
        deserialize: Callable[[bytes], Any],
    ) -> None:
        self.name = name.upper()
        self.python_type = python_type
        self.serialize = serialize
        self.deserialize = deserialize

    def contains(self, value: Any) -> bool:
        return isinstance(value, self.python_type)

    def __repr__(self) -> str:
        return f"OpaqueType({self.name})"


INTEGER = IntegerType()
REAL = RealType()
TEXT = TextType()
BOOLEAN = BooleanType()
BLOB = BytesType()

_BUILTIN_TYPES = {
    "INTEGER": INTEGER, "INT": INTEGER, "BIGINT": INTEGER,
    "REAL": REAL, "FLOAT": REAL, "DOUBLE": REAL,
    "TEXT": TEXT, "STRING": TEXT, "VARCHAR": TEXT, "CHAR": TEXT,
    "BOOLEAN": BOOLEAN, "BOOL": BOOLEAN,
    "BLOB": BLOB, "BYTES": BLOB,
}


def builtin_type(name: str) -> SqlType | None:
    """Resolve a built-in type name (case-insensitive), else ``None``."""
    return _BUILTIN_TYPES.get(name.upper())


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def and3(left: "bool | None", right: "bool | None") -> "bool | None":
    """SQL AND: false dominates, unknown propagates."""
    if left is False or right is False:
        return False
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return True


def or3(left: "bool | None", right: "bool | None") -> "bool | None":
    """SQL OR: true dominates, unknown propagates."""
    if left is True or right is True:
        return True
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    return False


def not3(value: "bool | None") -> "bool | None":
    """SQL NOT: unknown stays unknown."""
    if value is UNKNOWN:
        return UNKNOWN
    return not value


def is_truthy(value: "bool | None") -> bool:
    """A WHERE clause keeps a row only when the predicate is true."""
    return value is True


def compare(operator: str, left: Any, right: Any) -> "bool | None":
    """SQL comparison with NULL propagation.

    Any comparison involving NULL yields unknown.  Mixed int/float
    compares numerically; everything else requires matching types.
    """
    if left is NULL or right is NULL:
        return UNKNOWN
    numeric = (int, float)
    if isinstance(left, bool) != isinstance(right, bool):
        raise TypeCheckError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__}"
        )
    if not (isinstance(left, numeric) and isinstance(right, numeric)):
        if type(left) is not type(right):
            raise TypeCheckError(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}"
            )
    if operator == "=":
        return left == right
    if operator in ("!=", "<>"):
        return left != right
    try:
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError as exc:
        raise TypeCheckError(str(exc)) from exc
    raise TypeCheckError(f"unknown comparison operator {operator!r}")


def sort_key(value: Any) -> tuple:
    """A total-order key across NULLs and mixed values (NULLs first)."""
    if value is NULL:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, bytes):
        return (4, value)
    return (5, repr(value))
