"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT",
    "OUTER", "ON", "AS", "AND", "OR", "NOT", "IS", "NULL", "IN",
    "BETWEEN", "LIKE", "EXISTS", "TRUE", "FALSE", "CREATE", "TABLE",
    "INDEX", "DROP", "IF", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "PRIMARY", "KEY", "UNIQUE", "DEFAULT", "USING", "WITH",
    "ANALYZE",
}

#: Token kinds.
KEYWORD = "KEYWORD"
IDENTIFIER = "IDENTIFIER"
NUMBER = "NUMBER"
STRING = "STRING"
OPERATOR = "OPERATOR"
PARAMETER = "PARAMETER"
END = "END"

_OPERATORS = (
    "<=", ">=", "!=", "<>",
    "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ".", ";",
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int

    def matches(self, kind: str, text: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return text is None or self.text == text


def tokenize(sql: str) -> list[Token]:
    """Split SQL text into tokens (keywords upper-cased, identifiers lowered)."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)

    while position < length:
        ch = sql[position]

        if ch.isspace():
            position += 1
            continue

        if sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline == -1 else newline + 1
            continue

        if ch == "'":
            end = position + 1
            pieces: list[str] = []
            while True:
                if end >= length:
                    raise SqlSyntaxError(
                        f"unterminated string literal at {position}"
                    )
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        pieces.append("'")
                        end += 2
                        continue
                    break
                pieces.append(sql[end])
                end += 1
            tokens.append(Token(STRING, "".join(pieces), position))
            position = end + 1
            continue

        if ch.isdigit() or (ch == "." and position + 1 < length
                            and sql[position + 1].isdigit()):
            end = position
            seen_dot = False
            while end < length and (sql[end].isdigit()
                                    or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(NUMBER, sql[position:end], position))
            position = end
            continue

        if ch.isalpha() or ch == "_":
            end = position
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[position:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, position))
            else:
                tokens.append(Token(IDENTIFIER, word.lower(), position))
            position = end
            continue

        if ch == '"':
            end = sql.find('"', position + 1)
            if end == -1:
                raise SqlSyntaxError(
                    f"unterminated quoted identifier at {position}"
                )
            tokens.append(
                Token(IDENTIFIER, sql[position + 1:end].lower(), position)
            )
            position = end + 1
            continue

        if ch == "?":
            tokens.append(Token(PARAMETER, "?", position))
            position += 1
            continue

        for operator in _OPERATORS:
            if sql.startswith(operator, position):
                tokens.append(Token(OPERATOR, operator, position))
                position += len(operator)
                break
        else:
            raise SqlSyntaxError(
                f"unexpected character {ch!r} at position {position}"
            )

    tokens.append(Token(END, "", length))
    return tokens
