"""Recursive-descent parser for the SQL subset.

Grammar highlights (case-insensitive keywords):

- ``CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY] [UNIQUE] [DEFAULT lit], …)``
- ``CREATE INDEX i ON t (col) [USING btree|hash|kmer|suffix] [WITH (k = 8)]``
- ``DROP TABLE [IF EXISTS] t`` / ``DROP INDEX [IF EXISTS] i ON t``
- ``INSERT INTO t [(cols)] VALUES (…), (…)``
- ``UPDATE t SET c = e, … [WHERE e]`` / ``DELETE FROM t [WHERE e]``
- ``SELECT [DISTINCT] items FROM t [alias] [[LEFT] JOIN t2 ON e]*
  [WHERE e] [GROUP BY e, … [HAVING e]] [ORDER BY e [ASC|DESC], …]
  [LIMIT n [OFFSET m]]``
- expressions with ``AND/OR/NOT``, comparisons, ``LIKE``, ``IS [NOT] NULL``,
  ``[NOT] BETWEEN``, ``[NOT] IN (list | subquery)``, ``EXISTS (subquery)``,
  arithmetic, function calls (built-ins, UDFs, aggregates), ``?`` parameters.
"""

from __future__ import annotations

from repro.db.sql import ast
from repro.db.sql.lexer import (
    END,
    IDENTIFIER,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PARAMETER,
    STRING,
    Token,
    tokenize,
)
from repro.errors import SqlSyntaxError

_COMPARISONS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class Parser:
    """One-statement SQL parser."""

    def __init__(self, sql: str) -> None:
        self._tokens = tokenize(sql)
        self._position = 0
        self._parameter_count = 0
        self._sql = sql

    # -- token plumbing ----------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._position + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != END:
            self._position += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(
            f"{message} (near {token.text!r} at position {token.position})"
        )

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._peek().matches(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            wanted = text or kind
            raise self._error(f"expected {wanted!r}")
        return token

    def _expect_identifier(self) -> str:
        return self._expect(IDENTIFIER).text

    # -- entry point ----------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        statement = self._statement()
        self._accept(OPERATOR, ";")
        if not self._peek().matches(END):
            raise self._error("trailing input after statement")
        return statement

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.matches(KEYWORD, "SELECT"):
            return self._select()
        if token.matches(KEYWORD, "CREATE"):
            return self._create()
        if token.matches(KEYWORD, "DROP"):
            return self._drop()
        if token.matches(KEYWORD, "INSERT"):
            return self._insert()
        if token.matches(KEYWORD, "UPDATE"):
            return self._update()
        if token.matches(KEYWORD, "DELETE"):
            return self._delete()
        if token.matches(KEYWORD, "ANALYZE"):
            self._advance()
            return ast.Analyze(self._expect_identifier())
        raise self._error("expected a statement")

    # -- DDL ---------------------------------------------------------------------------

    def _if_not_exists(self) -> bool:
        if self._accept(KEYWORD, "IF"):
            self._expect(KEYWORD, "NOT")
            self._expect(KEYWORD, "EXISTS")
            return True
        return False

    def _create(self) -> ast.Statement:
        self._expect(KEYWORD, "CREATE")
        if self._accept(KEYWORD, "TABLE"):
            if_not_exists = self._if_not_exists()
            name = self._expect_identifier()
            self._expect(OPERATOR, "(")
            columns = [self._column_def()]
            while self._accept(OPERATOR, ","):
                columns.append(self._column_def())
            self._expect(OPERATOR, ")")
            return ast.CreateTable(name, columns, if_not_exists)
        if self._accept(KEYWORD, "INDEX"):
            if_not_exists = self._if_not_exists()
            name = self._expect_identifier()
            self._expect(KEYWORD, "ON")
            table = self._expect_identifier()
            self._expect(OPERATOR, "(")
            column = self._expect_identifier()
            self._expect(OPERATOR, ")")
            using = "btree"
            if self._accept(KEYWORD, "USING"):
                using = self._expect_identifier()
            parameters: dict[str, int] = {}
            if self._accept(KEYWORD, "WITH"):
                self._expect(OPERATOR, "(")
                while True:
                    key = self._expect_identifier()
                    self._expect(OPERATOR, "=")
                    value = self._expect(NUMBER)
                    parameters[key] = int(value.text)
                    if not self._accept(OPERATOR, ","):
                        break
                self._expect(OPERATOR, ")")
            return ast.CreateIndex(
                name, table, column, using, parameters, if_not_exists
            )
        raise self._error("expected TABLE or INDEX after CREATE")

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        type_name = self._expect_identifier()
        # Swallow a parenthesized length, e.g. VARCHAR(80).
        if self._accept(OPERATOR, "("):
            self._expect(NUMBER)
            self._expect(OPERATOR, ")")
        definition = ast.ColumnDef(name, type_name)
        while True:
            if self._accept(KEYWORD, "NOT"):
                self._expect(KEYWORD, "NULL")
                definition.not_null = True
            elif self._accept(KEYWORD, "PRIMARY"):
                self._expect(KEYWORD, "KEY")
                definition.primary_key = True
            elif self._accept(KEYWORD, "UNIQUE"):
                definition.unique = True
            elif self._accept(KEYWORD, "DEFAULT"):
                definition.default = self._literal()
            else:
                return definition

    def _drop(self) -> ast.Statement:
        self._expect(KEYWORD, "DROP")
        if self._accept(KEYWORD, "TABLE"):
            if_exists = bool(self._accept(KEYWORD, "IF"))
            if if_exists:
                self._expect(KEYWORD, "EXISTS")
            return ast.DropTable(self._expect_identifier(), if_exists)
        if self._accept(KEYWORD, "INDEX"):
            if_exists = bool(self._accept(KEYWORD, "IF"))
            if if_exists:
                self._expect(KEYWORD, "EXISTS")
            name = self._expect_identifier()
            self._expect(KEYWORD, "ON")
            table = self._expect_identifier()
            return ast.DropIndex(name, table, if_exists)
        raise self._error("expected TABLE or INDEX after DROP")

    # -- DML -----------------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect(KEYWORD, "INSERT")
        self._expect(KEYWORD, "INTO")
        table = self._expect_identifier()
        columns: list[str] | None = None
        if self._accept(OPERATOR, "("):
            columns = [self._expect_identifier()]
            while self._accept(OPERATOR, ","):
                columns.append(self._expect_identifier())
            self._expect(OPERATOR, ")")
        self._expect(KEYWORD, "VALUES")
        rows = [self._value_row()]
        while self._accept(OPERATOR, ","):
            rows.append(self._value_row())
        return ast.Insert(table, columns, rows)

    def _value_row(self) -> list[ast.Expression]:
        self._expect(OPERATOR, "(")
        row = [self._expression()]
        while self._accept(OPERATOR, ","):
            row.append(self._expression())
        self._expect(OPERATOR, ")")
        return row

    def _update(self) -> ast.Update:
        self._expect(KEYWORD, "UPDATE")
        table = self._expect_identifier()
        self._expect(KEYWORD, "SET")
        assignments = [self._assignment()]
        while self._accept(OPERATOR, ","):
            assignments.append(self._assignment())
        where = self._optional_where()
        return ast.Update(table, assignments, where)

    def _assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_identifier()
        self._expect(OPERATOR, "=")
        return column, self._expression()

    def _delete(self) -> ast.Delete:
        self._expect(KEYWORD, "DELETE")
        self._expect(KEYWORD, "FROM")
        table = self._expect_identifier()
        return ast.Delete(table, self._optional_where())

    def _optional_where(self) -> ast.Expression | None:
        if self._accept(KEYWORD, "WHERE"):
            return self._expression()
        return None

    # -- SELECT -----------------------------------------------------------------------------

    def _select(self) -> ast.Select:
        self._expect(KEYWORD, "SELECT")
        distinct = bool(self._accept(KEYWORD, "DISTINCT"))
        items = [self._select_item()]
        while self._accept(OPERATOR, ","):
            items.append(self._select_item())

        source: ast.TableRef | None = None
        joins: list[ast.Join] = []
        if self._accept(KEYWORD, "FROM"):
            source = self._table_ref()
            while True:
                kind = None
                if self._accept(KEYWORD, "JOIN"):
                    kind = "inner"
                elif self._peek().matches(KEYWORD, "INNER"):
                    self._advance()
                    self._expect(KEYWORD, "JOIN")
                    kind = "inner"
                elif self._peek().matches(KEYWORD, "LEFT"):
                    self._advance()
                    self._accept(KEYWORD, "OUTER")
                    self._expect(KEYWORD, "JOIN")
                    kind = "left"
                if kind is None:
                    break
                table = self._table_ref()
                self._expect(KEYWORD, "ON")
                joins.append(ast.Join(table, self._expression(), kind))

        where = self._optional_where()

        group_by: list[ast.Expression] = []
        having: ast.Expression | None = None
        if self._accept(KEYWORD, "GROUP"):
            self._expect(KEYWORD, "BY")
            group_by.append(self._expression())
            while self._accept(OPERATOR, ","):
                group_by.append(self._expression())
            if self._accept(KEYWORD, "HAVING"):
                having = self._expression()

        order_by: list[ast.OrderItem] = []
        if self._accept(KEYWORD, "ORDER"):
            self._expect(KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(OPERATOR, ","):
                order_by.append(self._order_item())

        limit = offset = None
        if self._accept(KEYWORD, "LIMIT"):
            limit = int(self._expect(NUMBER).text)
            if self._accept(KEYWORD, "OFFSET"):
                offset = int(self._expect(NUMBER).text)

        return ast.Select(
            items=items, source=source, joins=joins, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, offset=offset, distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._accept(OPERATOR, "*"):
            return ast.SelectItem(expression=None)
        expression = self._expression()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._expect_identifier()
        elif self._peek().matches(IDENTIFIER):
            alias = self._advance().text
        return ast.SelectItem(expression, alias)

    def _table_ref(self) -> ast.TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept(KEYWORD, "AS"):
            alias = self._expect_identifier()
        elif self._peek().matches(IDENTIFIER):
            alias = self._advance().text
        return ast.TableRef(name, alias)

    def _order_item(self) -> ast.OrderItem:
        expression = self._expression()
        ascending = True
        if self._accept(KEYWORD, "DESC"):
            ascending = False
        else:
            self._accept(KEYWORD, "ASC")
        return ast.OrderItem(expression, ascending)

    # -- expressions ----------------------------------------------------------------------

    def _expression(self) -> ast.Expression:
        return self._or_expression()

    def _or_expression(self) -> ast.Expression:
        left = self._and_expression()
        while self._accept(KEYWORD, "OR"):
            left = ast.Binary("OR", left, self._and_expression())
        return left

    def _and_expression(self) -> ast.Expression:
        left = self._not_expression()
        while self._accept(KEYWORD, "AND"):
            left = ast.Binary("AND", left, self._not_expression())
        return left

    def _not_expression(self) -> ast.Expression:
        if self._accept(KEYWORD, "NOT"):
            return ast.Unary("NOT", self._not_expression())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        if self._peek().matches(KEYWORD, "EXISTS"):
            self._advance()
            self._expect(OPERATOR, "(")
            select = self._select()
            self._expect(OPERATOR, ")")
            return ast.Exists(select)

        left = self._additive()

        negated = False
        if (self._peek().matches(KEYWORD, "NOT")
                and self._peek(1).kind == KEYWORD
                and self._peek(1).text in ("IN", "BETWEEN", "LIKE")):
            self._advance()
            negated = True

        if self._accept(KEYWORD, "IS"):
            is_not = bool(self._accept(KEYWORD, "NOT"))
            self._expect(KEYWORD, "NULL")
            return ast.IsNull(left, negated=is_not)

        if self._accept(KEYWORD, "BETWEEN"):
            low = self._additive()
            self._expect(KEYWORD, "AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)

        if self._accept(KEYWORD, "IN"):
            self._expect(OPERATOR, "(")
            if self._peek().matches(KEYWORD, "SELECT"):
                select = self._select()
                self._expect(OPERATOR, ")")
                return ast.InSelect(left, select, negated)
            items = [self._expression()]
            while self._accept(OPERATOR, ","):
                items.append(self._expression())
            self._expect(OPERATOR, ")")
            return ast.InList(left, tuple(items), negated)

        if self._accept(KEYWORD, "LIKE"):
            expression = ast.Binary("LIKE", left, self._additive())
            return ast.Unary("NOT", expression) if negated else expression

        for comparison in _COMPARISONS:
            if self._peek().matches(OPERATOR, comparison):
                self._advance()
                return ast.Binary(comparison, left, self._additive())
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            if self._accept(OPERATOR, "+"):
                left = ast.Binary("+", left, self._multiplicative())
            elif self._accept(OPERATOR, "-"):
                left = ast.Binary("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            if self._accept(OPERATOR, "*"):
                left = ast.Binary("*", left, self._unary())
            elif self._accept(OPERATOR, "/"):
                left = ast.Binary("/", left, self._unary())
            elif self._accept(OPERATOR, "%"):
                left = ast.Binary("%", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        if self._accept(OPERATOR, "-"):
            return ast.Unary("-", self._unary())
        return self._primary()

    def _literal(self) -> ast.Literal:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return ast.Literal(value)
        if token.kind == STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.matches(KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches(KEYWORD, "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches(KEYWORD, "FALSE"):
            self._advance()
            return ast.Literal(False)
        raise self._error("expected a literal")

    def _primary(self) -> ast.Expression:
        token = self._peek()

        if token.kind in (NUMBER, STRING) or token.text in (
            "NULL", "TRUE", "FALSE"
        ) and token.kind == KEYWORD:
            return self._literal()

        if token.kind == PARAMETER:
            self._advance()
            parameter = ast.Parameter(self._parameter_count)
            self._parameter_count += 1
            return parameter

        if token.matches(OPERATOR, "("):
            self._advance()
            expression = self._expression()
            self._expect(OPERATOR, ")")
            return expression

        if token.kind == IDENTIFIER:
            name = self._advance().text
            if self._accept(OPERATOR, "("):
                if self._accept(OPERATOR, "*"):
                    self._expect(OPERATOR, ")")
                    return ast.FunctionCall(name, (), star=True)
                args: list[ast.Expression] = []
                if not self._peek().matches(OPERATOR, ")"):
                    args.append(self._expression())
                    while self._accept(OPERATOR, ","):
                        args.append(self._expression())
                self._expect(OPERATOR, ")")
                return ast.FunctionCall(name, tuple(args))
            if self._accept(OPERATOR, "."):
                column = self._expect_identifier()
                return ast.ColumnRef(name, column)
            return ast.ColumnRef(None, name)

        raise self._error("expected an expression")


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return Parser(sql).parse_statement()
