"""Abstract syntax trees for the engine's SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression:
    """Base class of all expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional ``?`` placeholder (0-based index)."""

    index: int

    def __str__(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly table-qualified) column reference."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Unary(Expression):
    operator: str  # '-' or 'NOT'
    operand: Expression

    def __str__(self) -> str:
        if self.operator == "NOT":
            return f"NOT ({self.operand})"
        return f"{self.operator}({self.operand})"


@dataclass(frozen=True)
class Binary(Expression):
    operator: str  # + - * / % = != <> < <= > >= AND OR LIKE
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def __str__(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {tail})"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand} {maybe_not}BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        inner = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {maybe_not}IN ({inner}))"


@dataclass(frozen=True)
class InSelect(Expression):
    operand: Expression
    select: "Select"
    negated: bool = False

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand} {maybe_not}IN (<subquery>))"


@dataclass(frozen=True)
class Exists(Expression):
    select: "Select"
    negated: bool = False

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({maybe_not}EXISTS (<subquery>))"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar UDF or aggregate call; ``star`` marks ``count(*)``."""

    name: str
    args: tuple[Expression, ...]
    star: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class of all statement nodes."""


@dataclass
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Literal | None = None


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef]
    if_not_exists: bool = False


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    column: str
    using: str = "btree"
    parameters: dict[str, int] = field(default_factory=dict)
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class DropIndex(Statement):
    name: str
    table: str
    if_exists: bool = False


@dataclass
class Analyze(Statement):
    """``ANALYZE t`` — collect per-column distinct counts for planning."""

    table: str


@dataclass
class Insert(Statement):
    table: str
    columns: list[str] | None
    rows: list[list[Expression]]


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]]
    where: Expression | None = None


@dataclass
class Delete(Statement):
    table: str
    where: Expression | None = None


@dataclass
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name rows of this table are visible under."""
        return self.alias or self.name


@dataclass
class Join:
    table: TableRef
    condition: Expression
    kind: str = "inner"  # 'inner' or 'left'


@dataclass
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass
class SelectItem:
    """One projection: an expression with an optional alias, or ``*``."""

    expression: Expression | None  # None means '*'
    alias: str | None = None

    @property
    def is_star(self) -> bool:
        return self.expression is None


@dataclass
class Select(Statement):
    items: list[SelectItem]
    source: TableRef | None = None
    joins: list[Join] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


def walk_expression(expression: Expression):
    """Yield every node of an expression tree, pre-order."""
    yield expression
    if isinstance(expression, Unary):
        yield from walk_expression(expression.operand)
    elif isinstance(expression, Binary):
        yield from walk_expression(expression.left)
        yield from walk_expression(expression.right)
    elif isinstance(expression, IsNull):
        yield from walk_expression(expression.operand)
    elif isinstance(expression, Between):
        yield from walk_expression(expression.operand)
        yield from walk_expression(expression.low)
        yield from walk_expression(expression.high)
    elif isinstance(expression, InList):
        yield from walk_expression(expression.operand)
        for item in expression.items:
            yield from walk_expression(item)
    elif isinstance(expression, InSelect):
        yield from walk_expression(expression.operand)
    elif isinstance(expression, FunctionCall):
        for argument in expression.args:
            yield from walk_expression(argument)
