"""Selectivity calibration: measured estimates for genomic predicates.

Section 6.5 asks for "information about the selectivity of genomic
predicates, and cost estimation of access plans containing genomic
operators".  The adapter installs default estimates (e.g. ``contains`` →
0.05); this module replaces defaults with **measured** selectivities for
a concrete workload: probe the predicate against live table data and
write the observed match fraction back into the catalog, where the
planner reads it on the next query.
"""

from __future__ import annotations

from statistics import mean
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import DatabaseError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database


def measure_predicate_selectivity(
    database: "Database",
    table: str,
    predicate_sql: str,
    parameters: Sequence[Any] = (),
) -> float:
    """The observed fraction of *table*'s rows satisfying the predicate."""
    total = database.query(f"SELECT count(*) FROM {table}").scalar()
    if total == 0:
        raise DatabaseError(
            f"cannot measure selectivity on empty table {table!r}"
        )
    matched = database.query(
        f"SELECT count(*) FROM {table} WHERE {predicate_sql}",
        parameters,
    ).scalar()
    return matched / total


def calibrate_function_selectivity(
    database: "Database",
    function_name: str,
    table: str,
    column: str,
    probe_values: Sequence[Any],
    update_catalog: bool = True,
) -> float:
    """Measure a boolean UDF's selectivity over representative probes.

    Runs ``function(column, probe)`` for every probe value, averages the
    observed match fractions, and (by default) re-registers the function
    with the measured estimate so subsequent plans are priced with it.
    Returns the measured selectivity.
    """
    if not probe_values:
        raise DatabaseError("calibration needs at least one probe value")
    observed = [
        measure_predicate_selectivity(
            database, table, f"{function_name}({column}, ?)", [probe]
        )
        for probe in probe_values
    ]
    selectivity = min(1.0, max(0.0, mean(observed)))
    if update_catalog:
        descriptor = database.catalog.function(function_name)
        database.catalog.register_function(
            descriptor.name,
            descriptor.function,
            selectivity=selectivity,
            description=(descriptor.description
                         + f" [calibrated on {table}.{column}]").strip(),
            replace=True,
        )
    return selectivity
