"""Rule-based planner/optimizer with genomic selectivity estimation.

Section 6.5 of the paper asks for "optimisation rules for genomic data,
information about the selectivity of genomic predicates, and cost
estimation of access plans containing genomic operators".  This planner
implements the rules that matter for the paper's workloads:

- **predicate pushdown** — WHERE conjuncts are applied at the deepest
  operator that binds all their columns;
- **index selection** — equality/range conjuncts pick hash/B-tree
  indexes; ``contains(column, pattern)`` picks a genomic k-mer or
  suffix-array index (the candidate set is re-verified by a residual
  filter, so over-approximation stays sound);
- **selectivity-based choice** — each registered UDF predicate carries a
  selectivity estimate (see :class:`~repro.db.catalog.SqlFunction`);
  together with fixed estimates for comparison shapes it prices
  candidate access paths and the cheapest wins;
- **hash vs. nested-loop joins** — inner equi-joins become hash joins,
  everything else nested loops.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable

from repro.db.columnar.vector import KERNELS
from repro.db.sql import ast
from repro.db.sql.expressions import NATIVE_AGGREGATES, Evaluator, Frame
from repro.db.sql.plan import (
    Aggregate,
    ColumnarScan,
    Distinct,
    Filter,
    HashJoin,
    IndexContainsScan,
    IndexEqualScan,
    IndexRangeScan,
    Limit,
    NestedLoopJoin,
    OneRow,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    VectorAggregate,
)
from repro.db.table import Table
from repro.errors import CatalogError, SqlSyntaxError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database

#: Default selectivity estimates by predicate shape (section 6.5).
EQUALITY_SELECTIVITY = 0.05
RANGE_SELECTIVITY = 0.25
LIKE_SELECTIVITY = 0.25
DEFAULT_PREDICATE_SELECTIVITY = 0.33
#: Fallback for boolean UDFs without a registered estimate.
DEFAULT_UDF_SELECTIVITY = 0.10


def split_conjuncts(expression: ast.Expression | None) -> list[ast.Expression]:
    """Flatten a WHERE tree into its top-level AND conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.Binary) and expression.operator == "AND":
        return (split_conjuncts(expression.left)
                + split_conjuncts(expression.right))
    return [expression]


def conjoin(conjuncts: Iterable[ast.Expression]) -> ast.Expression | None:
    """Rebuild an AND tree (or ``None`` for an empty list)."""
    result: ast.Expression | None = None
    for conjunct in conjuncts:
        result = (conjunct if result is None
                  else ast.Binary("AND", result, conjunct))
    return result


class Planner:
    """Builds an executable plan from a parsed SELECT.

    With ``optimize=False`` every rule above is disabled — sequential
    scans, no predicate pushdown, nested-loop joins only — which gives
    the differential test suite a naive oracle plan for every query the
    optimizer handles; both plans must return the same multiset of rows.
    """

    def __init__(self, database: "Database", optimize: bool = True) -> None:
        self._database = database
        self._evaluator = Evaluator(database)
        self.optimize = optimize

    # ------------------------------------------------------------------ helpers

    def _bindings_of(
        self,
        expression: ast.Expression,
        schemas: dict[str, Table],
    ) -> "set[str] | None":
        """Binding names an expression touches; ``None`` = unresolvable.

        Unqualified columns are attributed by searching the schemas; a
        name matching several bindings (or none — it may belong to an
        outer query) makes the expression non-pushable, reported as
        ``None``.
        """
        found: set[str] = set()
        for node in ast.walk_expression(expression):
            if isinstance(node, (ast.InSelect, ast.Exists)):
                return None  # subqueries are never pushed into scans
            if not isinstance(node, ast.ColumnRef):
                continue
            if node.table is not None:
                if node.table not in schemas:
                    return None
                found.add(node.table)
                continue
            owners = [
                binding for binding, table in schemas.items()
                if table.schema.has_column(node.column)
            ]
            if len(owners) != 1:
                return None
            found.add(owners[0])
        return found

    def _equality_selectivity(
        self,
        conjunct: ast.Binary,
        schemas: "dict[str, Table] | None",
    ) -> float:
        """Equality selectivity: ``1/ndistinct`` after ANALYZE, else the
        fixed default (section 6.5's statistics hook)."""
        if schemas:
            for side in (conjunct.left, conjunct.right):
                if not isinstance(side, ast.ColumnRef):
                    continue
                owners = [
                    table for binding, table in schemas.items()
                    if (side.table is None or side.table == binding)
                    and table.schema.has_column(side.column)
                ]
                if len(owners) != 1:
                    continue
                table = owners[0]
                stats = table.statistics
                if stats and stats.get(side.column, 0) > 0:
                    floor = 1.0 / max(1, len(table))
                    return min(1.0, max(floor,
                                        1.0 / stats[side.column]))
        return EQUALITY_SELECTIVITY

    def _selectivity(
        self,
        conjunct: ast.Expression,
        schemas: "dict[str, Table] | None" = None,
    ) -> float:
        if isinstance(conjunct, ast.Binary):
            if conjunct.operator == "=":
                return self._equality_selectivity(conjunct, schemas)
            if conjunct.operator in ("<", "<=", ">", ">="):
                return RANGE_SELECTIVITY
            if conjunct.operator == "LIKE":
                return LIKE_SELECTIVITY
        if isinstance(conjunct, ast.Between):
            return RANGE_SELECTIVITY
        if isinstance(conjunct, ast.FunctionCall):
            try:
                descriptor = self._database.catalog.function(conjunct.name)
            except CatalogError:
                return DEFAULT_PREDICATE_SELECTIVITY
            if descriptor.selectivity is not None:
                return descriptor.selectivity
            return DEFAULT_UDF_SELECTIVITY
        return DEFAULT_PREDICATE_SELECTIVITY

    # --------------------------------------------------------------- access paths

    def _column_of(self, expression: ast.Expression, binding: str,
                   table: Table) -> str | None:
        """The column name if *expression* is a reference into *binding*."""
        if not isinstance(expression, ast.ColumnRef):
            return None
        if expression.table is not None and expression.table != binding:
            return None
        if not table.schema.has_column(expression.column):
            return None
        return expression.column

    def _expression_is_independent(
        self, expression: ast.Expression, schemas: dict[str, Table]
    ) -> bool:
        """True when the expression uses no columns of this query level."""
        bindings = self._bindings_of(expression, schemas)
        return bindings == set()

    def _try_index_path(
        self,
        table: Table,
        binding: str,
        conjuncts: list[ast.Expression],
        schemas: dict[str, Table],
    ) -> tuple[PlanNode, list[ast.Expression]] | None:
        """Try to satisfy one conjunct with an index; returns (plan, rest)."""
        candidates: list[tuple[float, PlanNode, list[ast.Expression]]] = []
        base_rows = max(1.0, float(len(table)))

        for position, conjunct in enumerate(conjuncts):
            rest = conjuncts[:position] + conjuncts[position + 1:]

            # Equality:  col = value  /  value = col
            if (isinstance(conjunct, ast.Binary)
                    and conjunct.operator == "="):
                for column_side, value_side in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    column = self._column_of(column_side, binding, table)
                    if column is None:
                        continue
                    if not self._expression_is_independent(value_side,
                                                           schemas):
                        continue
                    for index in table.indexes_on(column):
                        if index.supports_equality:
                            plan = IndexEqualScan(
                                table, binding, index, value_side,
                                self._evaluator,
                            )
                            plan.estimated_rows = (
                                base_rows
                                * self._selectivity(conjunct, schemas)
                            )
                            candidates.append(
                                (plan.estimated_rows, plan, rest)
                            )
                            break

            # Range:  col < value  etc., and BETWEEN.
            range_spec = None
            if (isinstance(conjunct, ast.Binary)
                    and conjunct.operator in ("<", "<=", ">", ">=")):
                column = self._column_of(conjunct.left, binding, table)
                value = conjunct.right
                operator = conjunct.operator
                if column is None:
                    column = self._column_of(conjunct.right, binding, table)
                    value = conjunct.left
                    # Mirror the operator when the column is on the right.
                    operator = {"<": ">", "<=": ">=",
                                ">": "<", ">=": "<="}[operator]
                if (column is not None
                        and self._expression_is_independent(value, schemas)):
                    if operator in ("<", "<="):
                        range_spec = (column, None, value, True,
                                      operator == "<=")
                    else:
                        range_spec = (column, value, None,
                                      operator == ">=", True)
            elif isinstance(conjunct, ast.Between) and not conjunct.negated:
                column = self._column_of(conjunct.operand, binding, table)
                if (column is not None
                        and self._expression_is_independent(conjunct.low,
                                                            schemas)
                        and self._expression_is_independent(conjunct.high,
                                                            schemas)):
                    range_spec = (column, conjunct.low, conjunct.high,
                                  True, True)
            if range_spec is not None:
                column, low, high, include_low, include_high = range_spec
                for index in table.indexes_on(column):
                    if index.supports_range:
                        plan = IndexRangeScan(
                            table, binding, index, self._evaluator,
                            low, high, include_low, include_high,
                        )
                        plan.estimated_rows = base_rows * RANGE_SELECTIVITY
                        candidates.append((plan.estimated_rows, plan, rest))
                        break

            # Genomic contains(col, pattern): candidate fetch + re-check.
            if (isinstance(conjunct, ast.FunctionCall)
                    and conjunct.name.lower() == "contains"
                    and len(conjunct.args) == 2):
                column = self._column_of(conjunct.args[0], binding, table)
                pattern = conjunct.args[1]
                if (column is not None
                        and self._expression_is_independent(pattern,
                                                            schemas)):
                    for index in table.indexes_on(column):
                        if index.supports_contains:
                            plan = IndexContainsScan(
                                table, binding, index, pattern,
                                self._evaluator,
                            )
                            selectivity = self._selectivity(conjunct)
                            plan.estimated_rows = base_rows * selectivity
                            # The predicate must be re-checked: candidate
                            # sets over-approximate.
                            candidates.append(
                                (plan.estimated_rows, plan, conjuncts)
                            )
                            break

        if not candidates:
            return None
        candidates.sort(key=lambda entry: entry[0])
        _, plan, rest = candidates[0]
        return plan, rest

    def _zone_bound(
        self,
        conjunct: ast.Expression,
        binding: str,
        table: Table,
        schemas: dict[str, Table],
    ) -> "tuple | None":
        """A zone-map bound spec for one comparison conjunct, or None.

        Returns ``(position, low, include_low, high, include_high)``
        with expression bounds; the scan evaluates them at execute time.
        The conjunct itself always stays in a Filter above — zone maps
        only skip whole row groups, they never decide individual rows.
        """
        if isinstance(conjunct, ast.Binary) and conjunct.operator == "=":
            for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                column = self._column_of(column_side, binding, table)
                if (column is not None
                        and self._expression_is_independent(value_side,
                                                            schemas)):
                    position = table.schema.position(column)
                    return (position, value_side, True, value_side, True)
            return None
        if (isinstance(conjunct, ast.Binary)
                and conjunct.operator in ("<", "<=", ">", ">=")):
            column = self._column_of(conjunct.left, binding, table)
            value = conjunct.right
            operator = conjunct.operator
            if column is None:
                column = self._column_of(conjunct.right, binding, table)
                value = conjunct.left
                operator = {"<": ">", "<=": ">=",
                            ">": "<", ">=": "<="}[operator]
            if (column is None
                    or not self._expression_is_independent(value, schemas)):
                return None
            position = table.schema.position(column)
            if operator in ("<", "<="):
                return (position, None, True, value, operator == "<=")
            return (position, value, operator == ">=", None, True)
        if isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = self._column_of(conjunct.operand, binding, table)
            if (column is not None
                    and self._expression_is_independent(conjunct.low,
                                                        schemas)
                    and self._expression_is_independent(conjunct.high,
                                                        schemas)):
                return (table.schema.position(column),
                        conjunct.low, True, conjunct.high, True)
        return None

    def _kernel_spec(
        self,
        call: ast.FunctionCall,
        scan: ColumnarScan,
        schemas: dict[str, Table],
    ) -> "tuple | None":
        """(kernel, function, position, extras) when *call* vectorizes.

        Eligible: a non-aggregate call to a catalog function whose
        registration carries a ``kernel=`` tag, first argument a column
        of the scanned table, remaining arguments independent of this
        query level.
        """
        if call.star or not call.args:
            return None
        if self._evaluator.is_aggregate_call(call):
            return None
        try:
            descriptor = self._database.catalog.function(call.name)
        except CatalogError:
            return None
        if descriptor.kernel is None or descriptor.kernel not in KERNELS:
            return None
        column = self._column_of(call.args[0], scan.binding, scan.table)
        if column is None:
            return None
        for extra in call.args[1:]:
            if not self._expression_is_independent(extra, schemas):
                return None
        return (descriptor.kernel, call.name.lower(),
                scan.table.schema.position(column), tuple(call.args[1:]))

    def _rewrite_kernel_calls(
        self,
        expression: ast.Expression,
        scan: ColumnarScan,
        schemas: dict[str, Table],
    ) -> ast.Expression:
        """Replace kernel-taggable calls with scan kernel-slot columns.

        Arguments rewrite first, so nested calls vectorize inside-out:
        the innermost eligible call becomes a synthetic column and the
        enclosing call (now over a non-schema column) stays row-at-a-time
        against the slot value.
        """
        def rebuild(node: ast.Expression) -> ast.Expression:
            return self._rewrite_kernel_calls(node, scan, schemas)

        if isinstance(expression, ast.Unary):
            return ast.Unary(expression.operator,
                             rebuild(expression.operand))
        if isinstance(expression, ast.Binary):
            return ast.Binary(expression.operator,
                              rebuild(expression.left),
                              rebuild(expression.right))
        if isinstance(expression, ast.IsNull):
            return ast.IsNull(rebuild(expression.operand),
                              expression.negated)
        if isinstance(expression, ast.Between):
            return ast.Between(rebuild(expression.operand),
                               rebuild(expression.low),
                               rebuild(expression.high),
                               expression.negated)
        if isinstance(expression, ast.InList):
            return ast.InList(rebuild(expression.operand),
                              tuple(rebuild(item)
                                    for item in expression.items),
                              expression.negated)
        if isinstance(expression, ast.FunctionCall):
            call = ast.FunctionCall(
                expression.name,
                tuple(rebuild(argument) for argument in expression.args),
                expression.star,
            )
            spec = self._kernel_spec(call, scan, schemas)
            if spec is not None:
                kernel, function_name, position, _ = spec
                name = scan.ensure_kernel_slot(call, kernel,
                                               function_name, position)
                return ast.ColumnRef(None, name)
            return call
        return expression

    def _access_path(
        self,
        table: Table,
        binding: str,
        conjuncts: list[ast.Expression],
        schemas: dict[str, Table],
    ) -> PlanNode:
        """Best single-table plan for *table* given its local conjuncts."""
        indexed = (self._try_index_path(table, binding, conjuncts, schemas)
                   if self.optimize else None)
        if indexed is not None:
            plan, remaining = indexed
        elif self.optimize and table.column_store is not None:
            scan = ColumnarScan(table, binding, self._evaluator,
                                self._database.catalog)
            for conjunct in conjuncts:
                bound = self._zone_bound(conjunct, binding, table, schemas)
                if bound is not None:
                    scan.add_bound(*bound)
            # Kernel slots must all exist before any Filter captures the
            # scan frame, hence the two passes.
            remaining = [self._rewrite_kernel_calls(conjunct, scan, schemas)
                         for conjunct in conjuncts]
            plan = scan
        else:
            plan = SeqScan(table, binding)
            remaining = conjuncts
        estimated = plan.estimated_rows
        for conjunct in remaining:
            plan = Filter(plan, conjunct, self._evaluator)
            estimated *= self._selectivity(conjunct, schemas)
            plan.estimated_rows = estimated
        return plan

    # --------------------------------------------------------------------- joins

    def _split_equi_condition(
        self,
        condition: ast.Expression,
        left_frame: Frame,
        right_binding: str,
        schemas: dict[str, Table],
    ) -> tuple[ast.Expression, ast.Expression, ast.Expression | None] | None:
        """Find ``left_key = right_key`` in the join condition.

        Returns (left key, right key, residual) or ``None``.
        """
        left_bindings = set(left_frame.bindings())
        conjuncts = split_conjuncts(condition)
        for position, conjunct in enumerate(conjuncts):
            if not (isinstance(conjunct, ast.Binary)
                    and conjunct.operator == "="):
                continue
            sides = {}
            for label, expression in (("a", conjunct.left),
                                      ("b", conjunct.right)):
                bindings = self._bindings_of(expression, schemas)
                if bindings is None or not bindings:
                    sides = {}
                    break
                if bindings <= left_bindings:
                    sides[label] = ("left", expression)
                elif bindings == {right_binding}:
                    sides[label] = ("right", expression)
                else:
                    sides = {}
                    break
            if len(sides) != 2:
                continue
            placements = {side for side, _ in sides.values()}
            if placements != {"left", "right"}:
                continue
            left_key = next(e for s, e in sides.values() if s == "left")
            right_key = next(e for s, e in sides.values() if s == "right")
            residual = conjoin(conjuncts[:position]
                               + conjuncts[position + 1:])
            return left_key, right_key, residual
        return None

    # --------------------------------------------------------------- aggregation

    def _collect_aggregates(
        self, expressions: Iterable[ast.Expression]
    ) -> list[ast.FunctionCall]:
        calls: dict[str, ast.FunctionCall] = {}
        for expression in expressions:
            for node in ast.walk_expression(expression):
                if (isinstance(node, ast.FunctionCall)
                        and self._evaluator.is_aggregate_call(node)):
                    calls.setdefault(str(node), node)
        return list(calls.values())

    def _rewrite_for_aggregate(
        self,
        expression: ast.Expression,
        group_map: dict[str, str],
        aggregate_names: set[str],
    ) -> ast.Expression:
        """Replace group expressions / aggregate calls with frame columns."""
        key = str(expression)
        if key in group_map:
            return ast.ColumnRef(None, group_map[key])
        if key in aggregate_names and isinstance(expression,
                                                 ast.FunctionCall):
            return ast.ColumnRef(None, key)

        rebuild = self._rewrite_for_aggregate
        if isinstance(expression, ast.Unary):
            return ast.Unary(
                expression.operator,
                rebuild(expression.operand, group_map, aggregate_names),
            )
        if isinstance(expression, ast.Binary):
            return ast.Binary(
                expression.operator,
                rebuild(expression.left, group_map, aggregate_names),
                rebuild(expression.right, group_map, aggregate_names),
            )
        if isinstance(expression, ast.IsNull):
            return ast.IsNull(
                rebuild(expression.operand, group_map, aggregate_names),
                expression.negated,
            )
        if isinstance(expression, ast.Between):
            return ast.Between(
                rebuild(expression.operand, group_map, aggregate_names),
                rebuild(expression.low, group_map, aggregate_names),
                rebuild(expression.high, group_map, aggregate_names),
                expression.negated,
            )
        if isinstance(expression, ast.InList):
            return ast.InList(
                rebuild(expression.operand, group_map, aggregate_names),
                tuple(rebuild(item, group_map, aggregate_names)
                      for item in expression.items),
                expression.negated,
            )
        if isinstance(expression, ast.FunctionCall):
            return ast.FunctionCall(
                expression.name,
                tuple(rebuild(argument, group_map, aggregate_names)
                      for argument in expression.args),
                expression.star,
            )
        return expression

    def _vector_spec(
        self,
        call: ast.FunctionCall,
        scan: ColumnarScan,
        schemas: dict[str, Table],
    ) -> "tuple | None":
        """A :class:`VectorAggregate` spec for *call*, or None.

        Supported: native aggregates over ``*``, a scanned column, or a
        kernel-taggable function call of one.  Invalid shapes (``sum(*)``,
        wrong arity) return None so the row-at-a-time Aggregate raises
        its usual errors.
        """
        name = call.name.lower()
        if name not in NATIVE_AGGREGATES:
            return None
        if call.star:
            return ("star",) if name == "count" else None
        if len(call.args) != 1:
            return None
        argument = call.args[0]
        if isinstance(argument, ast.ColumnRef):
            column = self._column_of(argument, scan.binding, scan.table)
            if column is None:
                return None
            return ("column", scan.table.schema.position(column))
        if isinstance(argument, ast.FunctionCall):
            spec = self._kernel_spec(argument, scan, schemas)
            if spec is None:
                return None
            kernel, function_name, position, extras = spec
            return ("kernel", kernel, function_name, position, extras)
        return None

    def _vectorize_projection(
        self,
        plan: PlanNode,
        items: list,
        order_items: list,
        schemas: dict[str, Table],
    ) -> tuple:
        """Vectorize kernel calls in the projection and ORDER BY.

        Only applies when the plan is a Filter chain over a
        :class:`ColumnarScan`.  New kernel slots widen the scan frame,
        so the Filter chain is rebuilt to re-capture it (Filters alias
        their child's frame at construction).
        """
        filters = []
        node = plan
        while isinstance(node, Filter):
            filters.append(node)
            node = node.child
        if not isinstance(node, ColumnarScan):
            return plan, items, order_items
        scan = node
        before = len(scan.kernel_slots)
        items = [(self._rewrite_kernel_calls(expression, scan, schemas),
                  name)
                 for expression, name in items]
        order_items = [
            ast.OrderItem(
                self._rewrite_kernel_calls(item.expression, scan, schemas),
                item.ascending,
            )
            for item in order_items
        ]
        if len(scan.kernel_slots) != before and filters:
            rebuilt: PlanNode = scan
            for stale in reversed(filters):
                fresh = Filter(rebuilt, stale.predicate, self._evaluator)
                fresh.estimated_rows = stale.estimated_rows
                rebuilt = fresh
            return rebuilt, items, order_items
        return plan, items, order_items

    # ----------------------------------------------------------------- the plan

    def plan_select(self, select: ast.Select) -> PlanNode:
        if select.source is None:
            if select.joins or select.group_by or select.having:
                raise SqlSyntaxError("FROM clause required here")
            plan: PlanNode = OneRow()
            schemas: dict[str, Table] = {}
            for conjunct in split_conjuncts(select.where):
                plan = Filter(plan, conjunct, self._evaluator)
        else:
            schemas = {}
            source_table = self._database.catalog.table(select.source.name)
            schemas[select.source.binding] = source_table
            for join in select.joins:
                if join.table.binding in schemas:
                    raise SqlSyntaxError(
                        f"duplicate table binding {join.table.binding!r}"
                    )
                schemas[join.table.binding] = (
                    self._database.catalog.table(join.table.name)
                )

            conjuncts = split_conjuncts(select.where)
            pushable: dict[str, list[ast.Expression]] = {
                binding: [] for binding in schemas
            }
            leftover: list[ast.Expression] = []
            has_left_join = any(j.kind == "left" for j in select.joins)
            for conjunct in conjuncts:
                bindings = self._bindings_of(conjunct, schemas)
                if (self.optimize
                        and bindings is not None and len(bindings) == 1
                        and not self._evaluator.contains_aggregate(conjunct)):
                    owner = next(iter(bindings))
                    # Pushing below a LEFT JOIN changes semantics for the
                    # right side; only the leftmost table is always safe.
                    if has_left_join and owner != select.source.binding:
                        leftover.append(conjunct)
                    else:
                        pushable[owner].append(conjunct)
                else:
                    leftover.append(conjunct)

            plan = self._access_path(
                source_table, select.source.binding,
                pushable[select.source.binding], schemas,
            )

            for join in select.joins:
                right_table = schemas[join.table.binding]
                right_plan = self._access_path(
                    right_table, join.table.binding,
                    pushable[join.table.binding], schemas,
                )
                equi = None
                if self.optimize and join.kind == "inner":
                    equi = self._split_equi_condition(
                        join.condition, plan.frame,
                        join.table.binding, schemas,
                    )
                if equi is not None:
                    left_key, right_key, residual = equi
                    joined: PlanNode = HashJoin(
                        plan, right_plan, left_key, right_key,
                        self._evaluator, join.kind, residual,
                        runtime=self._database.columnar,
                    )
                else:
                    joined = NestedLoopJoin(
                        plan, right_plan, join.condition,
                        self._evaluator, join.kind,
                        runtime=self._database.columnar,
                    )
                joined.estimated_rows = max(
                    plan.estimated_rows, right_plan.estimated_rows
                )
                plan = joined

            for conjunct in leftover:
                filtered = Filter(plan, conjunct, self._evaluator)
                filtered.estimated_rows = (
                    plan.estimated_rows * self._selectivity(conjunct)
                )
                plan = filtered

        # -- projection bookkeeping ------------------------------------------

        items: list[tuple[ast.Expression, str]] = []
        for item in select.items:
            if item.is_star:
                if select.source is None:
                    raise SqlSyntaxError("SELECT * requires a FROM clause")
                for binding, column in plan.frame.slots:
                    if binding is None:
                        continue  # synthetic kernel slots are not columns
                    items.append(
                        (ast.ColumnRef(binding, column), column)
                    )
                continue
            expression = item.expression
            assert expression is not None
            if item.alias:
                name = item.alias
            elif isinstance(expression, ast.ColumnRef):
                name = expression.column
            else:
                name = str(expression)
            items.append((expression, name))

        alias_map = {
            name: expression for expression, name in items
            if not isinstance(expression, ast.ColumnRef)
            or expression.column != name
        }

        def substitute_alias(expression: ast.Expression) -> ast.Expression:
            if (isinstance(expression, ast.ColumnRef)
                    and expression.table is None
                    and expression.column in alias_map):
                return alias_map[expression.column]
            return expression

        order_items = [
            ast.OrderItem(substitute_alias(item.expression), item.ascending)
            for item in select.order_by
        ]
        having = select.having

        # -- aggregation --------------------------------------------------------

        aggregate_calls = self._collect_aggregates(
            [expression for expression, _ in items]
            + ([having] if having is not None else [])
            + [item.expression for item in order_items]
        )
        needs_aggregate = bool(select.group_by) or bool(aggregate_calls)

        if needs_aggregate:
            group_map = {
                str(expression): f"__group_{index}"
                for index, expression in enumerate(select.group_by)
            }
            aggregate_names = {str(call) for call in aggregate_calls}
            aggregated: PlanNode | None = None
            if (self.optimize and not select.group_by and aggregate_calls
                    and isinstance(plan, ColumnarScan)
                    and not plan.bounds and not plan.kernel_slots):
                specs = [self._vector_spec(call, plan, schemas)
                         for call in aggregate_calls]
                if all(spec is not None for spec in specs):
                    aggregated = VectorAggregate(
                        plan, aggregate_calls, self._evaluator,
                        self._database, specs,
                    )
            if aggregated is None:
                aggregated = Aggregate(
                    plan, select.group_by, aggregate_calls,
                    self._evaluator, self._database,
                    runtime=self._database.columnar,
                )
            plan = aggregated
            plan.estimated_rows = max(
                1.0, plan.children()[0].estimated_rows / 10.0
            )
            items = [
                (self._rewrite_for_aggregate(expression, group_map,
                                             aggregate_names), name)
                for expression, name in items
            ]
            if having is not None:
                having = self._rewrite_for_aggregate(
                    having, group_map, aggregate_names
                )
                plan = Filter(plan, having, self._evaluator)
            order_items = [
                ast.OrderItem(
                    self._rewrite_for_aggregate(item.expression, group_map,
                                                aggregate_names),
                    item.ascending,
                )
                for item in order_items
            ]
        elif having is not None:
            raise SqlSyntaxError("HAVING requires GROUP BY or aggregates")
        elif self.optimize and select.source is not None and not select.joins:
            plan, items, order_items = self._vectorize_projection(
                plan, items, order_items, schemas,
            )

        if order_items:
            plan = Sort(plan, order_items, self._evaluator,
                        runtime=self._database.columnar)

        project = Project(plan, items, self._evaluator)
        project.estimated_rows = plan.estimated_rows
        plan = project

        if select.distinct:
            plan = Distinct(plan)
        if select.limit is not None or select.offset is not None:
            plan = Limit(plan, select.limit, select.offset)
        return plan


@dataclasses.dataclass
class ExplainedPlan:
    """EXPLAIN output: the textual tree plus the root node."""

    text: str
    root: PlanNode
