"""Physical plan operators: the executor half of the query engine.

Every node produces an iterator of value tuples described by its
:class:`~repro.db.sql.expressions.Frame`.  Nodes carry the optimizer's
row estimate so ``EXPLAIN`` output shows both the shape and the numbers
the planner believed.

Operator set: sequential scan, three index scans (equality / range /
contains-candidate), filter, nested-loop and hash joins (inner + left),
grouping/aggregation, projection, distinct, sort, limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.db.sql import ast
from repro.db.sql.expressions import (
    NATIVE_AGGREGATES,
    Evaluator,
    Frame,
    RowContext,
)
from repro.db.table import Table
from repro.db.values import NULL, sort_key
from repro.errors import DatabaseError, SqlSyntaxError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.index.base import Index


class PlanNode:
    """Base plan operator."""

    frame: Frame
    estimated_rows: float = 0.0

    def execute(self, parameters: Sequence[Any],
                outer: "RowContext | None") -> Iterator[tuple]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.label()}  "
                 f"(~{self.estimated_rows:.0f} rows)"]
        lines.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(lines)

    def _context(self, values: Sequence[Any], parameters: Sequence[Any],
                 outer: "RowContext | None") -> RowContext:
        return RowContext(self.frame, values, parameters, outer)


class SeqScan(PlanNode):
    """Full scan of a base table."""

    def __init__(self, table: Table, binding: str) -> None:
        self.table = table
        self.binding = binding
        self.frame = Frame.for_table(binding, table.schema.column_names)
        self.estimated_rows = float(len(table))

    def label(self) -> str:
        return f"SeqScan({self.table.name} AS {self.binding})"

    def execute(self, parameters, outer) -> Iterator[tuple]:
        for _, row in self.table.rows():
            yield tuple(row)


class IndexEqualScan(PlanNode):
    """Equality probe through a hash or B-tree index."""

    def __init__(self, table: Table, binding: str, index: "Index",
                 key: ast.Expression, evaluator: Evaluator) -> None:
        self.table = table
        self.binding = binding
        self.index = index
        self.key = key
        self.evaluator = evaluator
        self.frame = Frame.for_table(binding, table.schema.column_names)

    def label(self) -> str:
        return (f"IndexEqualScan({self.table.name} AS {self.binding} "
                f"USING {self.index.name} ON {self.index.column} = {self.key})")

    def execute(self, parameters, outer) -> Iterator[tuple]:
        probe_context = RowContext(Frame(()), (), parameters, outer)
        key = self.evaluator.evaluate(self.key, probe_context)
        for row_id in self.index.search_equal(key):
            if self.table.has_row(row_id):
                yield tuple(self.table.row(row_id))


class IndexRangeScan(PlanNode):
    """Range scan through a B-tree index."""

    def __init__(
        self,
        table: Table,
        binding: str,
        index: "Index",
        evaluator: Evaluator,
        low: ast.Expression | None = None,
        high: ast.Expression | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> None:
        self.table = table
        self.binding = binding
        self.index = index
        self.evaluator = evaluator
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.frame = Frame.for_table(binding, table.schema.column_names)

    def label(self) -> str:
        low = str(self.low) if self.low is not None else "-inf"
        high = str(self.high) if self.high is not None else "+inf"
        return (f"IndexRangeScan({self.table.name} AS {self.binding} "
                f"USING {self.index.name} ON {self.index.column} "
                f"IN {'[' if self.include_low else '('}{low}, {high}"
                f"{']' if self.include_high else ')'})")

    def execute(self, parameters, outer) -> Iterator[tuple]:
        probe_context = RowContext(Frame(()), (), parameters, outer)
        low = (self.evaluator.evaluate(self.low, probe_context)
               if self.low is not None else None)
        high = (self.evaluator.evaluate(self.high, probe_context)
                if self.high is not None else None)
        for row_id in self.index.search_range(
            low, high, self.include_low, self.include_high
        ):
            if self.table.has_row(row_id):
                yield tuple(self.table.row(row_id))


class IndexContainsScan(PlanNode):
    """Candidate fetch through a genomic (k-mer / suffix) index.

    Produces the index's candidate rows; the enclosing
    :class:`Filter` re-checks the real predicate, so over-approximate
    candidate sets stay correct.
    """

    def __init__(self, table: Table, binding: str, index: "Index",
                 pattern: ast.Expression, evaluator: Evaluator) -> None:
        self.table = table
        self.binding = binding
        self.index = index
        self.pattern = pattern
        self.evaluator = evaluator
        self.frame = Frame.for_table(binding, table.schema.column_names)

    def label(self) -> str:
        return (f"IndexContainsScan({self.table.name} AS {self.binding} "
                f"USING {self.index.name} PATTERN {self.pattern})")

    def execute(self, parameters, outer) -> Iterator[tuple]:
        probe_context = RowContext(Frame(()), (), parameters, outer)
        pattern = self.evaluator.evaluate(self.pattern, probe_context)
        candidates = self.index.search_contains(str(pattern))
        if candidates is None:
            for _, row in self.table.rows():
                yield tuple(row)
            return
        for row_id in sorted(candidates):
            if self.table.has_row(row_id):
                yield tuple(self.table.row(row_id))


class OneRow(PlanNode):
    """Produces a single empty row (for ``SELECT expr`` without FROM)."""

    def __init__(self) -> None:
        self.frame = Frame(())
        self.estimated_rows = 1.0

    def execute(self, parameters, outer) -> Iterator[tuple]:
        yield ()


class Filter(PlanNode):
    """Keeps rows whose predicate evaluates to true."""

    def __init__(self, child: PlanNode, predicate: ast.Expression,
                 evaluator: Evaluator) -> None:
        self.child = child
        self.predicate = predicate
        self.evaluator = evaluator
        self.frame = child.frame

    def label(self) -> str:
        return f"Filter({self.predicate})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        for values in self.child.execute(parameters, outer):
            context = self._context(values, parameters, outer)
            if self.evaluator.evaluate_predicate(self.predicate, context):
                yield values


class NestedLoopJoin(PlanNode):
    """General join: re-evaluates the condition per row pair."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 condition: ast.Expression, evaluator: Evaluator,
                 kind: str = "inner") -> None:
        if kind not in ("inner", "left"):
            raise DatabaseError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.evaluator = evaluator
        self.kind = kind
        self.frame = left.frame + right.frame

    def label(self) -> str:
        return f"NestedLoopJoin[{self.kind}]({self.condition})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        right_rows = list(self.right.execute(parameters, outer))
        null_pad = (NULL,) * len(self.right.frame)
        for left_values in self.left.execute(parameters, outer):
            matched = False
            for right_values in right_rows:
                combined = left_values + right_values
                context = self._context(combined, parameters, outer)
                if self.evaluator.evaluate_predicate(self.condition, context):
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield left_values + null_pad


class HashJoin(PlanNode):
    """Equi-join: builds a hash table on the right input."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: ast.Expression,
        right_key: ast.Expression,
        evaluator: Evaluator,
        kind: str = "inner",
        residual: ast.Expression | None = None,
    ) -> None:
        if kind not in ("inner", "left"):
            raise DatabaseError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.evaluator = evaluator
        self.kind = kind
        self.residual = residual
        self.frame = left.frame + right.frame

    def label(self) -> str:
        residual = f" AND {self.residual}" if self.residual else ""
        return (f"HashJoin[{self.kind}]({self.left_key} = "
                f"{self.right_key}{residual})")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @staticmethod
    def _bucket_key(value: Any) -> Any:
        try:
            hash(value)
            return value
        except TypeError:
            return repr(value)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        buckets: dict[Any, list[tuple]] = {}
        for right_values in self.right.execute(parameters, outer):
            context = RowContext(self.right.frame, right_values,
                                 parameters, outer)
            key = self.evaluator.evaluate(self.right_key, context)
            if key is NULL:
                continue  # NULL never equi-joins
            buckets.setdefault(self._bucket_key(key), []).append(right_values)

        null_pad = (NULL,) * len(self.right.frame)
        for left_values in self.left.execute(parameters, outer):
            context = RowContext(self.left.frame, left_values,
                                 parameters, outer)
            key = self.evaluator.evaluate(self.left_key, context)
            matched = False
            if key is not NULL:
                for right_values in buckets.get(self._bucket_key(key), ()):
                    combined = left_values + right_values
                    if self.residual is not None:
                        combined_context = self._context(
                            combined, parameters, outer
                        )
                        if not self.evaluator.evaluate_predicate(
                            self.residual, combined_context
                        ):
                            continue
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield left_values + null_pad


class Project(PlanNode):
    """Evaluates the projection expressions of a SELECT."""

    def __init__(self, child: PlanNode,
                 items: Sequence[tuple[ast.Expression, str]],
                 evaluator: Evaluator) -> None:
        self.child = child
        self.items = list(items)
        self.evaluator = evaluator
        self.frame = Frame([(None, name) for _, name in self.items])

    def label(self) -> str:
        inner = ", ".join(f"{expr} AS {name}" for expr, name in self.items)
        return f"Project({inner})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        for values in self.child.execute(parameters, outer):
            context = RowContext(self.child.frame, values, parameters, outer)
            yield tuple(
                self.evaluator.evaluate(expression, context)
                for expression, _ in self.items
            )


class Aggregate(PlanNode):
    """Grouping + aggregate evaluation.

    Output columns: one slot per group expression (named ``__group_i``)
    followed by one per distinct aggregate call (named by ``str(call)``).
    The optimizer rewrites outer expressions (projection, HAVING, ORDER
    BY) to reference these synthetic columns.
    """

    def __init__(
        self,
        child: PlanNode,
        group_expressions: Sequence[ast.Expression],
        aggregate_calls: Sequence[ast.FunctionCall],
        evaluator: Evaluator,
        database,
    ) -> None:
        self.child = child
        self.group_expressions = list(group_expressions)
        self.aggregate_calls = list(aggregate_calls)
        self.evaluator = evaluator
        self.database = database
        slots = [(None, f"__group_{i}")
                 for i in range(len(self.group_expressions))]
        slots.extend((None, str(call)) for call in self.aggregate_calls)
        self.frame = Frame(slots)

    def label(self) -> str:
        groups = ", ".join(str(e) for e in self.group_expressions) or "<all>"
        aggs = ", ".join(str(c) for c in self.aggregate_calls)
        return f"Aggregate(BY {groups}; {aggs})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _compute_native(self, call: ast.FunctionCall,
                        rows: list[tuple], parameters, outer) -> Any:
        name = call.name.lower()
        if call.star:
            if name != "count":
                raise SqlSyntaxError(f"{name}(*) is not defined")
            return len(rows)
        if len(call.args) != 1:
            raise SqlSyntaxError(
                f"aggregate {name!r} takes exactly one argument"
            )
        argument = call.args[0]
        values = []
        for values_row in rows:
            context = RowContext(self.child.frame, values_row,
                                 parameters, outer)
            value = self.evaluator.evaluate(argument, context)
            if value is not NULL:
                values.append(value)
        if name == "count":
            return len(values)
        if not values:
            return NULL
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values, key=sort_key)
        if name == "max":
            return max(values, key=sort_key)
        raise SqlSyntaxError(f"unknown aggregate {name!r}")

    def _compute_custom(self, call: ast.FunctionCall,
                        rows: list[tuple], parameters, outer) -> Any:
        aggregate = self.database.catalog.aggregate(call.name)
        state = aggregate.initial()
        for values_row in rows:
            context = RowContext(self.child.frame, values_row,
                                 parameters, outer)
            arguments = [self.evaluator.evaluate(argument, context)
                         for argument in call.args]
            state = aggregate.step(state, *arguments)
        return aggregate.final(state)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        groups: dict[tuple, tuple[list, list[tuple]]] = {}
        for values in self.child.execute(parameters, outer):
            context = RowContext(self.child.frame, values, parameters, outer)
            keys = [self.evaluator.evaluate(expression, context)
                    for expression in self.group_expressions]
            bucket_key = tuple(sort_key(k) for k in keys)
            if bucket_key not in groups:
                groups[bucket_key] = (keys, [])
            groups[bucket_key][1].append(values)

        if not groups and not self.group_expressions:
            groups[()] = ([], [])  # global aggregate over an empty input

        for keys, rows in groups.values():
            output = list(keys)
            for call in self.aggregate_calls:
                if call.name.lower() in NATIVE_AGGREGATES:
                    output.append(
                        self._compute_native(call, rows, parameters, outer)
                    )
                else:
                    output.append(
                        self._compute_custom(call, rows, parameters, outer)
                    )
            yield tuple(output)


class Distinct(PlanNode):
    """Removes duplicate rows (by value identity)."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.frame = child.frame

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        seen: set = set()
        for values in self.child.execute(parameters, outer):
            key = tuple(sort_key(v) for v in values)
            if key not in seen:
                seen.add(key)
                yield values


class Sort(PlanNode):
    """Materializing sort on arbitrary expressions, mixed ASC/DESC."""

    def __init__(self, child: PlanNode, items: Sequence[ast.OrderItem],
                 evaluator: Evaluator) -> None:
        self.child = child
        self.items = list(items)
        self.evaluator = evaluator
        self.frame = child.frame

    def label(self) -> str:
        inner = ", ".join(
            f"{item.expression} {'ASC' if item.ascending else 'DESC'}"
            for item in self.items
        )
        return f"Sort({inner})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        rows = list(self.child.execute(parameters, outer))

        def key_for(item: ast.OrderItem):
            def key(values: tuple):
                context = RowContext(self.frame, values, parameters, outer)
                return sort_key(
                    self.evaluator.evaluate(item.expression, context)
                )
            return key

        # Stable sorts applied last-key-first implement the composite order.
        for item in reversed(self.items):
            rows.sort(key=key_for(item), reverse=not item.ascending)
        yield from rows


class Limit(PlanNode):
    """LIMIT/OFFSET."""

    def __init__(self, child: PlanNode, limit: int | None,
                 offset: int | None) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.frame = child.frame

    def label(self) -> str:
        return f"Limit({self.limit} OFFSET {self.offset})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        produced = 0
        skipped = 0
        for values in self.child.execute(parameters, outer):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield values
