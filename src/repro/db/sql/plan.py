"""Physical plan operators: the executor half of the query engine.

Every node produces an iterator of value tuples described by its
:class:`~repro.db.sql.expressions.Frame`.  Nodes carry the optimizer's
row estimate so ``EXPLAIN`` output shows both the shape and the numbers
the planner believed.

Operator set: sequential scan, columnar scan (zone-map page skipping +
vectorized kernels), three index scans (equality / range /
contains-candidate), filter, nested-loop and hash joins (inner + left),
grouping/aggregation (streaming + vectorized), projection, distinct,
external-merge sort, limit.

Every pipeline breaker runs in bounded memory when the database has a
``memory_budget``: ORDER BY spills sorted runs and merges them with
``heapq.merge``, GROUP BY spills overflow groups to hash partitions,
and both join build sides live in spillable runs
(:mod:`repro.db.columnar.spill`).  All of them are bit-identical to the
unbounded versions they replaced — same values, same order, same
errors — which the differential suite enforces.
"""

from __future__ import annotations

import heapq
import zlib
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.db.columnar import pages as page_codec
from repro.db.columnar.spill import IndexedRun, RowRun
from repro.db.columnar.vector import KernelError, apply_kernel
from repro.db.sql import ast
from repro.db.sql.expressions import (
    NATIVE_AGGREGATES,
    Evaluator,
    Frame,
    RowContext,
)
from repro.db.table import Table
from repro.db.values import NULL, sort_key
from repro.errors import DatabaseError, SqlSyntaxError, TypeCheckError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.columnar import ColumnarRuntime
    from repro.db.index.base import Index

#: Hash partitions the aggregate spills overflow groups into.
SPILL_PARTITIONS = 16


def _page_function(name: str, function) -> Any:
    """Wrap a catalog function with the evaluator's error mapping,
    capturing instead of raising (see :class:`KernelError`)."""
    def call(*arguments):
        try:
            return function(*arguments)
        except (DatabaseError, TypeCheckError) as exc:
            return KernelError(exc)
        except Exception as exc:
            return KernelError(
                DatabaseError(f"function {name!r} failed: {exc}")
            )
    return call


def _unwrap(value: Any) -> Any:
    if isinstance(value, KernelError):
        raise value.error
    return value


class _Desc:
    """Inverts comparisons so one composite key handles mixed ASC/DESC."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __eq__(self, other: Any) -> bool:
        return self.key == other.key

    def __lt__(self, other: "_Desc") -> bool:
        return other.key < self.key


class PlanNode:
    """Base plan operator."""

    frame: Frame
    estimated_rows: float = 0.0

    def execute(self, parameters: Sequence[Any],
                outer: "RowContext | None") -> Iterator[tuple]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.label()}  "
                 f"(~{self.estimated_rows:.0f} rows)"]
        lines.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(lines)

    def _context(self, values: Sequence[Any], parameters: Sequence[Any],
                 outer: "RowContext | None") -> RowContext:
        return RowContext(self.frame, values, parameters, outer)


class SeqScan(PlanNode):
    """Full scan of a base table."""

    def __init__(self, table: Table, binding: str) -> None:
        self.table = table
        self.binding = binding
        self.frame = Frame.for_table(binding, table.schema.column_names)
        self.estimated_rows = float(len(table))

    def label(self) -> str:
        return f"SeqScan({self.table.name} AS {self.binding})"

    def execute(self, parameters, outer) -> Iterator[tuple]:
        for _, row in self.table.rows():
            yield tuple(row)


class IndexEqualScan(PlanNode):
    """Equality probe through a hash or B-tree index."""

    def __init__(self, table: Table, binding: str, index: "Index",
                 key: ast.Expression, evaluator: Evaluator) -> None:
        self.table = table
        self.binding = binding
        self.index = index
        self.key = key
        self.evaluator = evaluator
        self.frame = Frame.for_table(binding, table.schema.column_names)

    def label(self) -> str:
        return (f"IndexEqualScan({self.table.name} AS {self.binding} "
                f"USING {self.index.name} ON {self.index.column} = {self.key})")

    def execute(self, parameters, outer) -> Iterator[tuple]:
        probe_context = RowContext(Frame(()), (), parameters, outer)
        key = self.evaluator.evaluate(self.key, probe_context)
        for row_id in self.index.search_equal(key):
            if self.table.has_row(row_id):
                yield tuple(self.table.row(row_id))


class IndexRangeScan(PlanNode):
    """Range scan through a B-tree index."""

    def __init__(
        self,
        table: Table,
        binding: str,
        index: "Index",
        evaluator: Evaluator,
        low: ast.Expression | None = None,
        high: ast.Expression | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> None:
        self.table = table
        self.binding = binding
        self.index = index
        self.evaluator = evaluator
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.frame = Frame.for_table(binding, table.schema.column_names)

    def label(self) -> str:
        low = str(self.low) if self.low is not None else "-inf"
        high = str(self.high) if self.high is not None else "+inf"
        return (f"IndexRangeScan({self.table.name} AS {self.binding} "
                f"USING {self.index.name} ON {self.index.column} "
                f"IN {'[' if self.include_low else '('}{low}, {high}"
                f"{']' if self.include_high else ')'})")

    def execute(self, parameters, outer) -> Iterator[tuple]:
        probe_context = RowContext(Frame(()), (), parameters, outer)
        low = (self.evaluator.evaluate(self.low, probe_context)
               if self.low is not None else None)
        high = (self.evaluator.evaluate(self.high, probe_context)
                if self.high is not None else None)
        for row_id in self.index.search_range(
            low, high, self.include_low, self.include_high
        ):
            if self.table.has_row(row_id):
                yield tuple(self.table.row(row_id))


class IndexContainsScan(PlanNode):
    """Candidate fetch through a genomic (k-mer / suffix) index.

    Produces the index's candidate rows; the enclosing
    :class:`Filter` re-checks the real predicate, so over-approximate
    candidate sets stay correct.
    """

    def __init__(self, table: Table, binding: str, index: "Index",
                 pattern: ast.Expression, evaluator: Evaluator) -> None:
        self.table = table
        self.binding = binding
        self.index = index
        self.pattern = pattern
        self.evaluator = evaluator
        self.frame = Frame.for_table(binding, table.schema.column_names)

    def label(self) -> str:
        return (f"IndexContainsScan({self.table.name} AS {self.binding} "
                f"USING {self.index.name} PATTERN {self.pattern})")

    def execute(self, parameters, outer) -> Iterator[tuple]:
        probe_context = RowContext(Frame(()), (), parameters, outer)
        pattern = self.evaluator.evaluate(self.pattern, probe_context)
        candidates = self.index.search_contains(str(pattern))
        if candidates is None:
            for _, row in self.table.rows():
                yield tuple(row)
            return
        for row_id in sorted(candidates):
            if self.table.has_row(row_id):
                yield tuple(self.table.row(row_id))


class OneRow(PlanNode):
    """Produces a single empty row (for ``SELECT expr`` without FROM)."""

    def __init__(self) -> None:
        self.frame = Frame(())
        self.estimated_rows = 1.0

    def execute(self, parameters, outer) -> Iterator[tuple]:
        yield ()


class Filter(PlanNode):
    """Keeps rows whose predicate evaluates to true."""

    def __init__(self, child: PlanNode, predicate: ast.Expression,
                 evaluator: Evaluator) -> None:
        self.child = child
        self.predicate = predicate
        self.evaluator = evaluator
        self.frame = child.frame

    def label(self) -> str:
        return f"Filter({self.predicate})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        for values in self.child.execute(parameters, outer):
            context = self._context(values, parameters, outer)
            if self.evaluator.evaluate_predicate(self.predicate, context):
                yield values


class NestedLoopJoin(PlanNode):
    """General join: re-evaluates the condition per row pair."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 condition: ast.Expression, evaluator: Evaluator,
                 kind: str = "inner",
                 runtime: "ColumnarRuntime | None" = None) -> None:
        if kind not in ("inner", "left"):
            raise DatabaseError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.evaluator = evaluator
        self.kind = kind
        self.runtime = runtime
        self.frame = left.frame + right.frame

    def label(self) -> str:
        return f"NestedLoopJoin[{self.kind}]({self.condition})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        # Block-nested-loop: the inner relation lives in a spillable run,
        # so a right side larger than the memory budget goes to disk
        # instead of materializing as one unbounded list.
        right_rows = (self.runtime.spill.row_run()
                      if self.runtime is not None else RowRun(None, None))
        right_rows.extend(self.right.execute(parameters, outer))
        null_pad = (NULL,) * len(self.right.frame)
        try:
            for left_values in self.left.execute(parameters, outer):
                matched = False
                for right_values in right_rows:
                    combined = left_values + right_values
                    context = self._context(combined, parameters, outer)
                    if self.evaluator.evaluate_predicate(self.condition,
                                                         context):
                        matched = True
                        yield combined
                if not matched and self.kind == "left":
                    yield left_values + null_pad
        finally:
            right_rows.close()


class HashJoin(PlanNode):
    """Equi-join: builds a hash table on the right input."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: ast.Expression,
        right_key: ast.Expression,
        evaluator: Evaluator,
        kind: str = "inner",
        residual: ast.Expression | None = None,
        runtime: "ColumnarRuntime | None" = None,
    ) -> None:
        if kind not in ("inner", "left"):
            raise DatabaseError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.evaluator = evaluator
        self.kind = kind
        self.residual = residual
        self.runtime = runtime
        self.frame = left.frame + right.frame

    def label(self) -> str:
        residual = f" AND {self.residual}" if self.residual else ""
        return (f"HashJoin[{self.kind}]({self.left_key} = "
                f"{self.right_key}{residual})")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @staticmethod
    def _bucket_key(value: Any) -> Any:
        try:
            hash(value)
            return value
        except TypeError:
            return repr(value)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        # Build rows live in an offset-addressed spillable run; the hash
        # table itself only holds ordinals, so a build side larger than
        # the memory budget keeps the resident footprint bounded.
        build = (self.runtime.spill.indexed_run()
                 if self.runtime is not None else IndexedRun(None, None))
        buckets: dict[Any, list[int]] = {}
        for right_values in self.right.execute(parameters, outer):
            context = RowContext(self.right.frame, right_values,
                                 parameters, outer)
            key = self.evaluator.evaluate(self.right_key, context)
            if key is NULL:
                continue  # NULL never equi-joins
            ordinal = build.append(right_values)
            buckets.setdefault(self._bucket_key(key), []).append(ordinal)

        null_pad = (NULL,) * len(self.right.frame)
        try:
            for left_values in self.left.execute(parameters, outer):
                context = RowContext(self.left.frame, left_values,
                                     parameters, outer)
                key = self.evaluator.evaluate(self.left_key, context)
                matched = False
                if key is not NULL:
                    for ordinal in buckets.get(self._bucket_key(key), ()):
                        combined = left_values + tuple(build[ordinal])
                        if self.residual is not None:
                            combined_context = self._context(
                                combined, parameters, outer
                            )
                            if not self.evaluator.evaluate_predicate(
                                self.residual, combined_context
                            ):
                                continue
                        matched = True
                        yield combined
                if not matched and self.kind == "left":
                    yield left_values + null_pad
        finally:
            build.close()


class Project(PlanNode):
    """Evaluates the projection expressions of a SELECT."""

    def __init__(self, child: PlanNode,
                 items: Sequence[tuple[ast.Expression, str]],
                 evaluator: Evaluator) -> None:
        self.child = child
        self.items = list(items)
        self.evaluator = evaluator
        self.frame = Frame([(None, name) for _, name in self.items])

    def label(self) -> str:
        inner = ", ".join(f"{expr} AS {name}" for expr, name in self.items)
        return f"Project({inner})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        for values in self.child.execute(parameters, outer):
            context = RowContext(self.child.frame, values, parameters, outer)
            yield tuple(
                self.evaluator.evaluate(expression, context)
                for expression, _ in self.items
            )


class _NativeAccumulator:
    """Streaming state of one native aggregate call within one group.

    Value-for-value identical to the list-then-reduce computation it
    replaced: ``sum`` starts from ``int`` 0 like ``sum()``, ``avg`` is
    running-sum over non-NULL count, and ``min``/``max`` replace only on
    strict comparison so the first of equal keys wins, exactly as
    ``min(values, key=sort_key)`` does.
    """

    __slots__ = ("name", "star", "argument", "evaluator",
                 "rows", "nonnull", "total", "best", "best_key")

    def __init__(self, call: ast.FunctionCall, evaluator: Evaluator) -> None:
        self.name = call.name.lower()
        self.star = call.star
        if call.star:
            if self.name != "count":
                raise SqlSyntaxError(f"{self.name}(*) is not defined")
            self.argument = None
        else:
            if len(call.args) != 1:
                raise SqlSyntaxError(
                    f"aggregate {self.name!r} takes exactly one argument"
                )
            self.argument = call.args[0]
        self.evaluator = evaluator
        self.rows = 0
        self.nonnull = 0
        self.total: Any = 0
        self.best: Any = None
        self.best_key: Any = None

    def step(self, context: RowContext) -> None:
        if self.star:
            self.rows += 1
            return
        self.add(self.evaluator.evaluate(self.argument, context))

    def add(self, value: Any) -> None:
        if value is NULL:
            return
        self.nonnull += 1
        name = self.name
        if name in ("sum", "avg"):
            self.total = self.total + value
        elif name in ("min", "max"):
            key = sort_key(value)
            if self.nonnull == 1:
                self.best, self.best_key = value, key
            elif name == "min":
                if key < self.best_key:
                    self.best, self.best_key = value, key
            elif key > self.best_key:
                self.best, self.best_key = value, key

    def final(self) -> Any:
        if self.name == "count":
            return self.rows if self.star else self.nonnull
        if self.nonnull == 0:
            return NULL
        if self.name == "sum":
            return self.total
        if self.name == "avg":
            return self.total / self.nonnull
        return self.best


class _CustomAccumulator:
    """Streaming state of one registered (initial/step/final) aggregate."""

    __slots__ = ("call", "evaluator", "aggregate", "state")

    def __init__(self, call: ast.FunctionCall, evaluator: Evaluator,
                 aggregate) -> None:
        self.call = call
        self.evaluator = evaluator
        self.aggregate = aggregate
        self.state = aggregate.initial()

    def step(self, context: RowContext) -> None:
        arguments = [self.evaluator.evaluate(argument, context)
                     for argument in self.call.args]
        self.state = self.aggregate.step(self.state, *arguments)

    def final(self) -> Any:
        return self.aggregate.final(self.state)


class _GroupState:
    """One group's key values, first-seen ordinal and accumulators."""

    __slots__ = ("keys", "ordinal", "accumulators")

    def __init__(self, keys: list, ordinal: int, accumulators: list) -> None:
        self.keys = keys
        self.ordinal = ordinal
        self.accumulators = accumulators


class Aggregate(PlanNode):
    """Grouping + aggregate evaluation, streaming with group spill.

    Output columns: one slot per group expression (named ``__group_i``)
    followed by one per distinct aggregate call (named by ``str(call)``).
    The optimizer rewrites outer expressions (projection, HAVING, ORDER
    BY) to reference these synthetic columns.

    Rows fold into per-group accumulators as they stream past — no
    per-group row lists.  Under a finite ``memory_budget`` the number
    of in-memory groups is capped: rows of groups past the cap are
    routed by a stable hash of their key into on-disk partitions and
    aggregated in a second pass.  Output order stays first-seen
    (groups merge on their first input ordinal).
    """

    def __init__(
        self,
        child: PlanNode,
        group_expressions: Sequence[ast.Expression],
        aggregate_calls: Sequence[ast.FunctionCall],
        evaluator: Evaluator,
        database,
        runtime: "ColumnarRuntime | None" = None,
    ) -> None:
        self.child = child
        self.group_expressions = list(group_expressions)
        self.aggregate_calls = list(aggregate_calls)
        self.evaluator = evaluator
        self.database = database
        self.runtime = runtime
        slots = [(None, f"__group_{i}")
                 for i in range(len(self.group_expressions))]
        slots.extend((None, str(call)) for call in self.aggregate_calls)
        self.frame = Frame(slots)

    def label(self) -> str:
        groups = ", ".join(str(e) for e in self.group_expressions) or "<all>"
        aggs = ", ".join(str(c) for c in self.aggregate_calls)
        return f"Aggregate(BY {groups}; {aggs})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _accumulators(self) -> list:
        accumulators = []
        for call in self.aggregate_calls:
            if call.name.lower() in NATIVE_AGGREGATES:
                accumulators.append(_NativeAccumulator(call, self.evaluator))
            else:
                accumulators.append(_CustomAccumulator(
                    call, self.evaluator,
                    self.database.catalog.aggregate(call.name),
                ))
        return accumulators

    def execute(self, parameters, outer) -> Iterator[tuple]:
        spill = self.runtime.spill if self.runtime is not None else None
        capacity = spill.run_capacity() if spill is not None else None
        groups: dict[tuple, _GroupState] = {}
        partitions: "list | None" = None
        for ordinal, values in enumerate(
                self.child.execute(parameters, outer)):
            context = RowContext(self.child.frame, values, parameters, outer)
            keys = [self.evaluator.evaluate(expression, context)
                    for expression in self.group_expressions]
            bucket_key = tuple(sort_key(k) for k in keys)
            state = groups.get(bucket_key)
            if state is None:
                if capacity is not None and len(groups) >= capacity:
                    # Too many live groups: route this row to an on-disk
                    # partition by a stable hash of its key.
                    if partitions is None:
                        partitions = [spill.disk_run()
                                      for _ in range(SPILL_PARTITIONS)]
                    index = (zlib.crc32(repr(bucket_key).encode("utf-8"))
                             % SPILL_PARTITIONS)
                    partitions[index].append((ordinal,) + tuple(values))
                    continue
                state = _GroupState(keys, ordinal, self._accumulators())
                groups[bucket_key] = state
            for accumulator in state.accumulators:
                accumulator.step(context)

        results = list(groups.values())
        if partitions is not None:
            for run in partitions:
                overflow: dict[tuple, _GroupState] = {}
                for entry in run:
                    ordinal, values = entry[0], tuple(entry[1:])
                    context = RowContext(self.child.frame, values,
                                         parameters, outer)
                    keys = [self.evaluator.evaluate(expression, context)
                            for expression in self.group_expressions]
                    bucket_key = tuple(sort_key(k) for k in keys)
                    state = overflow.get(bucket_key)
                    if state is None:
                        state = _GroupState(keys, ordinal,
                                            self._accumulators())
                        overflow[bucket_key] = state
                    for accumulator in state.accumulators:
                        accumulator.step(context)
                results.extend(overflow.values())
                run.close()
            # First-seen group order across the memory/disk split.
            results.sort(key=lambda state: state.ordinal)

        if not results and not self.group_expressions:
            # Global aggregate over an empty input still yields one row.
            results = [_GroupState([], 0, self._accumulators())]

        for state in results:
            yield tuple(state.keys) + tuple(
                accumulator.final() for accumulator in state.accumulators
            )


class Distinct(PlanNode):
    """Removes duplicate rows (by value identity)."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.frame = child.frame

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        seen: set = set()
        for values in self.child.execute(parameters, outer):
            key = tuple(sort_key(v) for v in values)
            if key not in seen:
                seen.add(key)
                yield values


class Sort(PlanNode):
    """External-merge sort on arbitrary expressions, mixed ASC/DESC.

    One composite key per row — per-item ``sort_key``, DESC items
    wrapped in :class:`_Desc`, the input ordinal last — totally orders
    the input identically to the stable last-key-first multi-pass sort
    this replaced (the ordinal reproduces stability).  Without a memory
    budget the input sorts as a single in-memory chunk; with one, full
    chunks sort and flush as runs that ``heapq.merge`` recombines.
    """

    def __init__(self, child: PlanNode, items: Sequence[ast.OrderItem],
                 evaluator: Evaluator,
                 runtime: "ColumnarRuntime | None" = None) -> None:
        self.child = child
        self.items = list(items)
        self.evaluator = evaluator
        self.runtime = runtime
        self.frame = child.frame

    def label(self) -> str:
        inner = ", ".join(
            f"{item.expression} {'ASC' if item.ascending else 'DESC'}"
            for item in self.items
        )
        return f"Sort({inner})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        def entry_key(entry: tuple):
            ordinal, values = entry
            context = RowContext(self.frame, values, parameters, outer)
            key: list = []
            for item in self.items:
                part = sort_key(
                    self.evaluator.evaluate(item.expression, context)
                )
                key.append(part if item.ascending else _Desc(part))
            key.append(ordinal)
            return tuple(key)

        spill = self.runtime.spill if self.runtime is not None else None
        capacity = spill.run_capacity() if spill is not None else None
        chunk: list = []
        runs: list = []
        try:
            for ordinal, values in enumerate(
                    self.child.execute(parameters, outer)):
                chunk.append((ordinal, values))
                if capacity is not None and len(chunk) >= capacity:
                    chunk.sort(key=entry_key)
                    run = spill.disk_run()
                    for entry_ordinal, entry_values in chunk:
                        run.append((entry_ordinal,) + tuple(entry_values))
                    runs.append(run)
                    chunk = []
            chunk.sort(key=entry_key)
            if not runs:
                for _, values in chunk:
                    yield values
                return
            streams = [_sorted_stream(run) for run in runs]
            streams.append(iter(chunk))
            for _, values in heapq.merge(*streams, key=entry_key):
                yield values
        finally:
            for run in runs:
                run.close()


def _sorted_stream(run: RowRun) -> Iterator[tuple]:
    for entry in run:
        yield entry[0], tuple(entry[1:])


class Limit(PlanNode):
    """LIMIT/OFFSET."""

    def __init__(self, child: PlanNode, limit: int | None,
                 offset: int | None) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.frame = child.frame

    def label(self) -> str:
        return f"Limit({self.limit} OFFSET {self.offset})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def execute(self, parameters, outer) -> Iterator[tuple]:
        produced = 0
        skipped = 0
        for values in self.child.execute(parameters, outer):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield values


class KernelSlot:
    """One vectorized function column a :class:`ColumnarScan` appends.

    ``name`` is ``str(call)`` — the same synthetic-column convention the
    aggregate frame uses — so the optimizer rewrites matching calls in
    filters, projections and ORDER BY into plain column references.
    """

    __slots__ = ("name", "kernel", "function_name", "position", "extra_args")

    def __init__(self, name: str, kernel: str, function_name: str,
                 position: int, extra_args: tuple) -> None:
        self.name = name
        self.kernel = kernel
        self.function_name = function_name
        self.position = position
        self.extra_args = extra_args


class ColumnarScan(PlanNode):
    """Scan of a column-layout table: zone-map skipping + page kernels.

    Emits exactly the rows ``SeqScan`` would, in the same order.  Two
    columnar-only abilities ride on top:

    - ``bounds`` — already-split WHERE comparisons, evaluated at execute
      time and checked against each row group's zone maps; excluded
      groups are skipped without reading (or decoding) their pages.
      Every conjunct is still re-checked by the Filter above, so the
      pruning only has to be conservative, never exact.
    - ``kernel_slots`` — tagged function calls computed page-at-a-time
      over the packed column data and appended to the frame as synthetic
      columns; failures are deferred per row (:class:`KernelError`) so
      tombstoned ordinals never raise.
    """

    def __init__(self, table: Table, binding: str, evaluator: Evaluator,
                 catalog) -> None:
        self.table = table
        self.binding = binding
        self.evaluator = evaluator
        self.catalog = catalog
        self.bounds: list = []
        self.kernel_slots: list[KernelSlot] = []
        self._rebuild_frame()
        self.estimated_rows = float(len(table))

    def _rebuild_frame(self) -> None:
        slots = [(self.binding, column)
                 for column in self.table.schema.column_names]
        slots.extend((None, slot.name) for slot in self.kernel_slots)
        self.frame = Frame(slots)

    def add_bound(self, position: int, low: "ast.Expression | None",
                  include_low: bool, high: "ast.Expression | None",
                  include_high: bool) -> None:
        self.bounds.append((position, low, include_low, high, include_high))

    def ensure_kernel_slot(self, call: ast.FunctionCall, kernel: str,
                           function_name: str, position: int) -> str:
        name = str(call)
        for slot in self.kernel_slots:
            if slot.name == name:
                return name
        self.kernel_slots.append(KernelSlot(
            name, kernel, function_name, position, tuple(call.args[1:]),
        ))
        self._rebuild_frame()
        return name

    def label(self) -> str:
        parts = [f"{self.table.name} AS {self.binding}"]
        if self.bounds:
            parts.append(f"zones on {len(self.bounds)} bound(s)")
        if self.kernel_slots:
            parts.append("kernels "
                         + ", ".join(s.name for s in self.kernel_slots))
        return f"ColumnarScan({'; '.join(parts)})"

    def _kernel_column(self, view, slot: KernelSlot, args: tuple,
                       descriptor) -> list:
        fallback = _page_function(slot.function_name, descriptor.function)
        if descriptor.kernel == slot.kernel:
            data = view.raw_page(slot.position)
            raw = (page_codec.seq_raw_body(data)
                   if data is not None else None)
            return apply_kernel(
                slot.kernel, raw,
                lambda: view.column_values(slot.position), fallback, args,
            )
        # The function was re-registered without the kernel tag since
        # planning: evaluate it row-at-a-time, as the evaluator would.
        return [fallback(value, *args)
                for value in view.column_values(slot.position)]

    def execute(self, parameters, outer) -> Iterator[tuple]:
        store = self.table.column_store
        if store is None:
            # Defensive: a row-layout table behind a columnar plan still
            # scans correctly (no zones, no kernels to compute).
            for _, row in self.table.rows():
                yield tuple(row)
            return
        if len(store) == 0:
            return
        probe = RowContext(Frame(()), (), parameters, outer)
        bounds = []
        for position, low, include_low, high, include_high in self.bounds:
            bounds.append((
                position,
                (self.evaluator.evaluate(low, probe)
                 if low is not None else None),
                include_low,
                (self.evaluator.evaluate(high, probe)
                 if high is not None else None),
                include_high,
            ))
        kernels = []
        for slot in self.kernel_slots:
            args = tuple(self.evaluator.evaluate(argument, probe)
                         for argument in slot.extra_args)
            descriptor = self.catalog.function(slot.function_name)
            kernels.append((slot, args, descriptor))
        for view in store.scan(bounds or None):
            if not kernels:
                for _, row in view.rows():
                    yield tuple(row)
                continue
            extras = [self._kernel_column(view, slot, args, descriptor)
                      for slot, args, descriptor in kernels]
            for offset, row in view.enumerate_rows():
                # Kernel failures stay wrapped (KernelError) here: they
                # raise only if an expression actually reads the slot,
                # matching the row path's lazy evaluation order.
                yield tuple(row) + tuple(
                    column[offset] for column in extras
                )


class VectorAggregate(PlanNode):
    """Global native aggregation evaluated page-at-a-time.

    Stands in for :class:`Aggregate` when the child is a bare
    :class:`ColumnarScan` (no GROUP BY, no filters, no bounds) and every
    call is a native aggregate over ``*``, a scanned column, or a
    kernel-tagged function of one — ``count``/``sum``/``avg``/``min``/
    ``max`` then fold whole column pages without materializing rows.
    The output frame matches :class:`Aggregate` exactly (one ``str(call)``
    slot per call), so the planner's rewrite machinery is shared.

    ``specs`` aligns with ``aggregate_calls``:  ``("star",)`` |
    ``("column", position)`` | ``("kernel", kernel, function, position,
    extra_args)``.
    """

    def __init__(self, scan: ColumnarScan,
                 aggregate_calls: Sequence[ast.FunctionCall],
                 evaluator: Evaluator, database,
                 specs: Sequence[tuple]) -> None:
        self.scan = scan
        self.aggregate_calls = list(aggregate_calls)
        self.evaluator = evaluator
        self.database = database
        self.specs = list(specs)
        self.frame = Frame([(None, str(call))
                            for call in self.aggregate_calls])
        self.estimated_rows = 1.0

    def label(self) -> str:
        aggs = ", ".join(str(call) for call in self.aggregate_calls)
        return f"VectorAggregate({aggs})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.scan,)

    def _kernel_results(self, view, spec: tuple, args: tuple,
                        descriptor) -> list:
        _, kernel, function_name, position, _ = spec
        fallback = _page_function(function_name, descriptor.function)
        if descriptor.kernel == kernel:
            data = view.raw_page(position)
            raw = (page_codec.seq_raw_body(data)
                   if data is not None else None)
            return apply_kernel(
                kernel, raw, lambda: view.column_values(position),
                fallback, args,
            )
        return [fallback(value, *args)
                for value in view.column_values(position)]

    def execute(self, parameters, outer) -> Iterator[tuple]:
        store = self.scan.table.column_store
        accumulators = [_NativeAccumulator(call, self.evaluator)
                        for call in self.aggregate_calls]
        if store is None or len(store) == 0:
            yield tuple(acc.final() for acc in accumulators)
            return
        probe = RowContext(Frame(()), (), parameters, outer)
        prepared: list = []
        for spec in self.specs:
            if spec[0] == "kernel":
                args = tuple(self.evaluator.evaluate(argument, probe)
                             for argument in spec[4])
                prepared.append(
                    (args, self.database.catalog.function(spec[2]))
                )
            else:
                prepared.append(None)
        for view in store.scan():
            live = view.row_ids
            live_count = sum(1 for row_id in live if row_id is not None)
            if live_count == 0:
                continue
            all_live = live_count == len(live)
            for accumulator, spec, prep in zip(accumulators, self.specs,
                                               prepared):
                if spec[0] == "star":
                    accumulator.rows += live_count
                    continue
                if spec[0] == "column":
                    values = view.column_values(spec[1])
                else:
                    args, descriptor = prep
                    values = self._kernel_results(view, spec, args,
                                                  descriptor)
                if all_live:
                    for value in values:
                        accumulator.add(_unwrap(value))
                else:
                    for row_id, value in zip(live, values):
                        if row_id is not None:
                            accumulator.add(_unwrap(value))
        yield tuple(acc.final() for acc in accumulators)
