"""Expression evaluation over row contexts (SQL semantics, 3-valued logic).

A :class:`Frame` names each position of a row tuple with a
``(binding, column)`` pair — the binding being a table name or alias.
A :class:`RowContext` pairs a frame with concrete values, plus the query
parameters and an optional **outer context** (which is what makes
correlated subqueries work: resolution falls through to the enclosing
row when a name is not bound locally).

The :class:`Evaluator` interprets expression ASTs against a context.  It
needs the database handle for function lookup and subquery execution.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Sequence

from repro.db.columnar.vector import KernelError
from repro.db.sql import ast
from repro.db.values import NULL, UNKNOWN, and3, compare, is_truthy, not3, or3
from repro.errors import DatabaseError, SqlSyntaxError, TypeCheckError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.database import Database


class Frame:
    """Positional naming of a row: ``(binding, column)`` per slot."""

    __slots__ = ("slots", "_lookup")

    def __init__(self, slots: Sequence[tuple[str | None, str]]) -> None:
        self.slots = tuple(slots)
        lookup: dict[str, list[int]] = {}
        for position, (_, column) in enumerate(self.slots):
            lookup.setdefault(column, []).append(position)
        self._lookup = lookup

    def __len__(self) -> int:
        return len(self.slots)

    def __add__(self, other: "Frame") -> "Frame":
        return Frame(self.slots + other.slots)

    @classmethod
    def for_table(cls, binding: str, column_names: Sequence[str]) -> "Frame":
        return cls([(binding, column) for column in column_names])

    def positions(self, table: str | None, column: str) -> list[int]:
        """Slot positions matching a (possibly qualified) column reference."""
        candidates = self._lookup.get(column, [])
        if table is None:
            return list(candidates)
        return [
            position for position in candidates
            if self.slots[position][0] == table
        ]

    def bindings(self) -> tuple[str, ...]:
        seen: list[str] = []
        for binding, _ in self.slots:
            if binding is not None and binding not in seen:
                seen.append(binding)
        return tuple(seen)


class RowContext:
    """A frame + its values, query parameters, and the enclosing context."""

    __slots__ = ("frame", "values", "parameters", "outer", "aggregates")

    def __init__(
        self,
        frame: Frame,
        values: Sequence[Any],
        parameters: Sequence[Any] = (),
        outer: "RowContext | None" = None,
        aggregates: dict[str, Any] | None = None,
    ) -> None:
        self.frame = frame
        self.values = values
        self.parameters = parameters
        self.outer = outer
        #: Pre-computed aggregate values keyed by ``str(expr)`` — filled in
        #: by the aggregation operator so outer expressions can mix
        #: aggregates with group keys.
        self.aggregates = aggregates or {}

    def resolve(self, table: str | None, column: str) -> Any:
        positions = self.frame.positions(table, column)
        if len(positions) == 1:
            return self.values[positions[0]]
        if len(positions) > 1:
            qualifier = f"{table}." if table else ""
            raise SqlSyntaxError(
                f"ambiguous column reference {qualifier}{column!r}"
            )
        if self.outer is not None:
            return self.outer.resolve(table, column)
        qualifier = f"{table}." if table else ""
        raise SqlSyntaxError(f"unknown column {qualifier}{column}")

    def child(self, frame: Frame, values: Sequence[Any]) -> "RowContext":
        """A context for a subquery row, with *self* as the outer scope."""
        return RowContext(frame, values, self.parameters, outer=self)


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


#: Built-in aggregate names handled natively by the aggregation operator.
NATIVE_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


class Evaluator:
    """Interprets expression ASTs against row contexts."""

    def __init__(self, database: "Database") -> None:
        self._database = database

    # -- public API --------------------------------------------------------------

    def evaluate(self, expression: ast.Expression, context: RowContext) -> Any:
        method = getattr(self, f"_eval_{type(expression).__name__.lower()}",
                         None)
        if method is None:
            raise DatabaseError(
                f"cannot evaluate expression node {type(expression).__name__}"
            )
        return method(expression, context)

    def evaluate_predicate(self, expression: ast.Expression,
                           context: RowContext) -> bool:
        """Evaluate as a WHERE-style filter: only true keeps the row."""
        return is_truthy(self._as_bool(self.evaluate(expression, context)))

    def is_aggregate_call(self, expression: ast.Expression) -> bool:
        """True for calls to built-in or registered aggregates."""
        if not isinstance(expression, ast.FunctionCall):
            return False
        name = expression.name.lower()
        return (name in NATIVE_AGGREGATES
                or self._database.catalog.has_aggregate(name))

    def contains_aggregate(self, expression: ast.Expression) -> bool:
        return any(
            self.is_aggregate_call(node)
            for node in ast.walk_expression(expression)
        )

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _as_bool(value: Any) -> "bool | None":
        if value is NULL:
            return UNKNOWN
        if isinstance(value, bool):
            return value
        raise TypeCheckError(
            f"expected a boolean condition, got {value!r}"
        )

    # -- node handlers -----------------------------------------------------------------

    def _eval_literal(self, node: ast.Literal, context: RowContext) -> Any:
        return node.value

    def _eval_parameter(self, node: ast.Parameter,
                        context: RowContext) -> Any:
        try:
            return context.parameters[node.index]
        except IndexError:
            raise DatabaseError(
                f"statement uses parameter {node.index + 1} but only "
                f"{len(context.parameters)} were supplied"
            ) from None

    def _eval_columnref(self, node: ast.ColumnRef,
                        context: RowContext) -> Any:
        value = context.resolve(node.table, node.column)
        if type(value) is KernelError:
            # A vectorized kernel failed for this row; the failure is
            # deferred until the cell is actually read so filtered-out
            # rows never surface errors the row path would not raise.
            raise value.error
        return value

    def _eval_unary(self, node: ast.Unary, context: RowContext) -> Any:
        if node.operator == "NOT":
            return not3(self._as_bool(self.evaluate(node.operand, context)))
        value = self.evaluate(node.operand, context)
        if value is NULL:
            return NULL
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeCheckError(f"cannot negate {value!r}")
        return -value

    def _eval_binary(self, node: ast.Binary, context: RowContext) -> Any:
        operator = node.operator
        if operator == "AND":
            left = self._as_bool(self.evaluate(node.left, context))
            if left is False:
                return False
            return and3(left,
                        self._as_bool(self.evaluate(node.right, context)))
        if operator == "OR":
            left = self._as_bool(self.evaluate(node.left, context))
            if left is True:
                return True
            return or3(left,
                       self._as_bool(self.evaluate(node.right, context)))

        left = self.evaluate(node.left, context)
        right = self.evaluate(node.right, context)

        if operator == "LIKE":
            if left is NULL or right is NULL:
                return NULL
            if not isinstance(left, str) or not isinstance(right, str):
                raise TypeCheckError("LIKE requires text operands")
            return like_to_regex(right).match(left) is not None

        if operator in ("=", "!=", "<>", "<", "<=", ">", ">="):
            return compare(operator, left, right)

        # Arithmetic (with '+' doubling as text concatenation).
        if left is NULL or right is NULL:
            return NULL
        if operator == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if (isinstance(left, bool) or isinstance(right, bool)
                or not isinstance(left, (int, float))
                or not isinstance(right, (int, float))):
            raise TypeCheckError(
                f"cannot apply {operator!r} to {left!r} and {right!r}"
            )
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            if right == 0:
                return NULL  # SQL-style: division by zero yields NULL here
            result = left / right
            if isinstance(left, int) and isinstance(right, int):
                return left // right if left % right == 0 else result
            return result
        if operator == "%":
            if right == 0:
                return NULL
            return left % right
        raise DatabaseError(f"unknown binary operator {operator!r}")

    def _eval_isnull(self, node: ast.IsNull, context: RowContext) -> Any:
        value = self.evaluate(node.operand, context)
        result = value is NULL
        return not result if node.negated else result

    def _eval_between(self, node: ast.Between, context: RowContext) -> Any:
        value = self.evaluate(node.operand, context)
        low = self.evaluate(node.low, context)
        high = self.evaluate(node.high, context)
        result = and3(compare(">=", value, low), compare("<=", value, high))
        return not3(result) if node.negated else result

    def _eval_inlist(self, node: ast.InList, context: RowContext) -> Any:
        value = self.evaluate(node.operand, context)
        saw_unknown = False
        for item in node.items:
            verdict = compare("=", value, self.evaluate(item, context))
            if verdict is True:
                return False if node.negated else True
            if verdict is UNKNOWN:
                saw_unknown = True
        if saw_unknown:
            return UNKNOWN
        return True if node.negated else False

    def _eval_inselect(self, node: ast.InSelect, context: RowContext) -> Any:
        value = self.evaluate(node.operand, context)
        rows = self._database.run_subquery(node.select, context)
        saw_unknown = False
        for row in rows:
            if len(row) != 1:
                raise SqlSyntaxError(
                    "IN subquery must return exactly one column"
                )
            verdict = compare("=", value, row[0])
            if verdict is True:
                return False if node.negated else True
            if verdict is UNKNOWN:
                saw_unknown = True
        if saw_unknown:
            return UNKNOWN
        return True if node.negated else False

    def _eval_exists(self, node: ast.Exists, context: RowContext) -> Any:
        rows = self._database.run_subquery(node.select, context, limit=1)
        found = bool(rows)
        return not found if node.negated else found

    def _eval_functioncall(self, node: ast.FunctionCall,
                           context: RowContext) -> Any:
        # Aggregates are computed by the aggregation operator and stashed
        # in the context; a bare aggregate call outside grouping is an error.
        key = str(node)
        if key in context.aggregates:
            return context.aggregates[key]
        if self.is_aggregate_call(node):
            raise SqlSyntaxError(
                f"aggregate {node.name!r} used outside GROUP BY context"
            )
        descriptor = self._database.catalog.function(node.name)
        arguments = [self.evaluate(argument, context)
                     for argument in node.args]
        try:
            return descriptor.function(*arguments)
        except (DatabaseError, TypeCheckError):
            raise
        except Exception as exc:
            raise DatabaseError(
                f"function {node.name!r} failed: {exc}"
            ) from exc
