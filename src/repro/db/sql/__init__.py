"""SQL front end: lexer, parser, expression evaluation, planning, execution."""

from repro.db.sql.parser import parse

__all__ = ["parse"]
