"""Built-in scalar functions registered into every new database."""

from __future__ import annotations

import math
from typing import Any

from repro.db.catalog import Catalog
from repro.db.values import NULL
from repro.errors import TypeCheckError


def _null_safe(function):
    """Wrap a function so any NULL argument yields NULL."""
    def wrapper(*arguments: Any) -> Any:
        if any(argument is NULL for argument in arguments):
            return NULL
        return function(*arguments)
    return wrapper


def _sql_length(value: Any) -> int:
    try:
        return len(value)
    except TypeError:
        raise TypeCheckError(f"length() not defined for {value!r}") from None


def _sql_substr(value: str, start: int, count: int | None = None) -> str:
    if not isinstance(value, str):
        raise TypeCheckError("substr() requires text")
    begin = max(0, start - 1)  # SQL substr is 1-based
    if count is None:
        return value[begin:]
    return value[begin:begin + count]


def _coalesce(*arguments: Any) -> Any:
    for argument in arguments:
        if argument is not NULL:
            return argument
    return NULL


def _nullif(first: Any, second: Any) -> Any:
    if first is NULL or second is NULL:
        return first
    return NULL if first == second else first


def _round(value: float, digits: int = 0) -> float:
    return round(value, digits)


def register_builtin_functions(catalog: Catalog) -> None:
    """Install the standard scalar library into *catalog*."""
    register = catalog.register_function
    register("lower", _null_safe(lambda s: s.lower()),
             description="lower-case text")
    register("upper", _null_safe(lambda s: s.upper()),
             description="upper-case text")
    register("length", _null_safe(_sql_length),
             description="length of text/blob/sequence",
             kernel="length")
    register("substr", _null_safe(_sql_substr),
             description="1-based substring")
    register("trim", _null_safe(lambda s: s.strip()),
             description="strip surrounding whitespace")
    register("replace", _null_safe(lambda s, old, new: s.replace(old, new)),
             description="replace substring")
    register("abs", _null_safe(abs), description="absolute value")
    register("round", _null_safe(_round), description="round to digits")
    register("floor", _null_safe(lambda x: math.floor(x)),
             description="round down")
    register("ceil", _null_safe(lambda x: math.ceil(x)),
             description="round up")
    register("sqrt", _null_safe(math.sqrt), description="square root")
    register("mod", _null_safe(lambda a, b: a % b), description="modulo")
    register("coalesce", _coalesce,
             description="first non-NULL argument")
    register("nullif", _nullif,
             description="NULL when both arguments are equal")
    register("typeof", lambda v: "null" if v is NULL else type(v).__name__,
             description="Python type name of a value")
