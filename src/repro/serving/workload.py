"""Seeded synthetic workloads for the serving layer.

One generator feeds three consumers — the A11 overload ablation, chaos
scenario 11, and the ``overload`` CLI demo — so they all speak about
the same traffic shape: mostly interactive single-gene lookups, some
batch lookups, a trickle of maintenance scans, arriving as a Poisson
process whose rate is expressed as a multiple of the federation's
serving capacity.

Everything is drawn from one ``random.Random`` seeded by ``seed``;
identical seeds give identical workloads, byte for byte.

:func:`overload_federation` builds the calibrated federation the three
consumers serve that traffic against: four faultable sources with a
heavy-tailed latency model, a cached mediator, and a
:class:`~repro.serving.FederationServer` with clean-replica hedging.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.serving.policy import BATCH, INTERACTIVE, MAINTENANCE, ServingPolicy
from repro.serving.server import FederationServer, Request

#: Query mix: (kind, weight).  Single-record lookups dominate, the
#: occasional full scan is the expensive straggler.
_KIND_WEIGHTS = (("gene", 0.80), ("genes", 0.15), ("find_genes", 0.05))

#: Priority mix: most traffic is a human waiting.
_PRIORITY_WEIGHTS = ((INTERACTIVE, 0.70), (BATCH, 0.25), (MAINTENANCE, 0.05))


def _weighted(rng: random.Random, pairs) -> object:
    roll = rng.random()
    acc = 0.0
    for value, weight in pairs:
        acc += weight
        if roll < acc:
            return value
    return pairs[-1][0]


def synthetic_workload(
    accessions: Sequence[str],
    *,
    count: int,
    load_factor: float,
    capacity: int,
    mean_service: float,
    seed: int = 0,
    batch_size: int = 3,
    start: float = 0.0,
) -> list[Request]:
    """*count* requests offered at ``load_factor`` × serving capacity.

    The federation drains about ``capacity / mean_service`` queries per
    virtual second, so the arrival process is Poisson with rate
    ``load_factor`` times that: 1.0 rides the saturation edge, 4.0 is
    an overload storm.  ``accessions`` seeds the lookup population.
    """
    if not accessions:
        raise ValueError("a workload needs at least one accession")
    if count < 1:
        raise ValueError("a workload needs at least one request")
    if load_factor <= 0 or mean_service <= 0 or capacity < 1:
        raise ValueError("load_factor, mean_service, capacity "
                         "must be positive")
    rng = random.Random(("serving-workload", seed).__repr__())
    rate = load_factor * capacity / mean_service
    requests: list[Request] = []
    arrival = start
    for index in range(count):
        arrival += rng.expovariate(rate)
        kind = _weighted(rng, _KIND_WEIGHTS)
        if kind == "gene":
            params = {"accession": rng.choice(accessions)}
        elif kind == "genes":
            size = min(batch_size, len(accessions))
            params = {"accessions": [rng.choice(accessions)
                                     for __ in range(size)]}
        else:
            params = {}
        requests.append(Request(
            kind=kind,
            params=params,
            priority=_weighted(rng, _PRIORITY_WEIGHTS),
            arrival=arrival,
            label=f"q{index:04d}",
        ))
    return requests


def overload_federation(
    *,
    seed: int = 71,
    size: int = 24,
    fail_rate: float = 0.05,
    latency: float = 0.5,
    slow_rate: float = 0.1,
    slow_factor: float = 8.0,
    deadline: float = 25.0,
    capacity: int = 4,
    policy: ServingPolicy | None = None,
    strict: bool = False,
    cached: bool = False,
    max_concurrency: int | None = None,
):
    """The calibrated four-source federation behind A11 / chaos 11.

    Four repositories behind :class:`~repro.sources.FaultyRepository`
    proxies on one :class:`~repro.sources.VirtualClock`, each with a
    small fault rate and a heavy-tailed latency model (``slow_rate`` of
    calls run ``slow_factor`` × slower — the stragglers hedging exists
    for), fronted by a :class:`FederationServer` whose hedge replicas
    are the *clean* inner repositories.

    ``cached=False`` (the default) mediates every query live — the
    configuration where offered load beyond capacity actually hurts,
    which is what A11 measures.  ``cached=True`` swaps in a
    :class:`~repro.mediator.CachedMediator`, which brownout's
    cache-only rung needs.

    Returns ``(server, mediator, sources, accessions)``.  Everything is
    seeded; two calls with the same arguments behave identically.
    """
    from repro.mediator import CachedMediator, Mediator, RetryPolicy
    from repro.sources import (
        AceRepository,
        EmblRepository,
        FaultyRepository,
        GenBankRepository,
        SwissProtRepository,
        Universe,
        VirtualClock,
    )

    universe = Universe(seed=seed, size=size)
    timeline = VirtualClock()
    sources = [
        FaultyRepository(GenBankRepository(universe), timeline, seed=1),
        FaultyRepository(EmblRepository(universe), timeline, seed=2),
        FaultyRepository(AceRepository(universe), timeline, seed=3),
        FaultyRepository(SwissProtRepository(universe), timeline, seed=4),
    ]
    retry_policy = RetryPolicy(max_attempts=3, base_delay=1.0,
                               multiplier=2.0, jitter=0.0, deadline=40.0)
    if cached:
        mediator = CachedMediator(sources, retry_policy=retry_policy,
                                  timeline=timeline,
                                  max_concurrency=max_concurrency)
    else:
        mediator = Mediator(sources, retry_policy=retry_policy,
                            timeline=timeline,
                            max_concurrency=max_concurrency)
    # Faults start *after* the mediator's sync monitors take their
    # clean initial snapshots — the chaos begins at serve time.
    for proxy in sources:
        proxy.fail_with_rate(fail_rate)
        proxy.add_latency(latency, slow_rate=slow_rate,
                          slow_factor=slow_factor)
    if policy is None:
        policy = ServingPolicy(capacity=capacity, deadline=deadline)
    server = FederationServer(
        mediator, policy,
        replicas={proxy.name: proxy.inner for proxy in sources},
        strict=strict,
    )
    accessions = sorted({accession for proxy in sources
                         for accession in proxy.accessions()})[:8]
    return server, mediator, sources, accessions
