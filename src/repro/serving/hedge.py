"""Hedged requests: cut off the latency tail with one backup call.

A heavy-tailed source makes a few calls take 10× the median, and in a
fan-out the slowest source sets the query's makespan.  The hedger
watches every primary call's duration in a live histogram; once a call
has been outstanding longer than the observed p95, it issues *one*
backup call to a replica source and takes whichever answer lands
first.  Two guards keep hedging from becoming its own overload:

- the delay is a real quantile from real observations — the hedger
  stays silent until ``min_observations`` calls have been seen, so a
  cold start can't hedge on noise;
- hedges are token-limited (``ratio`` tokens earned per observed
  call, capped at ``burst``), so at most ~``ratio`` of calls are ever
  doubled no matter how ugly the tail gets.

Everything is virtual-time deterministic: "outstanding longer than
p95" is decided arithmetically from the measured primary duration, and
the winner is whichever virtual completion instant is earlier, with
the primary winning ties.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import Histogram, count as _metric

#: Histogram bounds tuned to the virtual clock's unit scale (retry
#: backoffs are O(1), injected latencies O(1)-O(100)).
LATENCY_BOUNDS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                  50.0, 100.0, 250.0)


class Hedger:
    """Per-source hedging decision state.

    The hedger owns the source's latency histogram (it doubles as the
    brownout controller's slow-source ranking input) and the hedge
    token bucket.  Whether a hedge can actually *run* is the caller's
    concern — the mediator only hedges when a replica wrapper has been
    installed — but observations flow in regardless, so the delay is
    ready the moment a replica appears.
    """

    def __init__(
        self,
        source: str,
        *,
        quantile: float = 0.95,
        ratio: float = 0.1,
        burst: float = 2.0,
        min_observations: int = 16,
    ) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("hedge quantile must be in (0, 1)")
        self.source = source
        self.quantile = quantile
        self.ratio = float(ratio)
        self.burst = float(burst)
        self.min_observations = min_observations
        self.latency = Histogram(f"latency.{source}", LATENCY_BOUNDS)
        self.replica = None  # LiveSourceWrapper, installed by the mediator
        self._tokens = float(burst)
        self._lock = threading.Lock()
        self.issued = 0
        self.won = 0
        self.suppressed = 0

    def observe(self, duration: float) -> None:
        """Record a primary call's duration; earns hedge tokens."""
        self.latency.observe(duration)
        with self._lock:
            self._tokens = min(self.burst, self._tokens + self.ratio)

    def hedge_delay(self) -> float | None:
        """Virtual time to wait before hedging, or None when untrained.

        The p95 bucket *upper bound* — deliberately conservative: we
        hedge calls that are provably in the tail, not borderline ones.
        """
        if self.latency.count < self.min_observations:
            return None
        bound = self.latency.quantile_bound(self.quantile)
        return bound if bound != float("inf") else None

    def try_issue(self) -> bool:
        """Spend one hedge token; False caps the hedge rate."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.issued += 1
                _metric("serving", "hedges_issued")
                return True
            self.suppressed += 1
            return False

    def record_win(self) -> None:
        self.won += 1
        _metric("serving", "hedges_won")

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def __repr__(self) -> str:
        return (f"Hedger({self.source!r}, issued={self.issued}, "
                f"won={self.won}, observations={self.latency.count})")
