"""Serving policy: every overload-protection knob in one frozen bundle.

The federation server composes five mechanisms (admission control,
retry budgets, adaptive concurrency, hedged requests, brownout mode);
each is tuned — or switched off — here.  :meth:`ServingPolicy.
unprotected` is the ablation baseline A11 measures against: same
serving loop, same capacity, no protection whatsoever.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MediatorError

#: Priority classes, in admission order (lower admits first).
INTERACTIVE = 0   # a biologist waiting at a prompt
BATCH = 1         # pipelines and bulk exports
MAINTENANCE = 2   # resyncs, prefetch, housekeeping

PRIORITY_NAMES = {INTERACTIVE: "interactive", BATCH: "batch",
                  MAINTENANCE: "maintenance"}

#: Brownout levels (stepwise degradation, hysteretic recovery).
NORMAL = 0        # full service
CACHE_ONLY = 1    # non-interactive queries answered from cache or shed
REDUCED = 2       # + slowest source excluded, non-interactive shed

BROWNOUT_NAMES = {NORMAL: "normal", CACHE_ONLY: "cache-only",
                  REDUCED: "reduced"}


@dataclass(frozen=True)
class ServingPolicy:
    """How hard the federation defends itself under offered load.

    ``capacity`` is the server's genuine parallelism: how many queries
    can execute concurrently (in virtual time).  Everything else
    bounds the work *around* those lanes.  Delays and deadlines are
    virtual-clock units, matching :class:`~repro.mediator.RetryPolicy`.
    """

    # -- the serving loop ---------------------------------------------------
    capacity: int = 4
    #: Per-query deadline budget, charged from *arrival* (queue wait
    #: included); ``None`` falls back to the retry policy's deadline.
    deadline: float | None = None

    # -- admission control --------------------------------------------------
    admission_control: bool = True
    queue_capacity: int = 32
    #: Shed at enqueue when estimated wait > factor × remaining budget.
    admission_wait_factor: float = 1.0

    # -- retry budgets ------------------------------------------------------
    #: Tokens deposited per successful call (``None`` disables budgets).
    retry_budget_ratio: float | None = 0.1
    #: Token cap — the burst of retries a cold source may still get.
    retry_budget_burst: float = 3.0

    # -- adaptive concurrency (AIMD) ---------------------------------------
    adaptive_concurrency: bool = True
    aimd_min_limit: int = 1
    #: ``None`` means "the server's capacity" (no source throttled
    #: below full width until it struggles).
    aimd_max_limit: int | None = None
    aimd_increase: float = 0.5
    aimd_backoff: float = 0.5
    #: Decrease when a source's per-query latency exceeds this
    #: (``None``: failure-driven only).
    aimd_latency_target: float | None = None
    #: At most one multiplicative decrease per window (virtual time).
    aimd_cooldown: float = 1.0

    # -- hedged requests ----------------------------------------------------
    hedging: bool = True
    hedge_quantile: float = 0.95
    #: Hedge tokens deposited per observed call (caps the hedge rate).
    hedge_ratio: float = 0.1
    hedge_burst: float = 2.0
    #: Calls observed before the latency histogram is trusted.
    hedge_min_observations: int = 16

    # -- brownout mode ------------------------------------------------------
    brownout: bool = True
    #: Queue pressure (depth / queue_capacity) that counts as hot.
    brownout_enter_pressure: float = 0.75
    brownout_exit_pressure: float = 0.25
    #: Consecutive hot / calm admissions before stepping up / down —
    #: exit takes longer than entry (hysteresis).
    brownout_enter_after: int = 4
    brownout_exit_after: int = 8
    #: Observations of a source before it can be ranked "slowest".
    brownout_rank_min_observations: int = 8

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise MediatorError("a federation server needs capacity >= 1")
        if self.queue_capacity < 0:
            raise MediatorError("queue_capacity cannot be negative")
        if self.aimd_min_limit < 1:
            raise MediatorError("aimd_min_limit must be at least 1")
        if not 0.0 < self.aimd_backoff < 1.0:
            raise MediatorError("aimd_backoff must be in (0, 1)")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise MediatorError("hedge_quantile must be in (0, 1)")

    @property
    def max_source_limit(self) -> int:
        return (self.aimd_max_limit if self.aimd_max_limit is not None
                else self.capacity)

    @classmethod
    def unprotected(cls, capacity: int = 4,
                    deadline: float | None = None) -> "ServingPolicy":
        """The ablation baseline: same lanes, zero protection.

        Every query is admitted unconditionally and runs to completion
        no matter how late; retries, width, and hedging behave exactly
        as the pre-serving mediator did.
        """
        return cls(
            capacity=capacity,
            deadline=deadline,
            admission_control=False,
            queue_capacity=1_000_000_000,
            retry_budget_ratio=None,
            adaptive_concurrency=False,
            hedging=False,
            brownout=False,
        )

    def with_overrides(self, **changes) -> "ServingPolicy":
        return replace(self, **changes)
