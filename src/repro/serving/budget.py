"""Retry budgets: a per-source token bucket shared across queries.

A retry storm is metastable: a degraded source makes callers retry,
the retries load the source further, and the federation amplifies its
own outage.  The budget breaks the loop by making retries *earned* —
each successful call to a source deposits ``ratio`` tokens, each retry
spends one, and the balance is capped at ``burst``.  During an outage
no successes arrive, the bucket drains after the first few retries,
and the aggregate retry load at the struggling source falls to ~zero
until it starts answering again.

The bucket is shared by every query touching a source (that's the
point — the cap is on *aggregate* load), so it is lock-protected and
uses only counters: no timestamps, fully deterministic on the virtual
clock.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import gauge as _gauge


class RetryBudget:
    """Token bucket capping aggregate retries against one source.

    ``ratio`` is the long-run retry/success ceiling (0.1 → retries stay
    under ~10% of successful calls); ``burst`` is the opening balance
    and cap, so a cold or recovering source still gets a handful of
    retries before any success has been observed.
    """

    def __init__(self, source: str, ratio: float = 0.1,
                 burst: float = 3.0) -> None:
        if ratio < 0:
            raise ValueError("retry budget ratio cannot be negative")
        if burst < 1:
            raise ValueError("retry budget burst must allow >= 1 token")
        self.source = source
        self.ratio = float(ratio)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._lock = threading.Lock()
        self.deposits = 0.0
        self.spent = 0
        self.denied = 0
        self._publish()

    def _publish(self) -> None:
        _gauge("serving", f"retry_tokens.{self.source}", self._tokens)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def record_success(self) -> None:
        """A call succeeded: deposit ``ratio`` tokens (capped at burst)."""
        with self._lock:
            deposit = min(self.ratio, self.burst - self._tokens)
            if deposit > 0:
                self._tokens += deposit
                self.deposits += deposit
            self._publish()

    def try_spend(self) -> bool:
        """Take one token for a retry; False means the budget is spent."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                self._publish()
                return True
            self.denied += 1
            return False

    def __repr__(self) -> str:
        return (f"RetryBudget({self.source!r}, tokens={self.tokens:.2f}, "
                f"spent={self.spent}, denied={self.denied})")
