"""The federation server: a virtual-time serving loop over a mediator.

This is where the five overload mechanisms compose.  A workload is a
list of :class:`Request` objects with virtual arrival times; ``serve``
replays them through a deterministic event loop:

1. **arrival** — queue pressure feeds the brownout controller, then the
   request is admitted, answered from cache (brownout cache-only), or
   shed (``queue_full`` / ``deadline`` / ``brownout``) before any
   source work;
2. **start** — when one of ``capacity`` lanes frees up, the highest-
   priority queued request starts; if its deadline already passed in
   the queue it is shed *at dequeue* and reports ``deadline_hit``
   honestly;
3. **execution** — the whole query runs on a clock track branched at
   its *arrival* instant: queue wait is advanced first (under a
   ``queue.wait`` span, so traces show it as its own layer), then the
   mediator runs with ``deadline_at`` anchored at arrival — queue
   wait, cache time, source latency, and retry backoff all draw from
   one budget;
4. **completion** — the observed service time feeds the admission
   queue's wait estimator, per-source latencies feed the AIMD
   limiters, and the lane picks up the next queued request.

Determinism: arrivals are processed in ``(arrival, input order)``,
lanes are picked lowest-index-first, the queue pops ``(priority,
sequence)``, and every duration is virtual — identical seeds give
identical queue/shed/hedge decisions at any thread-pool width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MediatorError, OverloadError
from repro.mediator.mediator import (
    LiveSourceWrapper,
    MediatedAnswer,
    QueryHealth,
)
from repro.obs.trace import span as _span
from repro.serving.admission import AdmissionQueue
from repro.serving.brownout import BrownoutController
from repro.serving.budget import RetryBudget
from repro.serving.hedge import Hedger
from repro.serving.limiter import AdaptiveLimiter
from repro.serving.policy import INTERACTIVE, PRIORITY_NAMES, ServingPolicy

#: Query kinds a request may carry (mediator / cached-mediator methods).
REQUEST_KINDS = ("find_genes", "gene", "genes")


@dataclass
class Request:
    """One client query with a virtual arrival time.

    ``arrival`` is an offset from the instant ``serve`` is called;
    ``params`` are the keyword arguments of the named query method.
    ``deadline`` overrides the policy's per-query budget (virtual
    units, charged from arrival).
    """

    kind: str
    params: dict = field(default_factory=dict)
    priority: int = INTERACTIVE
    arrival: float = 0.0
    deadline: float | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise MediatorError(f"unknown request kind {self.kind!r} "
                                f"(one of {REQUEST_KINDS})")
        if self.priority not in PRIORITY_NAMES:
            raise MediatorError(f"unknown priority class {self.priority!r}")

    @property
    def priority_name(self) -> str:
        return PRIORITY_NAMES[self.priority]


@dataclass
class ServedResult:
    """What one request got back, with full timing provenance.

    All times are offsets from the ``serve`` call's start instant;
    ``latency`` is what the *client* saw (arrival → completion,
    queue wait included).
    """

    request: Request
    answer: object
    arrival: float
    started: float
    completed: float
    queue_wait: float = 0.0
    from_cache: bool = False

    @property
    def health(self) -> QueryHealth:
        return self.answer.health

    @property
    def shed(self) -> bool:
        return self.health.shed

    @property
    def shed_reason(self) -> str | None:
        return self.health.shed_reason

    @property
    def latency(self) -> float:
        return self.completed - self.arrival

    def in_deadline(self, budget: float | None) -> bool:
        """Did the client get a real answer inside its budget?"""
        if self.shed:
            return False
        if budget is None:
            return True
        return self.latency <= budget + 1e-9


@dataclass
class _Queued:
    """Book-keeping for a request sitting in the admission queue."""

    request: Request
    arrive_abs: float
    deadline_abs: float | None
    #: Position of the request in the serve() input (places the result).
    index: int = -1


class FederationServer:
    """Overload-safe serving in front of a (cached) mediator.

    ``mediator`` may be a :class:`~repro.mediator.Mediator` or a
    :class:`~repro.mediator.CachedMediator` (brownout's cache-only rung
    needs the latter).  ``replicas`` maps source name → a replica
    :class:`~repro.sources.base.Repository` hedged requests may fall
    back to; sources without a replica are observed but never hedged.
    """

    def __init__(
        self,
        mediator,
        policy: ServingPolicy | None = None,
        *,
        replicas: dict | None = None,
        strict: bool = False,
    ) -> None:
        self.mediator = mediator
        #: The raw mediator (unwraps CachedMediator for wrapper access).
        self.inner = getattr(mediator, "mediator", mediator)
        self.policy = policy if policy is not None else ServingPolicy()
        self.timeline = mediator.timeline
        self.strict = strict
        self.queue = AdmissionQueue(
            self.policy.queue_capacity,
            wait_factor=self.policy.admission_wait_factor,
        )
        names = mediator.source_names
        self.budgets: dict[str, RetryBudget] = {}
        if self.policy.retry_budget_ratio is not None:
            self.budgets = {
                name: RetryBudget(name,
                                  ratio=self.policy.retry_budget_ratio,
                                  burst=self.policy.retry_budget_burst)
                for name in names
            }
        self.hedgers: dict[str, Hedger] = {}
        if self.policy.hedging:
            self.hedgers = {
                name: Hedger(
                    name,
                    quantile=self.policy.hedge_quantile,
                    ratio=self.policy.hedge_ratio,
                    burst=self.policy.hedge_burst,
                    min_observations=self.policy.hedge_min_observations,
                )
                for name in names
            }
            for name, repository in (replicas or {}).items():
                if name not in self.hedgers:
                    raise MediatorError(
                        f"replica for unmediated source {name!r}")
                # The replica shares the mediator's cost accounting and
                # timeline but not its breaker — a hedge is a single
                # best-effort call, not a resilient one.
                self.hedgers[name].replica = LiveSourceWrapper(
                    repository, self.inner.cost,
                    retry_policy=self.inner.retry_policy,
                    timeline=self.timeline,
                )
        self.limiters: dict[str, AdaptiveLimiter] = {}
        if self.policy.adaptive_concurrency:
            self.limiters = {
                name: AdaptiveLimiter(
                    name,
                    min_limit=self.policy.aimd_min_limit,
                    max_limit=self.policy.max_source_limit,
                    increase=self.policy.aimd_increase,
                    backoff=self.policy.aimd_backoff,
                    latency_target=self.policy.aimd_latency_target,
                    cooldown=self.policy.aimd_cooldown,
                )
                for name in names
            }
        self.brownout = (
            BrownoutController(
                enter_pressure=self.policy.brownout_enter_pressure,
                exit_pressure=self.policy.brownout_exit_pressure,
                enter_after=self.policy.brownout_enter_after,
                exit_after=self.policy.brownout_exit_after,
            )
            if self.policy.brownout else None
        )
        self.inner.install_overload_controls(
            self.budgets or None, self.hedgers or None)
        #: (start_abs, end_abs, sources) per executed query — the AIMD
        #: limiters' in-flight accounting reads these.
        self._intervals: list[tuple[float, float, frozenset]] = []
        self._base = 0.0

    # -- introspection ----------------------------------------------------------

    @property
    def source_names(self) -> tuple[str, ...]:
        return self.mediator.source_names

    @property
    def shed_by_reason(self) -> dict[str, int]:
        return dict(self.queue.shed)

    def budget_for(self, request: Request) -> float | None:
        """The per-query deadline budget, charged from arrival."""
        if request.deadline is not None:
            return request.deadline
        if self.policy.deadline is not None:
            return self.policy.deadline
        return self.inner.retry_policy.deadline

    # -- the serving loop -------------------------------------------------------

    def serve(self, requests: Sequence[Request]) -> list[ServedResult]:
        """Replay *requests* through the admission queue and the lanes.

        Returns one :class:`ServedResult` per request, in input order.
        The shared clock advances once, at the end, by the workload's
        makespan — callers before/after see consistent virtual time.
        """
        base = self.timeline.now()
        self._base = base
        self._intervals = []
        capacity = self.policy.capacity
        lanes = [base] * capacity
        results: dict[int, ServedResult] = {}
        ordered = sorted(enumerate(requests),
                         key=lambda pair: (pair[1].arrival, pair[0]))
        seq = 0
        for index, request in ordered:
            arrive_abs = base + request.arrival
            self._drain(lanes, results, until=arrive_abs)
            results_entry = self._arrive(request, index, seq, arrive_abs,
                                         lanes)
            if results_entry is not None:
                results[index] = results_entry
            seq += 1
        self._drain(lanes, results, until=None)
        end = max([base] + [result.completed + base
                            for result in results.values()])
        if end > base:
            self.timeline.advance(end - base)
        ordered_results = [results[index] for index in range(len(requests))]
        return ordered_results

    def submit(self, request: Request) -> ServedResult:
        """Serve one request right now (arrival = the current instant)."""
        return self.serve([request])[0]

    def admit_inline(self, priority: int = INTERACTIVE) -> str | None:
        """Admission verdict for work executed outside :meth:`serve`.

        The BiQL session calls this before running a statement inline:
        it consults the brownout ladder and the queue bound but does
        not enqueue — inline work runs immediately or not at all.
        Returns the shed reason, or ``None`` to proceed.
        """
        if self.brownout is not None and self.brownout.sheds(priority):
            return self.queue.note_shed("brownout", priority)
        if (self.policy.admission_control
                and self.queue.depth >= self.queue.capacity):
            return self.queue.note_shed("queue_full", priority)
        return None

    # -- arrival handling -------------------------------------------------------

    def _arrive(self, request: Request, index: int, seq: int,
                arrive_abs: float, lanes: list) -> ServedResult | None:
        """Admit, cache-serve, or shed one arrival.  Returns a result
        for immediately-resolved requests (shed / cache hit), or None
        when the request was queued (resolved later by the drain)."""
        priority = request.priority
        if self.brownout is not None:
            self.brownout.note_pressure(self.queue.pressure, arrive_abs)
            if self.brownout.sheds(priority):
                self.queue.note_shed("brownout", priority)
                return self._shed_result(request, "brownout",
                                         arrival=arrive_abs - self._base)
            if self.brownout.cache_only(priority):
                return self._cache_only(request, arrive_abs)
        budget = self.budget_for(request)
        item = _Queued(
            request=request,
            arrive_abs=arrive_abs,
            deadline_abs=(arrive_abs + budget
                          if budget is not None else None),
            index=index,
        )
        if self.policy.admission_control:
            busy = sum(1 for lane in lanes if lane > arrive_abs)
            reason = self.queue.try_admit(
                item, priority=priority, seq=seq,
                remaining_budget=budget,
                busy_lanes=busy, lanes=len(lanes),
            )
            if reason is not None:
                return self._shed_result(request, reason,
                                         arrival=arrive_abs - self._base)
        else:
            self.queue.push(item, priority=priority, seq=seq)
        return None

    def _cache_only(self, request: Request,
                    arrive_abs: float) -> ServedResult:
        """Brownout level 1: answer from cache or shed, never go live."""
        peek = getattr(self.mediator, "peek", None)
        answer = peek(request.kind, **request.params) if peek else None
        arrival = arrive_abs - self._base
        if answer is None:
            self.queue.note_shed("brownout", request.priority)
            return self._shed_result(request, "brownout", arrival=arrival)
        with _span("serving.request", kind=request.kind,
                   priority=request.priority_name) as spn:
            spn.annotate(admitted=True, cache_only=True)
        return ServedResult(request=request, answer=answer,
                            arrival=arrival, started=arrival,
                            completed=arrival, from_cache=True)

    def _shed_result(self, request: Request, reason: str, *,
                     arrival: float, queue_wait: float = 0.0,
                     completed: float | None = None,
                     deadline_hit: bool = False) -> ServedResult:
        health = QueryHealth()
        health.shed = True
        health.shed_reason = reason
        health.queue_wait = queue_wait
        health.deadline_hit = deadline_hit
        with _span("serving.request", kind=request.kind,
                   priority=request.priority_name) as spn:
            spn.annotate(shed=reason, queue_wait=queue_wait)
            health.trace_id = spn.trace_id
        if self.strict:
            raise OverloadError(
                f"query shed ({reason}) to protect the federation",
                reason=reason, priority=request.priority,
            )
        answer = MediatedAnswer(health=health)
        answer.from_cache = False
        done = completed if completed is not None else arrival + queue_wait
        return ServedResult(request=request, answer=answer,
                            arrival=arrival, started=done, completed=done,
                            queue_wait=queue_wait)

    # -- lane scheduling --------------------------------------------------------

    def _drain(self, lanes: list, results: dict,
               until: float | None) -> None:
        """Start queued requests on free lanes up to instant *until*
        (None = drain everything).  Lane choice is lowest-free-then-
        lowest-index; queue order is (priority, sequence)."""
        while len(self.queue):
            lane = min(range(len(lanes)), key=lambda i: (lanes[i], i))
            head = self.queue.peek()
            __, __, item = head
            start_abs = max(lanes[lane], item.arrive_abs)
            if until is not None and start_abs > until:
                return
            priority, seq, item = self.queue.pop()
            index = item.index
            if (self.policy.admission_control
                    and item.deadline_abs is not None
                    and start_abs >= item.deadline_abs):
                # Its whole budget evaporated in the queue: shed at
                # dequeue, honestly reporting both facts.
                wait = start_abs - item.arrive_abs
                self.queue.note_shed("deadline", priority)
                results[index] = self._shed_result(
                    item.request, "deadline",
                    arrival=item.arrive_abs - self._base,
                    queue_wait=wait,
                    completed=start_abs - self._base,
                    deadline_hit=True,
                )
                continue
            result = self._run(item, start_abs)
            lanes[lane] = self._base + result.completed
            results[index] = result

    def _run(self, item: _Queued, start_abs: float) -> ServedResult:
        """Execute one admitted request on a lane, on its own track."""
        request = item.request
        wait = start_abs - item.arrive_abs
        exclude = self._exclusions(request, start_abs)
        track = self.timeline.open_track(item.arrive_abs)
        try:
            with _span("serving.request", kind=request.kind,
                       priority=request.priority_name) as spn:
                with _span("queue.wait", priority=request.priority_name):
                    if wait:
                        self.timeline.advance(wait)
                spn.annotate(admitted=True, queue_wait=wait)
                if exclude:
                    spn.annotate(excluded=",".join(sorted(exclude)))
                answer = self._execute(request, item.deadline_abs, exclude)
        finally:
            duration = self.timeline.close_track(track)
        completed_abs = item.arrive_abs + duration
        health = answer.health
        health.queue_wait = wait
        # The wait estimator needs lane-occupancy time, NOT client
        # latency: feeding queue wait back in would make estimated
        # waits inflate themselves under load.
        self.queue.observe_service(completed_abs - start_abs)
        used = frozenset(self.source_names) - exclude
        self._intervals.append((start_abs, completed_abs, used))
        self._feed_limiters(health, completed_abs)
        return ServedResult(
            request=request,
            answer=answer,
            arrival=item.arrive_abs - self._base,
            started=start_abs - self._base,
            completed=completed_abs - self._base,
            queue_wait=wait,
            from_cache=bool(getattr(answer, "from_cache", False)),
        )

    def _execute(self, request: Request, deadline_abs: float | None,
                 exclude: frozenset):
        method = getattr(self.mediator, request.kind)
        kwargs = dict(request.params)
        kwargs["deadline_at"] = deadline_abs
        if exclude:
            kwargs["exclude"] = tuple(sorted(exclude))
        return method(**kwargs)

    # -- feedback ---------------------------------------------------------------

    def _exclusions(self, request: Request,
                    start_abs: float) -> frozenset:
        """Which sources sit out this query (AIMD limit / brownout)."""
        names = self.source_names
        exclude: set[str] = set()
        in_flight = {name: 0 for name in names}
        for started, ended, used in self._intervals:
            if started <= start_abs < ended:
                for name in used:
                    if name in in_flight:
                        in_flight[name] += 1
        for name in names:
            limiter = self.limiters.get(name)
            if limiter is not None and in_flight[name] >= limiter.allowed:
                exclude.add(name)
        if (self.brownout is not None and self.brownout.reduced_sources()
                and request.priority == INTERACTIVE):
            slow = self._slowest_source()
            if slow is not None:
                exclude.add(slow)
        if len(exclude) >= len(names):
            # Never bench the whole federation: keep the source with
            # the most limit headroom (ties broken by name).
            def headroom(name: str):
                limiter = self.limiters.get(name)
                allowed = limiter.allowed if limiter else len(names)
                return (in_flight[name] - allowed, name)
            exclude.discard(min(names, key=headroom))
        return frozenset(exclude)

    def _slowest_source(self) -> str | None:
        """The slowest source by observed p95, for brownout level 2."""
        floor = self.policy.brownout_rank_min_observations
        ranked = [
            (hedger.latency.quantile_bound(0.95), name)
            for name, hedger in self.hedgers.items()
            if hedger.latency.count >= floor
        ]
        if not ranked or len(self.source_names) < 2:
            return None
        return max(ranked)[1]

    def _feed_limiters(self, health: QueryHealth,
                       completed_abs: float) -> None:
        for name, outcome in health.outcomes.items():
            limiter = self.limiters.get(name)
            if limiter is None or outcome.status == "skipped":
                continue
            ok = outcome.status in ("ok", "retried")
            limiter.record(ok=ok, latency=outcome.latency,
                           now=completed_abs)


def summarize(results: Sequence[ServedResult], *,
              budget: float | None = None) -> dict:
    """Aggregate serving outcomes into the numbers A11 plots.

    ``budget`` is the per-query deadline used for the goodput
    definition; when None, every non-shed answer counts as good.
    """
    latencies = sorted(result.latency for result in results
                       if not result.shed)
    shed_reasons: dict[str, int] = {}
    for result in results:
        if result.shed:
            reason = result.shed_reason or "unknown"
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
    good = sum(1 for result in results if result.in_deadline(budget))
    completed = max((result.completed for result in results), default=0.0)
    return {
        "offered": len(results),
        "served": len(latencies),
        "shed": sum(shed_reasons.values()),
        "shed_rate": (sum(shed_reasons.values()) / len(results)
                      if results else 0.0),
        "shed_by_reason": dict(sorted(shed_reasons.items())),
        "good": good,
        "goodput_ratio": good / len(results) if results else 0.0,
        "p50": _percentile(latencies, 0.50),
        "p95": _percentile(latencies, 0.95),
        "p99": _percentile(latencies, 0.99),
        "max_latency": latencies[-1] if latencies else 0.0,
        "makespan": completed,
    }


def _percentile(ordered: Sequence[float], quantile: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1,
                max(0, math.ceil(quantile * len(ordered)) - 1))
    return ordered[index]
