"""Admission control: shed *before* work, at the queue's front door.

The cheapest query to serve under overload is the one never started.
The admission queue is a bounded, priority-classed buffer between
arriving queries and the serving lanes; a query is rejected at enqueue
— before any source call, cache probe, or retry — when

- the queue is full (``queue_full``), or
- the estimated wait already exceeds what the query's deadline budget
  has left (``deadline``): with ``k`` requests ahead and ``busy``
  lanes occupied, the estimate is ``ceil-free arithmetic over the
  observed median query duration`` — pessimistic enough to shed
  honestly, cheap enough to run per arrival.

Dequeue order is strictly ``(priority class, arrival sequence)``:
interactive first, FIFO inside a class.  Both the order and the
estimate are pure arithmetic over virtual time — no wall clock, no
randomness — so identical seeds give identical shed decisions at any
pool width.
"""

from __future__ import annotations

import heapq

from repro.obs.metrics import Histogram, count as _metric, gauge as _gauge
from repro.serving.policy import PRIORITY_NAMES

#: Bounds for the whole-query service-time histogram (virtual units).
SERVICE_BOUNDS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                  100.0, 250.0, 500.0)


class AdmissionQueue:
    """Bounded priority queue with wait estimation from live latency.

    The serving loop drives it single-threaded over virtual time, so
    there are no locks; determinism comes from the ``(priority, seq)``
    heap key — ``seq`` is the arrival sequence number, which breaks
    every tie the same way on every run.
    """

    def __init__(self, capacity: int, *, wait_factor: float = 1.0) -> None:
        if capacity < 0:
            raise ValueError("queue capacity cannot be negative")
        self.capacity = capacity
        self.wait_factor = wait_factor
        self._heap: list[tuple[int, int, object]] = []
        #: Whole-query service durations; feeds the wait estimate.
        self.service_time = Histogram("serving.service_time", SERVICE_BOUNDS)
        self.admitted = 0
        self.shed: dict[str, int] = {}

    # -- state ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._heap)

    @property
    def pressure(self) -> float:
        """Queue fullness in [0, 1] (1.0 when capacity is zero)."""
        if self.capacity <= 0:
            return 1.0 if self._heap else 0.0
        return len(self._heap) / self.capacity

    def _publish_depth(self) -> None:
        _gauge("serving", "queue_depth", len(self._heap))

    # -- wait estimation --------------------------------------------------------

    def estimated_wait(self, busy_lanes: int, lanes: int) -> float:
        """Expected queue wait for an arrival, from live service times.

        ``(queued + busy) / lanes`` service slots must drain before a
        new arrival starts; each slot costs about the observed mean
        service time (the histogram's sum/count — the unbiased choice;
        a bucket bound would overestimate and over-shed).  Before any
        observation the estimate is zero — the queue admits
        optimistically until it has data, and the bounded capacity
        still backstops it.
        """
        if lanes <= 0:
            return float("inf")
        if not self.service_time.count:
            return 0.0
        mean = self.service_time.total / self.service_time.count
        ahead = len(self._heap) + busy_lanes
        return (ahead / lanes) * mean

    def observe_service(self, duration: float) -> None:
        self.service_time.observe(duration)

    # -- admit / shed -----------------------------------------------------------

    def try_admit(self, item, *, priority: int, seq: int,
                  remaining_budget: float | None,
                  busy_lanes: int, lanes: int) -> str | None:
        """Enqueue *item*, or return the shed reason without queueing."""
        if len(self._heap) >= self.capacity:
            return self.note_shed("queue_full", priority)
        if remaining_budget is not None:
            wait = self.estimated_wait(busy_lanes, lanes)
            if wait > self.wait_factor * remaining_budget:
                return self.note_shed("deadline", priority)
        heapq.heappush(self._heap, (priority, seq, item))
        self.admitted += 1
        _metric("serving", "admitted")
        self._publish_depth()
        return None

    def push(self, item, *, priority: int, seq: int) -> None:
        """Enqueue unconditionally (the unprotected baseline)."""
        heapq.heappush(self._heap, (priority, seq, item))
        self.admitted += 1
        self._publish_depth()

    def peek(self):
        """The next ``(priority, seq, item)`` without removing it."""
        return self._heap[0] if self._heap else None

    def pop(self):
        """Next ``(priority, seq, item)`` — interactive first, then FIFO."""
        entry = heapq.heappop(self._heap)
        self._publish_depth()
        return entry

    def note_shed(self, reason: str, priority: int) -> str:
        """Record a shed decision (also used for dequeue/brownout sheds)."""
        self.shed[reason] = self.shed.get(reason, 0) + 1
        _metric("serving", f"shed.{reason}")
        _metric("serving",
                f"shed_by_class.{PRIORITY_NAMES.get(priority, priority)}")
        return reason

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return (f"AdmissionQueue(depth={self.depth}/{self.capacity}, "
                f"admitted={self.admitted}, shed={self.total_shed})")
