"""Overload-safe serving for the federation (admission control, retry
budgets, adaptive concurrency, hedged requests, brownout mode)."""

from repro.serving.admission import AdmissionQueue
from repro.serving.brownout import BrownoutController
from repro.serving.budget import RetryBudget
from repro.serving.hedge import Hedger
from repro.serving.limiter import AdaptiveLimiter
from repro.serving.policy import (
    BATCH,
    BROWNOUT_NAMES,
    CACHE_ONLY,
    INTERACTIVE,
    MAINTENANCE,
    NORMAL,
    PRIORITY_NAMES,
    REDUCED,
    ServingPolicy,
)
from repro.serving.server import (
    FederationServer,
    Request,
    ServedResult,
    summarize,
)
from repro.serving.workload import overload_federation, synthetic_workload

__all__ = [
    "AdmissionQueue",
    "AdaptiveLimiter",
    "BrownoutController",
    "FederationServer",
    "Hedger",
    "Request",
    "RetryBudget",
    "ServedResult",
    "ServingPolicy",
    "overload_federation",
    "summarize",
    "synthetic_workload",
    "INTERACTIVE",
    "BATCH",
    "MAINTENANCE",
    "NORMAL",
    "CACHE_ONLY",
    "REDUCED",
    "PRIORITY_NAMES",
    "BROWNOUT_NAMES",
]
