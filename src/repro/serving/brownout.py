"""Brownout mode: stepwise degradation with hysteretic recovery.

When the admission queue stays hot, shedding one query at a time is
not enough — the *service level* has to drop so the federation's
remaining capacity goes to the queries that matter.  The controller
watches queue pressure (depth / capacity) at every arrival and walks a
ladder:

- **level 0 (normal)** — full service;
- **level 1 (cache-only)** — maintenance queries are shed outright and
  batch queries may only be answered from cache;
- **level 2 (reduced)** — batch and maintenance are shed, and
  interactive queries drop the slowest source (by observed p95) from
  their fan-out.

Transitions are hysteretic on *consecutive* observations: pressure
must stay above the enter threshold for ``enter_after`` arrivals in a
row to step up, and below the exit threshold for ``exit_after`` in a
row to step down — and exit is deliberately slower than entry, so the
controller doesn't flap at the boundary.  One step per trigger, never
a jump, so recovery unwinds through the same states it entered by.
"""

from __future__ import annotations

from repro.obs.metrics import gauge as _gauge
from repro.serving.policy import BROWNOUT_NAMES, CACHE_ONLY, NORMAL, REDUCED


class BrownoutController:
    """Pressure-driven degradation ladder for the serving loop.

    The serving loop is single-threaded over virtual time, so the
    controller needs no locks; it is pure state fed by
    :meth:`note_pressure` at each arrival.
    """

    def __init__(
        self,
        *,
        enter_pressure: float = 0.75,
        exit_pressure: float = 0.25,
        enter_after: int = 4,
        exit_after: int = 8,
    ) -> None:
        if exit_pressure >= enter_pressure:
            raise ValueError("exit pressure must sit below enter pressure")
        if enter_after < 1 or exit_after < 1:
            raise ValueError("hysteresis windows must be at least 1")
        self.enter_pressure = enter_pressure
        self.exit_pressure = exit_pressure
        self.enter_after = enter_after
        self.exit_after = exit_after
        self.level = NORMAL
        self._hot_streak = 0
        self._calm_streak = 0
        #: [(virtual time, new level)] — the ladder's audit trail.
        self.transitions: list[tuple[float, int]] = []
        self._publish()

    def _publish(self) -> None:
        _gauge("serving", "brownout_level", self.level)

    @property
    def level_name(self) -> str:
        return BROWNOUT_NAMES[self.level]

    def note_pressure(self, pressure: float, now: float) -> int:
        """Observe queue pressure at an arrival; returns the level."""
        if pressure >= self.enter_pressure:
            self._hot_streak += 1
            self._calm_streak = 0
        elif pressure <= self.exit_pressure:
            self._calm_streak += 1
            self._hot_streak = 0
        else:
            # The dead band: streaks reset, the level holds.
            self._hot_streak = 0
            self._calm_streak = 0
        if self._hot_streak >= self.enter_after and self.level < REDUCED:
            self.level += 1
            self._hot_streak = 0
            self.transitions.append((now, self.level))
            self._publish()
        elif self._calm_streak >= self.exit_after and self.level > NORMAL:
            self.level -= 1
            self._calm_streak = 0
            self.transitions.append((now, self.level))
            self._publish()
        return self.level

    def sheds(self, priority: int) -> bool:
        """Does the current level shed this priority class outright?"""
        if self.level >= REDUCED:
            return priority >= 1          # batch and maintenance
        if self.level >= CACHE_ONLY:
            return priority >= 2          # maintenance only
        return False

    def cache_only(self, priority: int) -> bool:
        """May this class only be answered from cache right now?"""
        return self.level == CACHE_ONLY and priority == 1

    def reduced_sources(self) -> bool:
        """Should interactive fan-out drop the slowest source?"""
        return self.level >= REDUCED

    def __repr__(self) -> str:
        return (f"BrownoutController(level={self.level_name}, "
                f"transitions={len(self.transitions)})")
