"""Adaptive per-source concurrency: an AIMD limit replaces fixed width.

The mediator's fixed ``max_concurrency`` sends the same fan-out width
at a source whether it is healthy or drowning.  The limiter learns a
per-source width the way TCP learns a window: every successful,
fast-enough call nudges the limit up additively; a failure (or a call
slower than the latency target) cuts it multiplicatively.  A cooldown
keeps one bad burst from collapsing the limit to the floor — at most
one decrease per window of virtual time — and because successes keep
probing upward, a recovered source wins its width back without any
explicit reset.

The limiter only *decides*; the serving loop enforces the decision by
excluding at-limit sources from a query's fan-out (fail-fast, recorded
as a skipped outcome) rather than blocking, which keeps the virtual-
time schedule deterministic.
"""

from __future__ import annotations

import math
import threading

from repro.obs.metrics import gauge as _gauge


class AdaptiveLimiter:
    """AIMD concurrency limit for one source.

    The working limit is a float; :meth:`allowed` floors it, so e.g.
    additive steps of 0.5 open one more slot every two successes.
    """

    def __init__(
        self,
        source: str,
        *,
        min_limit: int = 1,
        max_limit: int = 4,
        increase: float = 0.5,
        backoff: float = 0.5,
        latency_target: float | None = None,
        cooldown: float = 1.0,
    ) -> None:
        if min_limit < 1:
            raise ValueError("min_limit must be at least 1")
        if max_limit < min_limit:
            raise ValueError("max_limit must be >= min_limit")
        if not 0.0 < backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        self.source = source
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = float(increase)
        self.backoff = float(backoff)
        self.latency_target = latency_target
        self.cooldown = float(cooldown)
        self._limit = float(max_limit)
        self._last_decrease: float | None = None
        self._lock = threading.Lock()
        self.increases = 0
        self.decreases = 0
        self._publish()

    def _publish(self) -> None:
        _gauge("serving", f"concurrency_limit.{self.source}", self._limit)

    @property
    def limit(self) -> float:
        with self._lock:
            return self._limit

    @property
    def allowed(self) -> int:
        """Whole in-flight slots this source may hold right now."""
        with self._lock:
            return max(self.min_limit, int(math.floor(self._limit)))

    def record(self, *, ok: bool, latency: float, now: float) -> None:
        """Feed one finished call's outcome back into the limit."""
        slow = (self.latency_target is not None
                and latency > self.latency_target)
        with self._lock:
            if ok and not slow:
                before = self._limit
                self._limit = min(float(self.max_limit),
                                  self._limit + self.increase)
                if self._limit > before:
                    self.increases += 1
            else:
                if (self._last_decrease is None
                        or now - self._last_decrease >= self.cooldown):
                    self._limit = max(float(self.min_limit),
                                      self._limit * self.backoff)
                    self._last_decrease = now
                    self.decreases += 1
            self._publish()

    def __repr__(self) -> str:
        return (f"AdaptiveLimiter({self.source!r}, limit={self.limit:.2f}, "
                f"+{self.increases}/-{self.decreases})")
