"""Evaluation harness: the Table 1 capability matrix, probed live."""

from repro.evaluation.capability import (
    CapabilityMatrix,
    ProbeEnvironment,
    PROBES,
)
from repro.evaluation.requirements import (
    CELL_NOTES,
    GENALG_CLAIM,
    NO,
    PAPER_MATRIX,
    PART,
    REQUIREMENT_IDS,
    REQUIREMENTS,
    Requirement,
    YES,
)

__all__ = [
    "CapabilityMatrix",
    "ProbeEnvironment",
    "PROBES",
    "REQUIREMENTS",
    "REQUIREMENT_IDS",
    "Requirement",
    "PAPER_MATRIX",
    "GENALG_CLAIM",
    "CELL_NOTES",
    "YES",
    "PART",
    "NO",
]
