"""The requirement catalogue C1–C15 and the paper's published Table 1.

Each cell of Table 1 is a qualitative claim; we grade the cells into
three verdicts so they can be compared against probe outcomes:

- ``YES``  — the requirement is addressed;
- ``PART`` — partially addressed (the table's hedged cells: "requires
  knowledge of SQL", "new operations on integrated view data", …);
- ``NO``   — not addressed.
"""

from __future__ import annotations

from dataclasses import dataclass

YES = "YES"
PART = "PART"
NO = "NO"


@dataclass(frozen=True)
class Requirement:
    """One computer-science requirement from section 2."""

    req_id: str
    title: str


REQUIREMENTS: tuple[Requirement, ...] = (
    Requirement("C1", "Shield user from source multitude/heterogeneity"),
    Requirement("C2", "Standard (high-level) data representation"),
    Requirement("C3", "Single access point"),
    Requirement("C4", "User-appropriate interface"),
    Requirement("C5", "Comprehensive, biological query capability"),
    Requirement("C6", "New operations beyond source functionality"),
    Requirement("C7", "Query results usable for further computation"),
    Requirement("C8", "Reconciliation of inconsistent data"),
    Requirement("C9", "Uncertainty handling (keep all alternatives)"),
    Requirement("C10", "Combine data from different repositories"),
    Requirement("C11", "Extraction/creation of new knowledge"),
    Requirement("C12", "High-level treatment (genomic types/operations)"),
    Requirement("C13", "Integration of self-generated data"),
    Requirement("C14", "User-defined specialty evaluation functions"),
    Requirement("C15", "Preservation of disappearing repositories"),
)

REQUIREMENT_IDS = tuple(requirement.req_id for requirement in REQUIREMENTS)

#: Table 1 of the paper, graded.  Column order matches the paper.
PAPER_MATRIX: dict[str, dict[str, str]] = {
    "SRS": {
        "C1": YES, "C2": NO, "C3": YES, "C4": YES, "C5": PART,
        "C6": NO, "C7": NO, "C8": NO, "C9": NO, "C10": NO,
        "C11": NO, "C12": NO, "C13": NO, "C14": NO, "C15": NO,
    },
    "BioNavigator": {
        "C1": YES, "C2": NO, "C3": YES, "C4": YES, "C5": NO,
        "C6": NO, "C7": NO, "C8": NO, "C9": NO, "C10": NO,
        "C11": NO, "C12": NO, "C13": NO, "C14": NO, "C15": NO,
    },
    "K2/Kleisli": {
        "C1": YES, "C2": PART, "C3": YES, "C4": NO, "C5": YES,
        "C6": PART, "C7": YES, "C8": NO, "C9": NO, "C10": PART,
        "C11": NO, "C12": NO, "C13": NO, "C14": NO, "C15": NO,
    },
    "DiscoveryLink": {
        "C1": YES, "C2": PART, "C3": YES, "C4": PART, "C5": YES,
        "C6": PART, "C7": YES, "C8": NO, "C9": NO, "C10": PART,
        "C11": NO, "C12": NO, "C13": NO, "C14": NO, "C15": NO,
    },
    "TAMBIS": {
        "C1": YES, "C2": PART, "C3": YES, "C4": YES, "C5": YES,
        "C6": PART, "C7": YES, "C8": YES, "C9": NO, "C10": PART,
        "C11": NO, "C12": NO, "C13": NO, "C14": NO, "C15": NO,
    },
    "GUS": {
        "C1": YES, "C2": PART, "C3": YES, "C4": PART, "C5": YES,
        "C6": PART, "C7": YES, "C8": YES, "C9": NO, "C10": YES,
        "C11": PART, "C12": NO, "C13": YES, "C14": NO, "C15": YES,
    },
}

#: The paper's claim for the proposed system (sections 4–6): every
#: requirement addressed.
GENALG_CLAIM: dict[str, str] = {
    requirement.req_id: YES for requirement in REQUIREMENTS
}

#: Notes explaining each graded cell (the table's original wording).
CELL_NOTES: dict[tuple[str, str], str] = {
    ("SRS", "C2"): "HTML",
    ("SRS", "C5"): "Limited query capability",
    ("BioNavigator", "C2"): "HTML",
    ("BioNavigator", "C5"): "Not query oriented",
    ("K2/Kleisli", "C2"): "Global schema using object-oriented model",
    ("K2/Kleisli", "C4"): "Not a user-level interface",
    ("K2/Kleisli", "C6"): "New operations on integrated view data",
    ("K2/Kleisli", "C10"): "Integrated via global schema; wrapper needed",
    ("DiscoveryLink", "C2"): "Global schema using relational model",
    ("DiscoveryLink", "C4"): "Requires knowledge of SQL",
    ("TAMBIS", "C2"): "Global schema using description logic",
    ("TAMBIS", "C8"): "Result reconciliation supported",
    ("GUS", "C2"): "GUS schema based on relational model; OO views",
    ("GUS", "C4"): "Requires knowledge of SQL",
    ("GUS", "C8"): "Data in warehouse is reconciled and cleansed",
    ("GUS", "C11"): "Annotations supported",
    ("GUS", "C15"): "Archiving of data supported",
}
