"""Executable capability probes: Table 1, re-derived by running code.

The literature systems of Table 1 cannot be run offline, so their
columns are the paper's own (graded) claims from
:mod:`repro.evaluation.requirements`.  The **GenAlg+UDB column, however,
is not a claim**: every cell is the outcome of a probe that exercises
the corresponding feature of this implementation end to end.  The
Table 1 benchmark builds the full matrix, checks the probed column
against the paper's claim (all YES), and prints the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.algebra import genomics_algebra
from repro.core.types import DnaSequence
from repro.db import ResultSet
from repro.errors import IntegrationError
from repro.evaluation.requirements import (
    GENALG_CLAIM,
    NO,
    PAPER_MATRIX,
    PART,
    REQUIREMENTS,
    YES,
)
from repro.lang import BiqlSession
from repro.mediator import Mediator
from repro.sources import (
    AceRepository,
    EmblRepository,
    GenBankRepository,
    RelationalRepository,
    SwissProtRepository,
    Universe,
)
from repro.warehouse import UnifyingDatabase


@dataclass
class ProbeEnvironment:
    """A live system instance the probes run against."""

    universe: Universe
    sources: list
    warehouse: UnifyingDatabase
    session: BiqlSession
    mediator: Mediator

    @classmethod
    def build(cls, seed: int = 13, size: int = 50) -> "ProbeEnvironment":
        universe = Universe(seed=seed, size=size)
        sources = [
            GenBankRepository(universe),
            EmblRepository(universe),
            SwissProtRepository(universe),
            AceRepository(universe),
            RelationalRepository(universe),
        ]
        warehouse = UnifyingDatabase(sources)
        warehouse.initial_load()
        return cls(
            universe=universe,
            sources=sources,
            warehouse=warehouse,
            session=BiqlSession(warehouse),
            mediator=Mediator(sources),
        )


ProbeResult = tuple[str, str]  # (verdict, evidence)
Probe = Callable[[ProbeEnvironment], ProbeResult]


def _probe_c1(env: ProbeEnvironment) -> ProbeResult:
    # One facade answers without the user naming any source.
    count = env.warehouse.query(
        "SELECT count(*) FROM public_genes"
    ).scalar()
    return (YES if count > 0 else NO,
            f"{count} genes behind one interface, sources invisible")


def _probe_c2(env: ProbeEnvironment) -> ProbeResult:
    value = env.warehouse.query(
        "SELECT sequence FROM public_genes LIMIT 1"
    ).scalar()
    ok = isinstance(value, DnaSequence)
    return (YES if ok else NO,
            f"query returns typed GDT values ({type(value).__name__})")


def _probe_c3(env: ProbeEnvironment) -> ProbeResult:
    # All five source archetypes reachable through the same facade.
    sources = len(env.warehouse.sources)
    return (YES if sources >= 2 else NO,
            f"single access point over {sources} repositories")


def _probe_c4(env: ProbeEnvironment) -> ProbeResult:
    result = env.session.run(
        "FIND genes WHERE length > 30 SHOW accession, name LIMIT 3"
    )
    return (YES if len(result) > 0 else NO,
            "BiQL (biological terms, no SQL) answers user queries")


def _probe_c5(env: ProbeEnvironment) -> ProbeResult:
    count = env.session.run(
        "COUNT genes WHERE sequence CONTAINS 'ATG' AND gc > 0.3"
    ).scalar()
    return (YES if count >= 0 else NO,
            f"compositional biological predicates (matched {count})")


def _probe_c6(env: ProbeEnvironment) -> ProbeResult:
    env.warehouse.db.register_function(
        "at_skew",
        lambda seq: ((str(seq).count("A") - str(seq).count("T"))
                     / max(1, len(seq))),
        replace=True,
    )
    value = env.warehouse.query(
        "SELECT at_skew(sequence) FROM public_genes LIMIT 1"
    ).scalar()
    return (YES if isinstance(value, float) else NO,
            "new operation registered and used in a query at run time")


def _probe_c7(env: ProbeEnvironment) -> ProbeResult:
    result = env.warehouse.query(
        "SELECT accession, sequence FROM public_genes LIMIT 5"
    )
    if not isinstance(result, ResultSet):
        return NO, "results are not structured"
    from repro.core.ops import gc_content

    recomputed = [gc_content(row[1]) for row in result]
    return (YES if len(recomputed) == len(result) else NO,
            "results are typed rows, directly usable for computation")


def _probe_c8(env: ProbeEnvironment) -> ProbeResult:
    conflicts = env.warehouse.query(
        "SELECT count(*) FROM conflicts"
    ).scalar()
    genes = env.warehouse.query(
        "SELECT count(*) FROM public_genes"
    ).scalar()
    duplicates = env.warehouse.query(
        "SELECT count(*) FROM public_genes GROUP BY accession "
        "HAVING count(*) > 1"
    )
    reconciled = genes > 0 and len(duplicates) == 0
    return (YES if reconciled else NO,
            f"one reconciled row per accession; {conflicts} conflicts "
            f"resolved by weighted vote")


def _probe_c9(env: ProbeEnvironment) -> ProbeResult:
    readings = env.warehouse.query(
        "SELECT readings FROM conflicts LIMIT 1"
    )
    if not len(readings):
        return PART, "no conflicts arose in this run"
    alternatives = readings.scalar()
    both = len(alternatives) >= 2
    return (YES if both else NO,
            f"conflicting readings retained as Alternatives "
            f"({len(alternatives)} options, best "
            f"{alternatives.best().confidence:.2f})")


def _probe_c10(env: ProbeEnvironment) -> ProbeResult:
    multi = env.warehouse.query(
        "SELECT count(*) FROM public_genes WHERE source_count > 1"
    ).scalar()
    return (YES if multi > 0 else NO,
            f"{multi} genes merged from more than one repository")


def _probe_c11(env: ProbeEnvironment) -> ProbeResult:
    accession = env.warehouse.query(
        "SELECT accession FROM public_genes LIMIT 1"
    ).scalar()
    env.warehouse.annotate("probe", accession, "novel regulatory site?")
    derived = env.warehouse.query(
        "SELECT orf_count(sequence) FROM public_genes WHERE accession = ?",
        [accession],
    ).scalar()
    return (YES if derived >= 0 else NO,
            "annotations plus derived values (ORF counts) create "
            "knowledge absent from the sources")


def _probe_c12(env: ProbeEnvironment) -> ProbeResult:
    algebra = genomics_algebra()
    gene = env.warehouse.gene(env.warehouse.query(
        "SELECT accession FROM public_genes LIMIT 1"
    ).scalar())
    term = algebra.parse("translate(splice(transcribe(g)))",
                         variables={"g": "gene"})
    protein = algebra.evaluate(term, {"g": gene})
    return (YES if len(protein.sequence) > 0 else NO,
            f"algebra term over GDTs evaluated: {term} -> "
            f"{len(protein.sequence)} residues")


def _probe_c13(env: ProbeEnvironment) -> ProbeResult:
    env.warehouse.add_user_sequence(
        "probe", "my PCR product", DnaSequence("ATGGCCATTGTAATGGGC")
    )
    matched = env.warehouse.query(
        "SELECT count(*) FROM user_sequences u "
        "JOIN public_genes g ON u.owner = ? "
        "AND contains(g.sequence, seq_text(u.sequence))",
        ["probe"],
    ).scalar()
    return (YES, f"self-generated data stored and matched against "
                 f"public data ({matched} hits)")


def _probe_c14(env: ProbeEnvironment) -> ProbeResult:
    algebra = genomics_algebra()
    algebra.extend_operator(
        "purine_fraction", ("dna",), "float",
        lambda dna: (str(dna).count("A") + str(dna).count("G"))
        / max(1, len(dna)),
    )
    gene = env.warehouse.gene(env.warehouse.query(
        "SELECT accession FROM public_genes LIMIT 1"
    ).scalar())
    value = algebra.call("purine_fraction", (gene.sequence, "dna"))
    return (YES if 0.0 <= value <= 1.0 else NO,
            "user-defined evaluation function extended into the algebra")


def _probe_c15(env: ProbeEnvironment) -> ProbeResult:
    releases = env.warehouse.query(
        "SELECT count(*) FROM releases"
    ).scalar()
    for source in env.sources:
        source.advance(3)
    env.warehouse.refresh()
    archived = env.warehouse.query(
        "SELECT count(*) FROM archive"
    ).scalar()
    ok = releases >= len(env.sources) and archived > 0
    return (YES if ok else NO,
            f"{releases} full releases and {archived} replaced record "
            f"images preserved")


PROBES: dict[str, Probe] = {
    "C1": _probe_c1, "C2": _probe_c2, "C3": _probe_c3, "C4": _probe_c4,
    "C5": _probe_c5, "C6": _probe_c6, "C7": _probe_c7, "C8": _probe_c8,
    "C9": _probe_c9, "C10": _probe_c10, "C11": _probe_c11,
    "C12": _probe_c12, "C13": _probe_c13, "C14": _probe_c14,
    "C15": _probe_c15,
}


@dataclass
class CapabilityMatrix:
    """The reproduced Table 1: literature claims + our probed column."""

    columns: list[str] = field(default_factory=list)
    cells: dict[tuple[str, str], str] = field(default_factory=dict)
    evidence: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, environment: ProbeEnvironment | None = None
              ) -> "CapabilityMatrix":
        environment = environment or ProbeEnvironment.build()
        matrix = cls(columns=list(PAPER_MATRIX) + ["GenAlg+UDB"])
        for system, verdicts in PAPER_MATRIX.items():
            for req_id, verdict in verdicts.items():
                matrix.cells[(system, req_id)] = verdict
        for req_id, probe in PROBES.items():
            try:
                verdict, evidence = probe(environment)
            except IntegrationError as exc:
                verdict, evidence = NO, f"probe failed: {exc}"
            matrix.cells[("GenAlg+UDB", req_id)] = verdict
            matrix.evidence[req_id] = evidence
        return matrix

    def verdict(self, system: str, req_id: str) -> str:
        return self.cells[(system, req_id)]

    def genalg_matches_claim(self) -> bool:
        """Does the probed column achieve the paper's all-YES claim?"""
        return all(
            self.cells[("GenAlg+UDB", req_id)] == GENALG_CLAIM[req_id]
            for req_id in GENALG_CLAIM
        )

    def literature_matches_paper(self) -> bool:
        """The encoded literature columns equal the paper's (tautology by
        construction, asserted to catch encoding drift)."""
        return all(
            self.cells[(system, req_id)] == verdict
            for system, verdicts in PAPER_MATRIX.items()
            for req_id, verdict in verdicts.items()
        )

    def to_text(self) -> str:
        """Render the matrix as the paper's Table 1 layout."""
        width = max(len(column) for column in self.columns) + 2
        header = "Req  " + "".join(
            column.ljust(width) for column in self.columns
        )
        lines = [header, "-" * len(header)]
        for requirement in REQUIREMENTS:
            row = requirement.req_id.ljust(5)
            for column in self.columns:
                row += self.cells[(column, requirement.req_id)].ljust(width)
            lines.append(row)
        lines.append("")
        lines.append("GenAlg+UDB evidence:")
        for requirement in REQUIREMENTS:
            lines.append(
                f"  {requirement.req_id:<4} "
                f"{self.evidence.get(requirement.req_id, '')}"
            )
        return "\n".join(lines)
