"""The Unifying Database: warehouse facade over the extensible engine.

This is the second pillar of the paper (section 5): a data warehouse
integrating every simulated repository, with

- the integrated schema (public read-only space + private user space),
- the ETL pipeline (monitors → wrappers → integrator → loader),
- incremental, self-maintainable refresh with a manual-deferral option,
- historical archiving of replaced records and full releases (C15),
- annotation bookkeeping across refreshes (the open problem of §5.2 —
  annotations whose subject changed are flagged stale instead of being
  silently kept or dropped),
- the Genomics Algebra available in every query through the adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.adapter import install_genomics
from repro.core.types import DnaSequence, Gene, Interval, Protein
from repro.core.ops import gc_content
from repro.db import Database, NULL, ResultSet
from repro.db.sql import ast, parse
from repro.errors import IntegrationError, ReproError
from repro.etl.delta import DELETE, Delta
from repro.etl.monitors import SourceMonitor, choose_monitor
from repro.etl.wrappers import ParsedRecord, Wrapper, wrapper_for
from repro.obs.metrics import count as _metric
from repro.obs.trace import span as _span
from repro.sources.base import Repository
from repro.warehouse.integrator import (
    ConsolidatedRecord,
    Integrator,
    StagedRecord,
)
from repro.warehouse.schema import create_schema, is_public_table


@dataclass
class RefreshReport:
    """What one load/refresh pass did, and what it cost."""

    mode: str
    deltas_processed: int = 0
    genes_upserted: int = 0
    proteins_upserted: int = 0
    genes_deleted: int = 0
    conflicts_recorded: int = 0
    annotations_marked_stale: int = 0
    records_quarantined: int = 0
    monitor_cost_units: int = 0
    sources: tuple[str, ...] = field(default_factory=tuple)

    def publish(self) -> "RefreshReport":
        """Mirror this pass's counters into the process-wide registry
        (a no-op while metrics are disabled); returns self."""
        _metric("warehouse", "passes")
        for counter in ("deltas_processed", "genes_upserted",
                        "proteins_upserted", "genes_deleted",
                        "conflicts_recorded", "annotations_marked_stale",
                        "records_quarantined", "monitor_cost_units"):
            amount = getattr(self, counter)
            if amount:
                _metric("warehouse", counter, amount)
        return self


def _exons_to_text(exons: Iterable[Interval]) -> str:
    return ";".join(f"{e.start}-{e.end}" for e in exons)


def _exons_from_text(text: str | None) -> tuple[Interval, ...]:
    if not text:
        return ()
    return tuple(
        Interval(int(start), int(end))
        for start, _, end in (span.partition("-")
                              for span in text.split(";"))
    )


class UnifyingDatabase:
    """The integrated genomic warehouse."""

    def __init__(
        self,
        sources: Sequence[Repository] = (),
        reliability: dict[str, float] | None = None,
        refresh_policy: str = "auto",
        with_indexes: bool = True,
    ) -> None:
        if refresh_policy not in ("auto", "manual"):
            raise IntegrationError(
                f"refresh policy must be auto or manual, got "
                f"{refresh_policy!r}"
            )
        self.db = Database()
        install_genomics(self.db)
        create_schema(self.db, with_indexes=with_indexes)
        self.integrator = Integrator(reliability)
        self.refresh_policy = refresh_policy
        self._clock = 0
        self.wal = None
        self.sources: dict[str, Repository] = {}
        self.monitors: dict[str, SourceMonitor] = {}
        self.wrappers: dict[str, Wrapper] = {}
        for repository in sources:
            self.attach_source(repository)

    # -- source management ----------------------------------------------------

    def attach_source(self, repository: Repository) -> None:
        """Register a repository: monitor + wrapper (before initial load)."""
        if repository.name in self.sources:
            raise IntegrationError(
                f"source {repository.name!r} already attached"
            )
        self.sources[repository.name] = repository
        self.monitors[repository.name] = choose_monitor(repository)
        self.wrappers[repository.name] = wrapper_for(repository.name)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- staging ------------------------------------------------------------------

    def _stage(self, source: str, parsed: ParsedRecord) -> None:
        skey = f"{source}:{parsed.accession}"
        self.db.execute("DELETE FROM staging WHERE skey = ?", [skey])
        self.db.execute(
            "INSERT INTO staging VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                skey, source, parsed.accession, parsed.version,
                parsed.name, parsed.organism, parsed.description,
                parsed.dna, parsed.protein,
                _exons_to_text(parsed.exons), self._tick(),
            ],
        )

    def _unstage(self, source: str, accession: str) -> None:
        self.db.execute("DELETE FROM staging WHERE skey = ?",
                        [f"{source}:{accession}"])

    def _staged_records(self, accession: str) -> list[StagedRecord]:
        rows = self.db.query(
            "SELECT source, accession, version, name, organism, "
            "description, dna, protein, exons FROM staging "
            "WHERE accession = ?",
            [accession],
        )
        return [
            StagedRecord(
                source=row[0], accession=row[1], version=row[2] or 1,
                name=row[3], organism=row[4], description=row[5],
                dna=row[6], protein=row[7],
                exons=_exons_from_text(row[8]),
            )
            for row in rows
        ]

    # -- reconcile + load -------------------------------------------------------------

    def _upsert_gene(self, consolidated: ConsolidatedRecord,
                     loaded_at: int) -> bool:
        if consolidated.gene is None:
            return False
        gene = consolidated.gene
        self.db.execute("DELETE FROM public_genes WHERE accession = ?",
                        [consolidated.accession])
        self.db.execute(
            "INSERT INTO public_genes VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                consolidated.accession, consolidated.name,
                consolidated.organism, consolidated.description,
                gene, gene.sequence, len(gene.sequence), len(gene.exons),
                gc_content(gene.sequence), consolidated.source_count,
                loaded_at,
            ],
        )
        return True

    def _upsert_protein(self, consolidated: ConsolidatedRecord,
                        loaded_at: int) -> bool:
        if consolidated.protein is None:
            return False
        protein_value = Protein(
            sequence=consolidated.protein,
            name=(f"{consolidated.name} protein"
                  if consolidated.name else None),
            gene_name=consolidated.name,
            organism=consolidated.organism,
            accession=consolidated.accession,
        )
        self.db.execute("DELETE FROM public_proteins WHERE accession = ?",
                        [consolidated.accession])
        self.db.execute(
            "INSERT INTO public_proteins VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                consolidated.accession, consolidated.name,
                consolidated.organism, protein_value,
                consolidated.protein, len(consolidated.protein), loaded_at,
            ],
        )
        return True

    def _record_conflicts(self, consolidated: ConsolidatedRecord,
                          detected_at: int) -> int:
        self.db.execute("DELETE FROM conflicts WHERE accession = ?",
                        [consolidated.accession])
        for field_name, readings in consolidated.conflicts:
            self.db.execute(
                "INSERT INTO conflicts VALUES (?, ?, ?, ?)",
                [consolidated.accession, field_name, readings, detected_at],
            )
        return len(consolidated.conflicts)

    def _reconcile(self, accession: str, report: RefreshReport) -> None:
        staged = self._staged_records(accession)
        loaded_at = self._tick()
        if not staged:
            deleted = self.db.execute(
                "DELETE FROM public_genes WHERE accession = ?", [accession]
            )
            self.db.execute(
                "DELETE FROM public_proteins WHERE accession = ?",
                [accession],
            )
            self.db.execute("DELETE FROM conflicts WHERE accession = ?",
                            [accession])
            report.genes_deleted += deleted
            return
        consolidated = self.integrator.consolidate(staged)
        if self._upsert_gene(consolidated, loaded_at):
            report.genes_upserted += 1
        if self._upsert_protein(consolidated, loaded_at):
            report.proteins_upserted += 1
        report.conflicts_recorded += self._record_conflicts(
            consolidated, loaded_at
        )

    def _mark_annotations_stale(self, accessions: Iterable[str],
                                report: RefreshReport) -> None:
        for accession in accessions:
            report.annotations_marked_stale += self.db.execute(
                "UPDATE annotations SET stale = TRUE WHERE accession = ?",
                [accession],
            )

    # -- load paths ------------------------------------------------------------------------

    def _quarantine(self, source: str, accession: str | None,
                    record_text: str, error: Exception,
                    report: RefreshReport) -> None:
        """Park an unparseable record instead of aborting the load (B10)."""
        self.db.execute(
            "INSERT INTO quarantine VALUES (?, ?, ?, ?, ?)",
            [source, accession, record_text, str(error), self._tick()],
        )
        report.records_quarantined += 1

    def initial_load(self) -> RefreshReport:
        """Parse every source's full snapshot and build the public space."""
        with _span("warehouse.initial_load",
                   sources=len(self.sources)) as spn:
            report = RefreshReport(mode="initial",
                                   sources=tuple(sorted(self.sources)))
            affected: set[str] = set()
            for name, repository in self.sources.items():
                snapshot = repository.snapshot()
                self.archive_release(name, snapshot)
                wrapper = self.wrappers[name]
                for record_text in wrapper.split_snapshot(snapshot):
                    try:
                        parsed = wrapper.parse_record(record_text)
                    except ReproError as error:
                        self._quarantine(name, None, record_text, error,
                                         report)
                        continue
                    self._stage(name, parsed)
                    affected.add(parsed.accession)
                    report.deltas_processed += 1
            for accession in sorted(affected):
                self._reconcile(accession, report)
            spn.annotate(records=report.deltas_processed,
                         quarantined=report.records_quarantined)
            return report.publish()

    def refresh(self, only_sources: Sequence[str] | None = None
                ) -> RefreshReport:
        """Incremental, self-maintainable refresh from monitor deltas.

        Only the deltas and the warehouse's own staging contents are
        consulted — no source re-read — which is the self-maintainability
        property of section 5.2.  With ``refresh_policy='manual'`` the
        biologist calls this explicitly to advance or defer updates.
        """
        with _span("warehouse.refresh") as spn:
            report = RefreshReport(mode="incremental",
                                   sources=tuple(sorted(
                                       only_sources or self.sources)))
            affected: set[str] = set()
            for name in report.sources:
                monitor = self.monitors[name]
                before_cost = monitor.cost.total_units()
                deltas = monitor.poll()
                report.monitor_cost_units += (monitor.cost.total_units()
                                              - before_cost)
                wrapper = self.wrappers[name]
                for delta in deltas:
                    self._apply_delta(name, wrapper, delta, report)
                    affected.add(delta.accession)
            for accession in sorted(affected):
                self._reconcile(accession, report)
            self._mark_annotations_stale(sorted(affected), report)
            spn.annotate(deltas=report.deltas_processed,
                         quarantined=report.records_quarantined)
            return report.publish()

    def _apply_delta(self, source: str, wrapper: Wrapper, delta: Delta,
                     report: RefreshReport) -> None:
        loaded_at = self._tick()
        if delta.before is not None:
            # C15/archival: the replaced image is preserved.
            self.db.execute(
                "INSERT INTO archive VALUES (?, ?, ?, ?, ?)",
                [delta.accession, source, NULL, delta.before, loaded_at],
            )
        if delta.operation == DELETE:
            self._unstage(source, delta.accession)
        else:
            try:
                parsed = wrapper.parse_record(delta.after or "")
            except ReproError as error:
                self._quarantine(source, delta.accession,
                                 delta.after or "", error, report)
                return
            self._stage(source, parsed)
        self.db.execute(
            "INSERT INTO provenance VALUES (?, ?, ?, ?, ?, ?)",
            [delta.delta_id, delta.accession, source, delta.timestamp,
             delta.operation, loaded_at],
        )
        report.deltas_processed += 1

    def maybe_refresh(self) -> RefreshReport:
        """Refresh only under the ``auto`` policy.

        With ``refresh_policy='manual'`` this is a no-op reporting mode
        ``deferred`` — "this allows the biologist to defer or advance
        updates depending on the situation" (§5.2); call
        :meth:`refresh` explicitly to advance.
        """
        if self.refresh_policy == "manual":
            return RefreshReport(mode="deferred",
                                 sources=tuple(sorted(self.sources)))
        return self.refresh()

    def full_reload(self) -> RefreshReport:
        """Drop and rebuild the public space from fresh snapshots.

        The expensive baseline the view-maintenance discussion of §5.2
        compares incremental refresh against.
        """
        for table in ("public_genes", "public_proteins", "staging",
                      "conflicts"):
            self.db.execute(f"DELETE FROM {table}")
        # Monitors must also re-baseline, or the next incremental poll
        # would re-report everything.
        for name, repository in self.sources.items():
            self.monitors[name] = choose_monitor(repository)
        report = self.initial_load()
        report.mode = "full-reload"
        return report

    # -- archive (C15) ---------------------------------------------------------------------

    def archive_release(self, source: str, snapshot: str) -> int:
        """Preserve a full source release; returns its release number."""
        previous = self.db.query(
            "SELECT count(*) FROM releases WHERE source = ?", [source]
        ).scalar()
        release_number = previous + 1
        self.db.execute(
            "INSERT INTO releases VALUES (?, ?, ?, ?)",
            [source, release_number, snapshot, self._tick()],
        )
        return release_number

    def history(self, accession: str) -> ResultSet:
        """Archived former images of one accession, oldest first."""
        return self.db.query(
            "SELECT source, record_text, archived_at FROM archive "
            "WHERE accession = ? ORDER BY archived_at",
            [accession],
        )

    # -- user-facing API ---------------------------------------------------------------------

    def query(self, sql: str, parameters: Sequence[Any] = ()) -> ResultSet:
        """Read anything — public and user space alike."""
        return self.db.query(sql, parameters)

    def explain(self, sql: str) -> str:
        return self.db.explain(sql)

    def execute_user(self, sql: str,
                     parameters: Sequence[Any] = ()) -> Any:
        """Run a user statement; writes to the public space are refused.

        "The schema containing the external data is read-only …
        user-owned entities are updateable by their owners." (§5.1)
        """
        statement = parse(sql)
        target: str | None = None
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            target = statement.table
        elif isinstance(statement, (ast.CreateTable, ast.DropTable)):
            target = statement.name
        if target is not None and is_public_table(target):
            raise IntegrationError(
                f"table {target!r} is in the public space and read-only; "
                f"use annotations or user tables instead"
            )
        return self.db.execute(sql, parameters)

    def annotate(self, owner: str, accession: str, note: str) -> int:
        """Attach a user annotation to a public record."""
        known = self.db.query(
            "SELECT count(*) FROM public_genes WHERE accession = ?",
            [accession],
        ).scalar()
        if not known:
            raise IntegrationError(
                f"cannot annotate unknown accession {accession!r}"
            )
        next_id = (self.db.query(
            "SELECT count(*) FROM annotations"
        ).scalar() + 1)
        self.db.execute(
            "INSERT INTO annotations VALUES (?, ?, ?, ?, ?, FALSE)",
            [next_id, owner, accession, note, self._tick()],
        )
        return next_id

    def add_user_sequence(self, owner: str, label: str,
                          sequence: DnaSequence) -> int:
        """Store self-generated data next to the public data (C13)."""
        next_id = (self.db.query(
            "SELECT count(*) FROM user_sequences"
        ).scalar() + 1)
        self.db.execute(
            "INSERT INTO user_sequences VALUES (?, ?, ?, ?, ?)",
            [next_id, owner, label, sequence, self._tick()],
        )
        return next_id

    def gene(self, accession: str) -> Gene:
        """The reconciled GENE value of one accession."""
        result = self.db.query(
            "SELECT gene FROM public_genes WHERE accession = ?",
            [accession],
        )
        if not len(result):
            raise IntegrationError(f"no public gene {accession!r}")
        return result.scalar()

    def conflict_report(self, accession: str | None = None) -> ResultSet:
        """The recorded multi-source conflicts (C9)."""
        if accession is None:
            return self.db.query(
                "SELECT accession, field, readings FROM conflicts "
                "ORDER BY accession, field"
            )
        return self.db.query(
            "SELECT accession, field, readings FROM conflicts "
            "WHERE accession = ? ORDER BY field",
            [accession],
        )

    def stale_annotations(self) -> ResultSet:
        """Annotations whose subject changed since they were written."""
        return self.db.query(
            "SELECT id, owner, accession, note FROM annotations "
            "WHERE stale = TRUE ORDER BY id"
        )

    def provenance(self, accession: str) -> ResultSet:
        """The load history of one accession: which source said what, when."""
        return self.db.query(
            "SELECT delta_id, source, operation, loaded_at "
            "FROM provenance WHERE accession = ? ORDER BY loaded_at",
            [accession],
        )

    def quarantined(self) -> ResultSet:
        """Source records that could not be parsed (kept for forensics)."""
        return self.db.query(
            "SELECT source, accession, error FROM quarantine "
            "ORDER BY quarantined_at"
        )

    # -- persistence -------------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the entire warehouse (both spaces) as a disk image."""
        from repro.db.storage import save_database

        save_database(self.db, path)

    def attach_wal(self, path: str, *, flush_every_n: int = 1,
                   fsync: bool = False):
        """Log every warehouse mutation to a write-ahead log at *path*.

        ``flush_every_n`` enables group commit for heavy load paths; call
        :meth:`checkpoint` periodically to bound the log (the WAL is
        rotated, never blindly truncated).
        """
        from repro.db.storage import WriteAheadLog

        self.wal = WriteAheadLog(path, self.db,
                                 flush_every_n=flush_every_n, fsync=fsync)
        self.wal.attach()
        return self.wal

    def checkpoint(self, image_path: str) -> None:
        """Write an image and rotate the attached WAL (crash-safe)."""
        from repro.db.storage import checkpoint

        checkpoint(self.db, image_path, self.wal)

    @classmethod
    def restore(
        cls,
        path: str,
        sources: Sequence[Repository] = (),
        reliability: dict[str, float] | None = None,
        refresh_policy: str = "auto",
        wal_path: str | None = None,
    ) -> "UnifyingDatabase":
        """Rebuild a warehouse from a saved image.

        With *wal_path*, the image is treated as the last checkpoint and
        every write-ahead-log segment it does not cover is replayed on
        top — the full crash-recovery path, UDTs included.

        Monitors re-baseline against the *current* source state, so only
        changes after the restore are picked up incrementally; to also
        catch changes that happened while the warehouse was offline, run
        :meth:`full_reload` once after restoring.
        """
        from repro.db.storage import load_database

        warehouse = cls.__new__(cls)
        warehouse.db = Database()
        install_genomics(warehouse.db)
        if wal_path is not None:
            from repro.db.recovery import recover

            recover(path, wal_path, database=warehouse.db)
        else:
            load_database(path, warehouse.db)
        warehouse.integrator = Integrator(reliability)
        warehouse.refresh_policy = refresh_policy
        warehouse.wal = None
        warehouse.sources = {}
        warehouse.monitors = {}
        warehouse.wrappers = {}

        # Resume the load clock past every persisted timestamp.
        high_water = 0
        for table, column in (
            ("public_genes", "updated_at"),
            ("public_proteins", "updated_at"),
            ("staging", "updated_at"),
            ("archive", "archived_at"),
            ("releases", "archived_at"),
            ("annotations", "created_at"),
        ):
            value = warehouse.db.query(
                f"SELECT max({column}) FROM {table}"
            ).scalar()
            if isinstance(value, int):
                high_water = max(high_water, value)
        warehouse._clock = high_water

        for repository in sources:
            warehouse.attach_source(repository)
        return warehouse
