"""The Unifying Database: warehouse, integrator, schema matcher."""

from repro.warehouse.integrator import (
    ConsolidatedRecord,
    DEFAULT_RELIABILITY,
    Integrator,
    StagedRecord,
)
from repro.warehouse.matching import (
    FieldMatch,
    SchemaMatcher,
    levenshtein,
    name_similarity,
    value_overlap,
)
from repro.warehouse.schema import (
    PUBLIC_TABLES,
    USER_TABLES,
    create_schema,
    is_public_table,
    is_user_table,
)
from repro.warehouse.assembly import (
    build_chromosome,
    build_genome,
    gene_density,
)
from repro.warehouse.quality import (
    AccuracyReport,
    SourceQuality,
    accuracy_against_truth,
    source_quality_report,
)
from repro.warehouse.warehouse import RefreshReport, UnifyingDatabase

__all__ = [
    "UnifyingDatabase",
    "RefreshReport",
    "SourceQuality",
    "AccuracyReport",
    "source_quality_report",
    "accuracy_against_truth",
    "build_chromosome",
    "build_genome",
    "gene_density",
    "Integrator",
    "StagedRecord",
    "ConsolidatedRecord",
    "DEFAULT_RELIABILITY",
    "SchemaMatcher",
    "FieldMatch",
    "levenshtein",
    "name_similarity",
    "value_overlap",
    "create_schema",
    "PUBLIC_TABLES",
    "USER_TABLES",
    "is_public_table",
    "is_user_table",
]
