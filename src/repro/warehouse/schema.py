"""The integrated schema of the Unifying Database (section 5.1).

Two spaces:

- **public space** — the restructured external data, read-only to users
  (``public_genes``, ``public_proteins``), plus the system bookkeeping
  that supports it (provenance, conflicts, staging, archive);
- **user space** — user-created data: private sequences and annotations,
  updateable by their owners.

Per the design discussion in section 5.2, this is a *bottom-up but
restructured* schema: one gene row regardless of how many sources
mention the gene (not GUS's 180 source-mirroring tables), with
denormalized columns (sequence, length, GC) for query performance and
the full GDT value alongside for algebra operations.
"""

from __future__ import annotations

from repro.db import Database

#: Tables in the read-only public space.
PUBLIC_TABLES = frozenset({
    "public_genes", "public_proteins", "provenance", "conflicts",
    "staging", "archive", "releases", "quarantine",
})

#: Tables users may write to.
USER_TABLES = frozenset({"user_sequences", "annotations"})

_DDL = [
    # -- public space -------------------------------------------------------
    """
    CREATE TABLE public_genes (
        accession TEXT PRIMARY KEY,
        name TEXT,
        organism TEXT,
        description TEXT,
        gene GENE,
        sequence DNA,
        length INTEGER,
        exon_count INTEGER,
        gc REAL,
        source_count INTEGER,
        updated_at INTEGER
    )
    """,
    """
    CREATE TABLE public_proteins (
        accession TEXT PRIMARY KEY,
        name TEXT,
        organism TEXT,
        protein PROTEIN,
        sequence PROTEIN_SEQ,
        length INTEGER,
        updated_at INTEGER
    )
    """,
    """
    CREATE TABLE provenance (
        delta_id TEXT,
        accession TEXT,
        source TEXT,
        source_version INTEGER,
        operation TEXT,
        loaded_at INTEGER
    )
    """,
    """
    CREATE TABLE conflicts (
        accession TEXT,
        field TEXT NOT NULL,
        readings ALTERNATIVES,
        detected_at INTEGER
    )
    """,
    """
    CREATE TABLE staging (
        skey TEXT PRIMARY KEY,
        source TEXT NOT NULL,
        accession TEXT NOT NULL,
        version INTEGER,
        name TEXT,
        organism TEXT,
        description TEXT,
        dna DNA,
        protein PROTEIN_SEQ,
        exons TEXT,
        updated_at INTEGER
    )
    """,
    """
    CREATE TABLE archive (
        accession TEXT NOT NULL,
        source TEXT NOT NULL,
        source_version INTEGER,
        record_text TEXT,
        archived_at INTEGER
    )
    """,
    """
    CREATE TABLE releases (
        source TEXT NOT NULL,
        release_number INTEGER,
        snapshot TEXT,
        archived_at INTEGER
    )
    """,
    """
    CREATE TABLE quarantine (
        source TEXT NOT NULL,
        accession TEXT,
        record_text TEXT,
        error TEXT,
        quarantined_at INTEGER
    )
    """,
    # -- user space ---------------------------------------------------------
    """
    CREATE TABLE user_sequences (
        id INTEGER PRIMARY KEY,
        owner TEXT NOT NULL,
        label TEXT,
        sequence DNA,
        created_at INTEGER
    )
    """,
    """
    CREATE TABLE annotations (
        id INTEGER PRIMARY KEY,
        owner TEXT NOT NULL,
        accession TEXT NOT NULL,
        note TEXT,
        created_at INTEGER,
        stale BOOLEAN
    )
    """,
]

_INDEX_DDL = [
    "CREATE INDEX idx_genes_organism ON public_genes (organism) USING hash",
    "CREATE INDEX idx_genes_length ON public_genes (length) USING btree",
    "CREATE INDEX idx_genes_seq ON public_genes (sequence) "
    "USING kmer WITH (k = 8)",
    "CREATE INDEX idx_staging_accession ON staging (accession) USING hash",
    "CREATE INDEX idx_prov_accession ON provenance (accession) USING hash",
    "CREATE INDEX idx_annotations_accession ON annotations (accession) "
    "USING hash",
    "CREATE INDEX idx_archive_accession ON archive (accession) USING hash",
]


def create_schema(database: Database, with_indexes: bool = True) -> None:
    """Create the integrated schema (and its indexes) in *database*."""
    for statement in _DDL:
        database.execute(statement)
    if with_indexes:
        for statement in _INDEX_DDL:
            database.execute(statement)


def is_public_table(name: str) -> bool:
    """True when *name* belongs to the read-only public space."""
    return name.lower() in PUBLIC_TABLES


def is_user_table(name: str) -> bool:
    """True when *name* is user-owned (and therefore updateable)."""
    return name.lower() in USER_TABLES
