"""Semantic-heterogeneity matching (section 5.2, "Data integration").

"How do we automatically detect relationships among similar entities,
which are represented differently in terms of structure or terminology?"

The :class:`SchemaMatcher` aligns field names from a new source with the
warehouse's integrated schema using three signals, combined into one
score:

1. **ontology synonymy** — both names resolve to the same concept in the
   genomics ontology (``pre-mRNA`` ≡ ``primary transcript``);
2. **name similarity** — normalized edit distance over canonicalized
   names (``Organism_Name`` ~ ``organism``);
3. **value overlap** — Jaccard overlap of sampled instance values
   (two columns both full of ``Escherichia coli`` probably align).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.ontology import Ontology, builtin_genomics_ontology


def _canonical(name: str) -> str:
    """Lower-case, squeeze separators: ``Organism_Name`` → ``organism name``."""
    return re.sub(r"[\s_\-./]+", " ", name.strip().lower())


def levenshtein(first: str, second: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if not first:
        return len(second)
    if not second:
        return len(first)
    previous = list(range(len(second) + 1))
    for i, first_ch in enumerate(first, start=1):
        current = [i]
        for j, second_ch in enumerate(second, start=1):
            cost = 0 if first_ch == second_ch else 1
            current.append(min(
                previous[j] + 1,        # delete
                current[j - 1] + 1,     # insert
                previous[j - 1] + cost,  # substitute
            ))
        previous = current
    return previous[-1]


def name_similarity(first: str, second: str) -> float:
    """1 − normalized edit distance over canonical forms, in [0, 1]."""
    a, b = _canonical(first), _canonical(second)
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def value_overlap(first: Sequence[object], second: Sequence[object]) -> float:
    """Jaccard overlap of the two columns' sampled value sets."""
    set_a = {str(value).strip().lower() for value in first if value is not None}
    set_b = {str(value).strip().lower() for value in second if value is not None}
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


@dataclass(frozen=True)
class FieldMatch:
    """One proposed correspondence with its combined score and evidence."""

    source_field: str
    target_field: str
    score: float
    ontology_hit: bool
    name_score: float
    value_score: float

    def __str__(self) -> str:
        evidence = []
        if self.ontology_hit:
            evidence.append("ontology")
        evidence.append(f"name={self.name_score:.2f}")
        evidence.append(f"values={self.value_score:.2f}")
        return (f"{self.source_field} -> {self.target_field} "
                f"({self.score:.2f}; {', '.join(evidence)})")


class SchemaMatcher:
    """Aligns source fields with warehouse fields."""

    def __init__(
        self,
        ontology: Ontology | None = None,
        ontology_weight: float = 0.5,
        name_weight: float = 0.3,
        value_weight: float = 0.2,
        threshold: float = 0.45,
    ) -> None:
        self.ontology = ontology or builtin_genomics_ontology()
        self.ontology_weight = ontology_weight
        self.name_weight = name_weight
        self.value_weight = value_weight
        self.threshold = threshold

    def _resolve_concept(self, name: str):
        term = self.ontology.find(name)
        if term is None:
            term = self.ontology.find(_canonical(name))
        if term is None:
            # Separator-insensitive retry: "sequence_dna" vs "sequence dna".
            squeezed = _canonical(name).replace(" ", "_")
            term = self.ontology.find(squeezed)
        return term

    def _ontology_equivalent(self, first: str, second: str) -> bool:
        term_a = self._resolve_concept(first)
        term_b = self._resolve_concept(second)
        return (term_a is not None and term_b is not None
                and term_a.term_id == term_b.term_id)

    def score(
        self,
        source_field: str,
        target_field: str,
        source_values: Sequence[object] = (),
        target_values: Sequence[object] = (),
    ) -> FieldMatch:
        """Score one candidate correspondence."""
        ontology_hit = self._ontology_equivalent(source_field, target_field)
        name_score = name_similarity(source_field, target_field)
        value_score = value_overlap(source_values, target_values)
        combined = (self.ontology_weight * (1.0 if ontology_hit else 0.0)
                    + self.name_weight * name_score
                    + self.value_weight * value_score)
        return FieldMatch(source_field, target_field, combined,
                          ontology_hit, name_score, value_score)

    def match(
        self,
        source_fields: Mapping[str, Sequence[object]],
        target_fields: Mapping[str, Sequence[object]],
    ) -> list[FieldMatch]:
        """Best above-threshold target for each source field (greedy 1:1).

        Pairs are scored exhaustively, then assigned best-score-first so
        each source and each target field is used at most once.
        """
        candidates = [
            self.score(source, target, source_values, target_values)
            for source, source_values in source_fields.items()
            for target, target_values in target_fields.items()
        ]
        candidates.sort(key=lambda match: -match.score)
        used_sources: set[str] = set()
        used_targets: set[str] = set()
        chosen: list[FieldMatch] = []
        for match in candidates:
            if match.score < self.threshold:
                break
            if (match.source_field in used_sources
                    or match.target_field in used_targets):
                continue
            chosen.append(match)
            used_sources.add(match.source_field)
            used_targets.add(match.target_field)
        return chosen
