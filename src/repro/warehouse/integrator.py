"""The warehouse integrator: reconciliation of multi-source records.

"Merging related data items and removing inconsistencies before the data
is loaded into the Unifying Database.  This is done by the warehouse
integrator." (section 5.1)

Reconciliation policy:

- records about the same accession from different sources are merged
  field by field with a **reliability-weighted vote** (SwissProt, being
  curated, outweighs the bulk nucleotide archives — exactly the quality
  difference the paper describes);
- when sources disagree and neither can be ruled out, the winning value
  goes into the main column **and** the full set of readings is kept as
  an :class:`~repro.core.types.Alternatives` conflict row — requirement
  C9's "access to both alternatives should be given";
- per source, only the latest version of a record participates
  (duplicate removal).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.types import (
    Alternatives,
    DnaSequence,
    Gene,
    Interval,
    ProteinSequence,
    Uncertain,
)
from repro.errors import IntegrationError

#: Default source-reliability weights (the curation hierarchy of §5.2).
DEFAULT_RELIABILITY: Mapping[str, float] = {
    "SwissProt": 0.90,
    "TrEMBL": 0.45,  # computer-translated, uncurated
    "EMBL": 0.60,
    "RelationalDB": 0.60,
    "GenBank": 0.50,
    "AceDB": 0.45,
}
_FALLBACK_RELIABILITY = 0.40


@dataclass
class StagedRecord:
    """One source's current view of one accession (a staging row)."""

    source: str
    accession: str
    version: int
    name: str | None = None
    organism: str | None = None
    description: str | None = None
    dna: DnaSequence | None = None
    protein: ProteinSequence | None = None
    exons: tuple[Interval, ...] = ()


@dataclass
class ConsolidatedRecord:
    """The reconciled, warehouse-ready view of one accession."""

    accession: str
    name: str | None = None
    organism: str | None = None
    description: str | None = None
    gene: Gene | None = None
    dna: DnaSequence | None = None
    protein: ProteinSequence | None = None
    source_count: int = 0
    #: (field name, all conflicting readings) pairs, for the conflicts table.
    conflicts: list[tuple[str, Alternatives]] = field(default_factory=list)


class Integrator:
    """Reliability-weighted reconciliation of staged records."""

    def __init__(self,
                 reliability: Mapping[str, float] | None = None) -> None:
        self.reliability = dict(DEFAULT_RELIABILITY)
        if reliability:
            self.reliability.update(reliability)

    def _weight(self, source: str) -> float:
        return self.reliability.get(source, _FALLBACK_RELIABILITY)

    @staticmethod
    def _group_key(value: Any) -> tuple[str, str]:
        """A canonical, non-truncating identity key for vote grouping.

        ``repr`` is NOT usable here: packed sequences abbreviate their
        repr, which would let long conflicting sequences collapse into
        one voting group.
        """
        return (type(value).__name__, str(value))

    def _vote(
        self, readings: Sequence[tuple[str, Any]]
    ) -> tuple[Any, Alternatives | None]:
        """Weighted vote over (source, value) pairs.

        Returns (winner, alternatives-or-None); alternatives are present
        only when distinct values disagree.
        """
        present = [(source, value) for source, value in readings
                   if value is not None]
        if not present:
            return None, None
        groups: dict[tuple[str, str], list[tuple[str, Any]]] = defaultdict(list)
        for source, value in present:
            groups[self._group_key(value)].append((source, value))
        if len(groups) == 1:
            return present[0][1], None

        scored = []
        for members in groups.values():
            weight = sum(self._weight(source) for source, _ in members)
            sources = ";".join(sorted(source for source, _ in members))
            scored.append((weight, members[0][1], sources))
        scored.sort(key=lambda entry: (-entry[0], entry[2]))
        total = sum(weight for weight, _, _ in scored)
        alternatives = Alternatives(
            Uncertain(value, weight / total, sources)
            for weight, value, sources in scored
        )
        return scored[0][1], alternatives

    def _latest_per_source(
        self, records: Sequence[StagedRecord]
    ) -> list[StagedRecord]:
        latest: dict[str, StagedRecord] = {}
        for record in records:
            existing = latest.get(record.source)
            if existing is None or record.version >= existing.version:
                latest[record.source] = record
        return [latest[source] for source in sorted(latest)]

    def consolidate(
        self, records: Sequence[StagedRecord]
    ) -> ConsolidatedRecord:
        """Merge every source's view of one accession."""
        if not records:
            raise IntegrationError("nothing to consolidate")
        accessions = {record.accession for record in records}
        if len(accessions) != 1:
            raise IntegrationError(
                f"consolidate() got mixed accessions {sorted(accessions)}"
            )
        records = self._latest_per_source(records)
        accession = records[0].accession
        result = ConsolidatedRecord(accession=accession,
                                    source_count=len(records))

        for field_name in ("name", "organism", "description"):
            readings = [(r.source, getattr(r, field_name)) for r in records]
            winner, alternatives = self._vote(readings)
            setattr(result, field_name, winner)
            if alternatives is not None:
                result.conflicts.append((field_name, alternatives))

        dna_winner, dna_alternatives = self._vote(
            [(r.source, r.dna) for r in records]
        )
        result.dna = dna_winner
        if dna_alternatives is not None:
            result.conflicts.append(("sequence", dna_alternatives))

        protein_winner, protein_alternatives = self._vote(
            [(r.source, r.protein) for r in records]
        )
        result.protein = protein_winner
        if protein_alternatives is not None:
            result.conflicts.append(("protein", protein_alternatives))

        if dna_winner is not None:
            exons = self._exons_for(records, dna_winner)
            result.gene = Gene(
                name=result.name or accession,
                sequence=dna_winner,
                exons=exons,
                organism=result.organism,
                accession=accession,
            )
        return result

    def _exons_for(
        self, records: Sequence[StagedRecord], dna: DnaSequence
    ) -> tuple[Interval, ...]:
        """Exon structure from the most reliable source agreeing with the
        chosen sequence (falling back to any in-bounds structure)."""
        candidates = sorted(
            (record for record in records if record.exons),
            key=lambda record: -self._weight(record.source),
        )
        for record in candidates:
            if record.dna == dna and record.exons[-1].end <= len(dna):
                return record.exons
        for record in candidates:
            if record.exons[-1].end <= len(dna):
                return record.exons
        return ()
