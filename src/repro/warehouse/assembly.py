"""Assembling chromosome/genome GDT values from warehouse contents.

The algebra's top sorts — ``chromosome`` and ``genome`` — become usable
once the warehouse can materialize them: :func:`build_genome` lays an
organism's reconciled genes onto synthetic chromosome scaffolds (with
spacers between genes and a gene feature annotating each placement), so
terms like ``gene_of(chromosome_of(G, 'chr1'), 'lacZ')`` evaluate over
integrated data.

The scaffold layout is a *substitution* in the DESIGN.md sense: real
chromosomal coordinates are not in our synthetic sources, so placement
is deterministic (alphabetical by accession) rather than biological —
which preserves everything the algebra operations actually consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.types import (
    AnnotationSet,
    Chromosome,
    DnaSequence,
    Feature,
    Gene,
    Genome,
    Interval,
    Location,
)
from repro.errors import IntegrationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.warehouse.warehouse import UnifyingDatabase

#: Neutral spacer inserted between placed genes.
SPACER = "N" * 20


def build_chromosome(name: str, genes: list[Gene]) -> Chromosome:
    """Concatenate genes onto one scaffold with spacers and features."""
    pieces: list[str] = []
    placed: list[Gene] = []
    annotations = AnnotationSet()
    position = 0
    for gene in genes:
        if pieces:
            pieces.append(SPACER)
            position += len(SPACER)
        text = str(gene.sequence)
        pieces.append(text)
        annotations.add(Feature(
            "gene",
            Location.simple(position, position + len(text)),
            {"gene": gene.name, "accession": gene.accession or ""},
        ))
        # Re-anchor the gene's exons relative to itself (unchanged) and
        # keep the gene value intact for gene-level operations.
        placed.append(gene)
        position += len(text)
    return Chromosome(
        name=name,
        sequence=DnaSequence("".join(pieces)),
        genes=tuple(placed),
        annotations=annotations,
    )


def build_genome(
    warehouse: "UnifyingDatabase",
    organism: str,
    genes_per_chromosome: int = 10,
) -> Genome:
    """Materialize an organism's reconciled genes as a :class:`Genome`.

    Genes are ordered by accession and packed ``genes_per_chromosome``
    to a scaffold, named ``chr1``, ``chr2``, ….  Raises
    :class:`IntegrationError` when the warehouse has no genes for the
    organism.
    """
    if genes_per_chromosome < 1:
        raise IntegrationError("genes_per_chromosome must be positive")
    rows = warehouse.query(
        "SELECT gene FROM public_genes WHERE organism = ? "
        "ORDER BY accession",
        [organism],
    )
    genes = [row[0] for row in rows]
    if not genes:
        raise IntegrationError(
            f"the warehouse holds no genes for organism {organism!r}"
        )
    chromosomes = []
    for index in range(0, len(genes), genes_per_chromosome):
        chunk = genes[index:index + genes_per_chromosome]
        chromosomes.append(
            build_chromosome(f"chr{index // genes_per_chromosome + 1}",
                             chunk)
        )
    return Genome(organism=organism, chromosomes=tuple(chromosomes))


def gene_density(chromosome: Chromosome) -> float:
    """Fraction of the scaffold covered by gene features."""
    if len(chromosome) == 0:
        return 0.0
    covered = sum(
        len(feature.location)
        for feature in chromosome.annotations.of_kind("gene")
    )
    return covered / len(chromosome)
