"""Data-quality reporting: measuring B10 instead of assuming it.

The paper motivates reconciliation with "it is estimated that 30-60 % of
sequences in GenBank are erroneous" (B10).  Once sources are integrated,
the warehouse can *measure* per-source quality: for every staged record,
compare the source's reading with the reconciled consensus; the
disagreement rate is an estimate of that source's error rate (exact when
the consensus is right, a lower bound otherwise).

:func:`source_quality_report` produces the per-source table;
:func:`accuracy_against_truth` additionally scores warehouse and sources
against a known ground truth (available for our synthetic universe),
which is what the reconciliation-accuracy benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.sources.universe import Universe
    from repro.warehouse.warehouse import UnifyingDatabase


@dataclass(frozen=True)
class SourceQuality:
    """One source's measured agreement with the reconciled consensus."""

    source: str
    records: int
    sequence_disagreements: int

    @property
    def disagreement_rate(self) -> float:
        return self.sequence_disagreements / max(1, self.records)

    def __str__(self) -> str:
        return (f"{self.source}: {self.records} records, "
                f"{self.disagreement_rate:.0%} disagree with consensus")


def source_quality_report(
    warehouse: "UnifyingDatabase",
) -> list[SourceQuality]:
    """Per-source disagreement rates vs the reconciled sequences.

    Only DNA-bearing staged records participate (protein databanks have
    no gene-sequence reading to disagree with).
    """
    consensus: dict[str, str] = {
        accession: str(sequence)
        for accession, sequence in warehouse.query(
            "SELECT accession, sequence FROM public_genes"
        )
    }
    totals: dict[str, int] = {}
    disagreements: dict[str, int] = {}
    for source, accession, dna in warehouse.query(
        "SELECT source, accession, dna FROM staging"
    ):
        if dna is None or accession not in consensus:
            continue
        totals[source] = totals.get(source, 0) + 1
        if str(dna) != consensus[accession]:
            disagreements[source] = disagreements.get(source, 0) + 1
    return [
        SourceQuality(source, totals[source],
                      disagreements.get(source, 0))
        for source in sorted(totals)
    ]


@dataclass(frozen=True)
class AccuracyReport:
    """Warehouse vs per-source accuracy against known ground truth."""

    warehouse_accuracy: float
    source_accuracy: Mapping[str, float]
    genes_scored: int

    def best_single_source(self) -> float:
        return max(self.source_accuracy.values(), default=0.0)


def accuracy_against_truth(
    warehouse: "UnifyingDatabase",
    universe: "Universe",
) -> AccuracyReport:
    """Fraction of sequences exactly matching the synthetic ground truth.

    Scores the warehouse's reconciled sequences and, per source, the raw
    staged readings — the quantitative form of the paper's claim that
    reconciliation beats any single noisy repository (C8).
    """
    correct = 0
    scored = 0
    for accession, sequence in warehouse.query(
        "SELECT accession, sequence FROM public_genes"
    ):
        truth = universe.spec(accession).sequence_text
        scored += 1
        if str(sequence) == truth:
            correct += 1

    per_source: dict[str, list[int]] = {}
    for source, accession, dna in warehouse.query(
        "SELECT source, accession, dna FROM staging"
    ):
        if dna is None:
            continue
        truth = universe.spec(accession).sequence_text
        bucket = per_source.setdefault(source, [0, 0])
        bucket[1] += 1
        if str(dna) == truth:
            bucket[0] += 1

    return AccuracyReport(
        warehouse_accuracy=correct / max(1, scored),
        source_accuracy={
            source: right / max(1, total)
            for source, (right, total) in sorted(per_source.items())
        },
        genes_scored=scored,
    )
