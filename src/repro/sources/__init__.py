"""Simulated external genomic repositories and their shared ground truth."""

from repro.sources.acedb import AceRepository
from repro.sources.base import (
    DELETE,
    INSERT,
    UPDATE,
    Capabilities,
    LogEntry,
    Repository,
    SourceRecord,
)
from repro.sources.embl import EmblRepository
from repro.sources.faults import (
    GUARDED_OPERATIONS,
    FaultStats,
    FaultyRepository,
    OutageWindow,
    VirtualClock,
)
from repro.sources.genbank import GenBankRepository
from repro.sources.relational import RelationalRepository
from repro.sources.swissprot import SwissProtRepository
from repro.sources.trembl import TrEmblRepository
from repro.sources.universe import GeneSpec, Universe, corrupt_sequence

__all__ = [
    "Universe",
    "GeneSpec",
    "corrupt_sequence",
    "Repository",
    "SourceRecord",
    "LogEntry",
    "Capabilities",
    "INSERT",
    "UPDATE",
    "DELETE",
    "GenBankRepository",
    "EmblRepository",
    "SwissProtRepository",
    "TrEmblRepository",
    "AceRepository",
    "RelationalRepository",
    "FaultyRepository",
    "FaultStats",
    "OutageWindow",
    "VirtualClock",
    "GUARDED_OPERATIONS",
]
