"""Deterministic fault injection for simulated repositories.

The paper's sources are autonomous archives that "change, disappear, and
answer inconsistently"; every federation component must therefore treat
partial source failure as the normal case.  This module makes that
failure mode *reproducible*: :class:`FaultyRepository` wraps any
:class:`~repro.sources.base.Repository` behind a proxy whose faults are
seeded and schedulable, so chaos scenarios, resilience tests, and the
fault-rate ablation benchmark all replay bit for bit.

Fault modes (freely combinable):

- **intermittent failure** — each guarded call (``snapshot``, ``query``,
  ``query_accessions``, ``read_log``) fails with a structured
  :class:`~repro.errors.SourceError` at a seeded probability, or the
  next *n* calls fail deterministically (:meth:`FaultyRepository.fail_next`);
- **outage windows** — intervals on a shared :class:`VirtualClock`
  during which every guarded call fails and push notifications are
  dropped (flapping availability);
- **injected latency** — each guarded call advances the virtual clock,
  so retry backoff and per-query deadline budgets interact with slow
  sources without any real sleeping;
- **corruption** — snapshot / query payloads are truncated or garbled
  at a seeded probability (the quarantine path's raw material);
- **channel loss** — the change log or the push channel alone can be
  taken down, forcing monitors onto the Figure 2 degradation ladder.

All fault decisions come from one ``random.Random`` seeded from the
wrapped source's name, never from wall-clock time.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import SourceError
from repro.obs.metrics import count as _metric
from repro.sources.base import LogEntry, Repository

#: Operations the proxy guards (every remote round-trip a caller can make).
GUARDED_OPERATIONS = ("snapshot", "query", "query_accessions", "read_log")


class ClockTrack:
    """A private branch of virtual time for one concurrent task.

    While a track is open on a thread, that thread's ``now()`` /
    ``advance()`` calls read and grow ``origin + offset`` instead of the
    shared timeline, so parallel tasks each accumulate their *own*
    virtual elapsed time from a common starting instant.  The mediator
    joins tracks back into the shared clock with a makespan computed
    from the per-track offsets (see ``repro.mediator.pool``).
    """

    __slots__ = ("origin", "offset")

    def __init__(self, origin: float) -> None:
        self.origin = float(origin)
        self.offset = 0.0

    @property
    def elapsed(self) -> float:
        return self.offset


class VirtualClock:
    """A shared simulated timeline (floats, no real sleeping).

    Latency injection, retry backoff, breaker reset timeouts, and
    outage windows all advance / read the same clock, so their
    interactions are deterministic and instantaneous to test.

    The clock is thread-safe.  Concurrent fan-out additionally uses
    *tracks* (:meth:`open_track` / :meth:`close_track`): a task running
    on its own track sees virtual time progress independently of its
    siblings, which keeps per-task backoff and deadline arithmetic
    deterministic no matter how the OS schedules the worker threads.

    Tracks **nest** per thread: the serving layer measures one source
    call on an inner track while a fan-out job's outer track stays
    open, and the serving loop itself runs whole queries on tracks
    branched off their virtual start instants.  Each thread holds a
    stack; only the top track is live, and :meth:`close_track` must be
    handed that top track (strict LIFO), so an unbalanced caller fails
    loudly instead of corrupting a sibling's arithmetic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()
        self._local = threading.local()

    def _track_stack(self) -> list[ClockTrack]:
        stack = getattr(self._local, "tracks", None)
        if stack is None:
            stack = []
            self._local.tracks = stack
        return stack

    def _active_track(self) -> ClockTrack | None:
        stack = self._track_stack()
        return stack[-1] if stack else None

    def now(self) -> float:
        track = self._active_track()
        if track is not None:
            return track.origin + track.offset
        with self._lock:
            return self._now

    def advance(self, amount: float) -> float:
        if amount < 0:
            raise ValueError("a virtual clock cannot run backwards")
        track = self._active_track()
        if track is not None:
            track.offset += amount
            return track.origin + track.offset
        with self._lock:
            self._now += amount
            return self._now

    def open_track(self, origin: float | None = None) -> ClockTrack:
        """Branch this thread's virtual time off at *origin* (default: now)."""
        track = ClockTrack(self.now() if origin is None else origin)
        self._track_stack().append(track)
        return track

    def close_track(self, track: ClockTrack) -> float:
        """End *track* on this thread; returns its virtual elapsed time.

        Tracks close strictly LIFO: *track* must be the innermost open
        track on this thread.
        """
        stack = self._track_stack()
        if not stack or stack[-1] is not track:
            raise RuntimeError("closing a clock track that is not open here")
        stack.pop()
        return track.offset

    def __repr__(self) -> str:
        return f"VirtualClock(t={self.now():.2f})"


@dataclass
class FaultStats:
    """What the proxy actually did to its caller (per proxy lifetime).

    Counter updates go through :meth:`bump`, which holds a lock so
    concurrent fan-out over many proxies sharing a stats object never
    loses an increment.  The lock is a plain attribute, not a dataclass
    field, so ``fields()``-based iteration and copying stay unchanged.
    """

    calls: int = 0
    failures: int = 0
    corruptions: int = 0
    dropped_notifications: int = 0
    injected_latency: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: float = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)
        _metric("faults", counter, amount)


@dataclass(frozen=True)
class OutageWindow:
    """A half-open ``[start, end)`` interval of unavailability."""

    start: float
    end: float

    def covers(self, instant: float) -> bool:
        return self.start <= instant < self.end


class FaultyRepository:
    """A :class:`Repository` proxy with seeded, schedulable faults.

    Everything not explicitly guarded (``accessions``, ``record_state``,
    ``render_record``, ``advance``, ``clock`` …) delegates to the
    wrapped repository untouched — ground-truth inspection in tests
    stays fault-free.
    """

    def __init__(
        self,
        repository: Repository,
        timeline: VirtualClock | None = None,
        seed: int = 0,
    ) -> None:
        self.inner = repository
        self.timeline = timeline if timeline is not None else VirtualClock()
        self._rng = random.Random(("faults", repository.name, seed).__repr__())
        self.stats = FaultStats()
        self._fail_rates: dict[str, float] = {}
        self._forced_failures: dict[str, int] = {}
        self._outages: list[OutageWindow] = []
        self._latency = 0.0
        self._slow_rate = 0.0
        self._slow_factor = 10.0
        self._corrupt_rate = 0.0
        self._log_channel_down = False
        self._push_channel_down = False

    # -- scheduling API ---------------------------------------------------------

    def fail_with_rate(self, rate: float, *operations: str) -> None:
        """Fail each guarded call with probability *rate* (seeded)."""
        for operation in operations or GUARDED_OPERATIONS:
            self._fail_rates[operation] = rate

    def fail_next(self, count: int, *operations: str) -> None:
        """Deterministically fail the next *count* calls per operation."""
        for operation in operations or GUARDED_OPERATIONS:
            self._forced_failures[operation] = (
                self._forced_failures.get(operation, 0) + count
            )

    def schedule_outage(self, start: float, end: float) -> None:
        """Every guarded call in ``[start, end)`` virtual time fails."""
        if end <= start:
            raise ValueError(f"empty outage window [{start}, {end})")
        self._outages.append(OutageWindow(start, end))

    def add_latency(self, amount: float, slow_rate: float = 0.0,
                    slow_factor: float = 10.0) -> None:
        """Each guarded call advances the virtual clock by *amount*.

        ``slow_rate`` gives the latency distribution a heavy tail: that
        fraction of calls (seeded) takes ``slow_factor`` times longer —
        the straggler population hedged requests exist to cut off.
        """
        self._latency = amount
        self._slow_rate = slow_rate
        self._slow_factor = slow_factor

    def corrupt_with_rate(self, rate: float) -> None:
        """Truncate or garble returned record text with probability *rate*."""
        self._corrupt_rate = rate

    def drop_log_channel(self) -> None:
        self._log_channel_down = True

    def restore_log_channel(self) -> None:
        self._log_channel_down = False

    def drop_push_channel(self) -> None:
        self._push_channel_down = True

    def restore_push_channel(self) -> None:
        self._push_channel_down = False

    # -- fault machinery --------------------------------------------------------

    def in_outage(self, instant: float | None = None) -> bool:
        when = self.timeline.now() if instant is None else instant
        return any(window.covers(when) for window in self._outages)

    def _fail(self, operation: str, reason: str) -> None:
        self.stats.bump("failures")
        raise SourceError(
            f"{self.name} failed {operation}: {reason}",
            source=self.name, operation=operation,
        )

    def _guard(self, operation: str) -> None:
        self.stats.bump("calls")
        if self._latency:
            latency = self._latency
            if self._slow_rate and self._rng.random() < self._slow_rate:
                latency *= self._slow_factor
            self.timeline.advance(latency)
            self.stats.bump("injected_latency", latency)
        if self.in_outage():
            self._fail(operation, "source unavailable (outage window)")
        forced = self._forced_failures.get(operation, 0)
        if forced > 0:
            self._forced_failures[operation] = forced - 1
            self._fail(operation, "injected failure")
        rate = self._fail_rates.get(operation, 0.0)
        if rate and self._rng.random() < rate:
            self._fail(operation, "intermittent failure")

    def _maybe_corrupt(self, text: str) -> str:
        if not text or not self._corrupt_rate:
            return text
        if self._rng.random() >= self._corrupt_rate:
            return text
        self.stats.bump("corruptions")
        if self._rng.random() < 0.5 and len(text) > 1:
            # Truncation: the transfer died mid-payload.
            return text[:self._rng.randrange(1, len(text))]
        # Garbling: a window of the payload is overwritten with junk.
        chars = list(text)
        width = max(1, len(chars) // 8)
        start = self._rng.randrange(max(1, len(chars) - width))
        for index in range(start, min(len(chars), start + width)):
            if chars[index] != "\n":
                chars[index] = "#"
        return "".join(chars)

    # -- guarded access paths ---------------------------------------------------

    def snapshot(self) -> str:
        self._guard("snapshot")
        return self._maybe_corrupt(self.inner.snapshot())

    def query(self, accession: str) -> str | None:
        self._guard("query")
        text = self.inner.query(accession)
        return self._maybe_corrupt(text) if text is not None else None

    def query_accessions(self) -> tuple[str, ...]:
        self._guard("query_accessions")
        return self.inner.query_accessions()

    def read_log(self, since_sequence_number: int = 0) -> list[LogEntry]:
        if self._log_channel_down:
            self.stats.bump("calls")
            self._fail("read_log", "log channel unavailable")
        self._guard("read_log")
        return self.inner.read_log(since_sequence_number)

    def subscribe(
        self, callback: Callable[[LogEntry, str | None], None]
    ) -> None:
        def guarded(entry: LogEntry, rendered: str | None) -> None:
            if not self.push_channel_available():
                self.stats.bump("dropped_notifications")
                return
            callback(entry, rendered)

        self.inner.subscribe(guarded)

    def push_channel_available(self) -> bool:
        return (self.inner.push_channel_available()
                and not self._push_channel_down
                and not self.in_outage())

    # -- transparent delegation -------------------------------------------------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def capabilities(self):
        return self.inner.capabilities

    @property
    def representation(self) -> str:
        return self.inner.representation

    @property
    def stores_protein(self) -> bool:
        return self.inner.stores_protein

    @property
    def clock(self) -> int:
        return self.inner.clock

    def __len__(self) -> int:
        return len(self.inner)

    def __getattr__(self, attribute: str):
        # accessions / record_state / render_record / advance / universe …
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:
        return (f"FaultyRepository({self.inner!r}, "
                f"failures={self.stats.failures}, "
                f"corruptions={self.stats.corruptions})")
