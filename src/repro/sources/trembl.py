"""A TrEMBL-style repository: machine-translated protein entries.

The paper's introduction: "SwissProt and PIR form the basis of annotated
protein sequence repositories together with **TrEMBL and GenPept, which
contain computer-translated sequence entries from EMBL and GenBank**."

Unlike curated SwissProt, a TrEMBL record's protein is *derived*: the
(possibly noisy) nucleotide sequence is expressed in silico, so
nucleotide-level corruption propagates into frameshifted, truncated or
mis-called proteins — exactly the quality gradient the integrator's
reliability weights encode.
"""

from __future__ import annotations

from repro.core.ops.basic import decode
from repro.core.ops.central_dogma import express
from repro.core.types import Gene, Interval
from repro.errors import ReproError
from repro.sources.base import Capabilities, Repository
from repro.sources.swissprot import SwissProtRepository
from repro.sources.universe import GeneSpec, corrupt_sequence


class TrEmblRepository(SwissProtRepository):
    """Computer-translated proteins from noisy nucleotide entries.

    ``error_rate`` here is the *nucleotide-level* corruption probability;
    the stored protein is whatever in-silico expression of the corrupted
    gene yields (possibly truncated at a spurious stop, or a half-length
    stub when the reading frame is destroyed).
    """

    def __init__(self, universe, coverage: float = 0.6, seed: int = 6,
                 error_rate: float = 0.4,
                 capabilities: Capabilities | None = None) -> None:
        # Must precede Repository.__init__, which builds the initial
        # records through our _sequence_of override below.
        self.nucleotide_error_rate = error_rate
        # Reuse SwissProt's record format but re-identify as TrEMBL.
        # Record-level error_rate stays 0: all noise enters through the
        # nucleotide-translation path.
        Repository.__init__(
            self, "TrEMBL", universe, coverage, seed, 0.0,
            capabilities or Capabilities(queryable=True),
        )

    def _sequence_of(self, spec: GeneSpec) -> str:
        """In-silico translation of (possibly corrupted) nucleotide data."""
        dna_text = spec.sequence_text
        if (self.nucleotide_error_rate
                and self._rng.random() < self.nucleotide_error_rate):
            dna_text = corrupt_sequence(dna_text, self._rng, mutations=3)
        try:
            gene = Gene(
                name=spec.name,
                sequence=decode(dna_text),
                exons=tuple(
                    exon for exon in spec.gene.exons
                    if exon.end <= len(dna_text)
                ) or (Interval(0, len(dna_text)),),
                organism=spec.organism,
                accession=spec.accession,
            )
            return str(express(gene).sequence)
        except ReproError:
            # The corruption destroyed the reading frame: the automated
            # pipeline emits a stub call (a real TrEMBL failure mode).
            return str(spec.protein.sequence)[: max(
                1, len(spec.protein.sequence) // 2
            )]
