"""An EMBL-style flat-file repository (queryable)."""

from __future__ import annotations

from repro.sources.base import Capabilities, Repository, SourceRecord


def _sequence_block(sequence: str) -> str:
    """EMBL SQ formatting: 60 bases per line, position counter at the end."""
    lines = []
    for offset in range(0, len(sequence), 60):
        chunk = sequence[offset:offset + 60].lower()
        groups = " ".join(chunk[i:i + 10] for i in range(0, len(chunk), 10))
        lines.append(f"     {groups:<66}{min(offset + 60, len(sequence)):>9}")
    return "\n".join(lines)


def _location(exons: tuple[tuple[int, int], ...], length: int) -> str:
    if not exons:
        return f"1..{length}"
    if len(exons) == 1:
        start, end = exons[0]
        return f"{start + 1}..{end}"
    return "join(" + ",".join(
        f"{start + 1}..{end}" for start, end in exons
    ) + ")"


class EmblRepository(Repository):
    """The EMBL archetype: flat files with a record-level query API."""

    representation = "flat"

    def __init__(self, universe, coverage: float = 0.6, seed: int = 2,
                 error_rate: float = 0.3,
                 capabilities: Capabilities | None = None) -> None:
        super().__init__(
            "EMBL", universe, coverage, seed, error_rate,
            capabilities or Capabilities(queryable=True),
        )

    def render_record(self, record: SourceRecord) -> str:
        length = len(record.sequence_text)
        lines = [
            f"ID   {record.accession}; SV {record.version}; linear; "
            f"genomic DNA; STD; SYN; {length} BP.",
            f"AC   {record.accession};",
            f"DE   {record.description}.",
            f"OS   {record.organism}",
            f"FT   gene            1..{length}",
            f'FT                   /gene="{record.name}"',
            f"FT   CDS             {_location(record.exons, length)}",
            f'FT                   /gene="{record.name}"',
            f"SQ   Sequence {length} BP;",
            _sequence_block(record.sequence_text),
            "//",
        ]
        return "\n".join(lines) + "\n"
