"""A SwissProt-style protein repository (active: push notifications).

The paper singles SwissProt out twice: as a curated protein databank
refreshed quarterly yet heavily used, and as a source "now beginning to
offer push capabilities, which will notify requesting users when relevant
sequence entries have been made" — so this archetype is the *active*
column of Figure 2.
"""

from __future__ import annotations

from repro.sources.base import Capabilities, Repository, SourceRecord


def _sequence_block(sequence: str) -> str:
    lines = []
    for offset in range(0, len(sequence), 60):
        chunk = sequence[offset:offset + 60]
        groups = " ".join(chunk[i:i + 10] for i in range(0, len(chunk), 10))
        lines.append(f"     {groups}")
    return "\n".join(lines)


def _entry_name(record: SourceRecord) -> str:
    organism_tag = "".join(
        word[:3].upper() for word in record.organism.split()[:2]
    )
    return f"{record.name.upper()}_{organism_tag}"


class SwissProtRepository(Repository):
    """The SwissProt archetype: curated protein entries, push-capable."""

    representation = "flat"
    stores_protein = True

    def __init__(self, universe, coverage: float = 0.5, seed: int = 3,
                 error_rate: float = 0.05,
                 capabilities: Capabilities | None = None) -> None:
        # Curated: far lower error rate than the nucleotide archives.
        super().__init__(
            "SwissProt", universe, coverage, seed, error_rate,
            capabilities or Capabilities(queryable=True, active=True),
        )

    def render_record(self, record: SourceRecord) -> str:
        length = len(record.sequence_text)
        lines = [
            f"ID   {_entry_name(record):<24}Reviewed;{length:>12} AA.",
            f"AC   {record.accession};",
            f"DE   RecName: Full={record.name} protein;",
            f"GN   Name={record.name};",
            f"OS   {record.organism}.",
            f"SQ   SEQUENCE   {length} AA;",
            _sequence_block(record.sequence_text),
            "//",
        ]
        return "\n".join(lines) + "\n"
