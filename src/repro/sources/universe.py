"""The synthetic ground truth behind every simulated repository.

The paper's substrate is the public repositories (GenBank, EMBL,
SwissProt, AceDB).  Offline, we replace them with repositories rendered
from a shared, seeded :class:`Universe` of gene specifications: each
logical gene exists once here, and each repository covers a subset of
them with its own per-source noise.  That overlap-with-noise structure is
exactly what drives the paper's integration problems — additive and
conflicting information across sources (B2), erroneous entries (B10) —
so the warehouse's reconciliation machinery has something real to do.

Everything is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.ops import express
from repro.core.types import DnaSequence, Gene, Interval, Protein

ORGANISMS = (
    "Escherichia coli",
    "Saccharomyces cerevisiae",
    "Drosophila melanogaster",
    "Homo sapiens",
    "Mus musculus",
    "Arabidopsis thaliana",
)

_GENE_STEMS = (
    "lac", "trp", "gal", "ara", "rec", "pol", "dna", "rna", "his",
    "leu", "met", "pro", "thr", "cys", "arg", "tyr", "ilv", "pur",
)

_DESCRIPTION_TEMPLATES = (
    "{name} gene, complete cds",
    "{organism} {name} gene for hypothetical protein",
    "{name}, putative transcription factor",
    "{name} gene, partial sequence",
    "gene {name}, {organism} strain K-12",
)

_STOP = "TAA"
_CODONS = [
    first + second + third
    for first in "ACGT" for second in "ACGT" for third in "ACGT"
    if first + second + third not in ("TAA", "TAG", "TGA")
]


@dataclass
class GeneSpec:
    """One ground-truth gene: identity, true sequence, structure, product."""

    accession: str
    name: str
    organism: str
    description: str
    gene: Gene
    protein: Protein

    @property
    def sequence_text(self) -> str:
        return str(self.gene.sequence)


def _random_coding_dna(rng: random.Random, codons: int) -> str:
    """A start codon, a stop-free codon body, and a stop codon."""
    body = "".join(rng.choice(_CODONS) for _ in range(codons))
    return "ATG" + body + _STOP


def _random_intron(rng: random.Random) -> str:
    length = rng.randrange(12, 60, 3)
    return "GT" + "".join(rng.choice("ACGT")
                          for _ in range(length - 4)) + "AG"


def make_gene_spec(rng: random.Random, index: int) -> GeneSpec:
    """Build one deterministic gene specification."""
    name = (rng.choice(_GENE_STEMS)
            + rng.choice("ABCDEFGH")
            + str(rng.randrange(1, 10)))
    organism = rng.choice(ORGANISMS)
    accession = f"GA{100000 + index}"

    exon_count = rng.choice((1, 1, 2, 3))
    exon_texts = [
        _random_coding_dna(rng, rng.randrange(10, 60))
        if i == 0 else
        "".join(rng.choice(_CODONS) for _ in range(rng.randrange(6, 30)))
        for i in range(exon_count)
    ]
    # Build the genomic span: exon, intron, exon, ...
    pieces: list[str] = []
    exons: list[Interval] = []
    position = 0
    for i, exon_text in enumerate(exon_texts):
        if i > 0:
            intron = _random_intron(rng)
            pieces.append(intron)
            position += len(intron)
        pieces.append(exon_text)
        exons.append(Interval(position, position + len(exon_text)))
        position += len(exon_text)

    # Ensure the spliced product still ends with a stop codon so the
    # gene expresses cleanly: append one in-frame stop to the last exon.
    spliced_length = sum(len(e) for e in exons)
    padding = (3 - spliced_length % 3) % 3
    tail = "A" * padding + _STOP
    pieces.append(tail)
    last = exons[-1]
    exons[-1] = Interval(last.start, last.end + len(tail))

    gene = Gene(
        name=name,
        sequence=DnaSequence("".join(pieces)),
        exons=tuple(exons),
        organism=organism,
        accession=accession,
    )
    description = rng.choice(_DESCRIPTION_TEMPLATES).format(
        name=name, organism=organism
    )
    return GeneSpec(
        accession=accession,
        name=name,
        organism=organism,
        description=description,
        gene=gene,
        protein=express(gene),
    )


class Universe:
    """A deterministic collection of ground-truth genes.

    ``genes[:initial]`` is what repositories start with; the rest is the
    pool new records are drawn from when a repository ``advance``\\ s.
    """

    def __init__(self, seed: int = 42, size: int = 120) -> None:
        self.seed = seed
        rng = random.Random(seed)
        self.genes: list[GeneSpec] = [
            make_gene_spec(rng, index) for index in range(size)
        ]
        self._by_accession = {spec.accession: spec for spec in self.genes}

    def __len__(self) -> int:
        return len(self.genes)

    def spec(self, accession: str) -> GeneSpec:
        return self._by_accession[accession]

    def subset(self, fraction: float, rng: random.Random) -> list[GeneSpec]:
        """A random sample covering *fraction* of the universe."""
        count = max(1, int(len(self.genes) * fraction))
        return rng.sample(self.genes, count)


def corrupt_sequence(text: str, rng: random.Random,
                     mutations: int = 3) -> str:
    """Introduce point errors (substitutions) into sequence text (B10)."""
    if not text:
        return text
    symbols = list(text)
    for _ in range(mutations):
        position = rng.randrange(len(symbols))
        symbols[position] = rng.choice("ACGTN")
    return "".join(symbols)
