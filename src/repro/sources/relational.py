"""A relational repository (logged + trigger-capable).

Figure 2's left column: sources managed by a real DBMS, where change
detection is easy — database triggers fire (active) or the transaction
log is inspectable (logged).  Snapshots are CSV dumps; queries return
rows.
"""

from __future__ import annotations

import csv
import io

from repro.errors import SourceError
from repro.sources.base import Capabilities, Repository, SourceRecord

_COLUMNS = ("accession", "version", "name", "organism", "description",
            "sequence", "exons")


def _exons_text(exons: tuple[tuple[int, int], ...]) -> str:
    return ";".join(f"{start}-{end}" for start, end in exons)


class RelationalRepository(Repository):
    """A trigger- and log-capable relational source."""

    representation = "relational"

    def __init__(self, universe, coverage: float = 0.5, seed: int = 5,
                 error_rate: float = 0.1,
                 capabilities: Capabilities | None = None) -> None:
        super().__init__(
            "RelationalDB", universe, coverage, seed, error_rate,
            capabilities or Capabilities(queryable=True, logged=True,
                                         active=True),
        )

    def row_of(self, record: SourceRecord) -> tuple:
        return (
            record.accession, record.version, record.name,
            record.organism, record.description, record.sequence_text,
            _exons_text(record.exons),
        )

    def query_rows(self) -> list[tuple]:
        """The relational access path: all rows, ordered by accession."""
        if not self.capabilities.queryable:
            raise SourceError(f"{self.name} is not queryable")
        return [self.row_of(self._records[a])
                for a in sorted(self._records)]

    def render_record(self, record: SourceRecord) -> str:
        buffer = io.StringIO()
        csv.writer(buffer).writerow(self.row_of(record))
        return buffer.getvalue()

    def render_snapshot(self, records) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(_COLUMNS)
        for record in records:
            writer.writerow(self.row_of(record))
        return buffer.getvalue()
